#!/usr/bin/env python
"""Quickstart: define trajectories, run a convoy query, inspect the answer.

A convoy query (Jeung et al., VLDB 2008) takes three parameters:

* ``m``   — minimum number of objects travelling together;
* ``k``   — minimum lifetime, in consecutive time points;
* ``eps`` — the density distance threshold ``e``: at every covered time
  point the members must form one density-connected group where each link
  of the chain is at most ``eps`` long.

This script builds a tiny hand-made database (three commuters sharing a
road, one loner), answers the query with the exact CMC algorithm and with
the fast CuTS* filter-and-refine algorithm, and shows that the two agree.
"""

from repro import Trajectory, TrajectoryDatabase, cmc, cuts


def build_database():
    """Three objects moving east together, one wandering elsewhere."""
    convoy_members = []
    for name, lane in (("ann", 0.0), ("bob", 0.8), ("cat", 1.6)):
        points = [(float(t), lane, t) for t in range(30)]
        convoy_members.append(Trajectory(name, points))
    loner = Trajectory("dan", [(float(t), 50.0 + t, t) for t in range(30)])
    return TrajectoryDatabase(convoy_members + [loner])


def main():
    db = build_database()
    print(f"database: {db}")

    m, k, eps = 3, 10, 2.0
    print(f"\nconvoy query: m={m}, k={k}, e={eps}")

    # Exact baseline: snapshot DBSCAN at every time point.
    exact = cmc(db, m, k, eps)
    print("\nCMC (exact) answer:")
    for convoy in exact:
        members = ", ".join(sorted(convoy.objects))
        print(
            f"  {{{members}}} travelled together from "
            f"t={convoy.t_start} to t={convoy.t_end} "
            f"({convoy.lifetime} time points)"
        )

    # CuTS*: simplify trajectories, filter candidates with the tightened
    # D* distance bounds, refine with exact clustering.
    result = cuts(db, m, k, eps, variant="cuts*")
    print("\nCuTS* answer (guaranteed identical):")
    for convoy in result.convoys:
        print(f"  {convoy}")
    print(
        f"\nCuTS* internals: delta={result.delta:.3f}, lambda={result.lam}, "
        f"{len(result.candidates)} filter candidate(s), "
        f"refinement unit {result.refinement_unit:.0f}"
    )
    assert set(result.convoys) == set(exact)
    print("\nOK: filter-and-refine reproduced the exact answer.")


if __name__ == "__main__":
    main()
