#!/usr/bin/env python
"""Run convoy queries over your own GPS logs via the CSV workflow.

The library reads the flat ``object_id,t,x,y`` format used by public
trajectory repositories (the paper's Truck data came from rtreeportal.org
in this shape).  This script writes a sample file, loads it back, runs the
query, and shows the incremental knobs a practitioner would turn: raising
``e`` until the expected number of convoys appears — the procedure the
paper used to calibrate Table 3 ("we adjusted the values of e to be able
to find 1 to 100 convoys for each dataset").
"""

import tempfile
from pathlib import Path

from repro import (
    cuts,
    load_trajectories_csv,
    save_trajectories_csv,
    taxi_dataset,
)


def main():
    # Stand-in for "your own data": dump the taxi-like dataset to CSV.
    spec = taxi_dataset(seed=17, scale=0.15)
    workdir = Path(tempfile.mkdtemp(prefix="convoy-demo-"))
    csv_path = workdir / "taxi_logs.csv"
    save_trajectories_csv(spec.database, csv_path)
    print(f"wrote {csv_path} ({csv_path.stat().st_size // 1024} KiB)")

    db = load_trajectories_csv(csv_path)
    stats = db.statistics()
    print(
        f"loaded {stats['num_objects']} objects, "
        f"{stats['total_points']} samples, "
        f"T={stats['time_domain_length']}\n"
    )

    m, k = spec.m, spec.k
    print(f"calibrating e for m={m}, k={k} (targeting 1-100 convoys):")
    eps = spec.eps / 4
    found = []
    for _ in range(6):
        result = cuts(db, m, k, eps, variant="cuts*")
        print(f"  e={eps:7.2f}: {len(result.convoys):3d} convoys")
        found = result.convoys
        if 1 <= len(result.convoys) <= 100:
            break
        eps *= 2
    print()
    if found:
        for convoy in found[:10]:
            print(f"  {convoy}")
    else:
        print("no convoys at any tried e — taxis roam independently")


if __name__ == "__main__":
    main()
