#!/usr/bin/env python
"""Herd sub-group monitoring on a cattle-like dataset (virtual fencing).

The paper's Cattle data came from a CSIRO virtual-fencing study: 13 cows
with GPS ear-tags sampled every second for hours.  Ethologists care about
persistent sub-groups (social bonds, shared grazing).  This script mines
them with the convoy query and demonstrates why the disc-based *flock*
definition is the wrong tool: grazing lines are elongated, so any disc
either clips a cow off the end of the line or swallows a second group —
the lossy-flock problem of the paper's Figure 1.
"""

from collections import Counter

from repro import cattle_dataset, cuts, discover_flocks


def main():
    spec = cattle_dataset(seed=11, scale=0.005)
    db = spec.database
    stats = db.statistics()
    print(
        f"cattle-like dataset: {stats['num_objects']} cows, "
        f"T={stats['time_domain_length']} seconds, "
        f"{stats['total_points']} GPS fixes"
    )
    print(f"query: m={spec.m}, k={spec.k}, e={spec.eps:g}\n")

    result = cuts(db, spec.m, spec.k, spec.eps, variant="cuts+")
    print(f"{len(result.convoys)} persistent sub-groups (convoys):")
    bond_counter = Counter()
    for convoy in sorted(result.convoys, key=lambda c: -c.lifetime)[:8]:
        cows = ", ".join(sorted(convoy.objects))
        print(
            f"  [{cows}] grazed together for {convoy.lifetime} seconds "
            f"(t=[{convoy.t_start}, {convoy.t_end}])"
        )
        for cow in convoy.objects:
            bond_counter[cow] += convoy.lifetime

    if bond_counter:
        cow, seconds = bond_counter.most_common(1)[0]
        print(f"\nmost social cow: {cow} ({seconds} convoy-seconds)")

    # The lossy-flock contrast: discs of radius e find strictly fewer
    # complete groups than density connection on elongated herds.
    flocks = discover_flocks(db, spec.m, spec.k, spec.eps)
    convoy_sizes = Counter(c.size for c in result.convoys)
    flock_sizes = Counter(f.size for f in flocks)
    print(
        f"\nflock baseline with a disc of radius e: {len(flocks)} groups "
        f"(sizes {dict(flock_sizes)}) vs convoy sizes {dict(convoy_sizes)}"
    )
    largest_convoy = max((c.size for c in result.convoys), default=0)
    largest_flock = max((f.size for f in flocks), default=0)
    if largest_flock < largest_convoy:
        print(
            "the disc clipped members off the largest group — "
            "the lossy-flock problem in action"
        )


if __name__ == "__main__":
    main()
