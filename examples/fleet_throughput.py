#!/usr/bin/env python
"""Fleet throughput planning on a truck-like dataset, comparing algorithms.

The paper's first application: "the identification of delivery trucks with
coherent trajectory patterns may be used for throughput planning".  This
script mines convoys of concrete trucks with all four algorithms — the
exact CMC baseline and the CuTS family — verifies they agree, and prints
the Figure 12/13-style cost comparison, plus the coherent routes a
dispatcher would consolidate.
"""

import time

from repro import cmc, convoy_sets_equal, cuts, normalize_convoys, truck_dataset


def main():
    spec = truck_dataset(seed=7, scale=0.05)
    db = spec.database
    stats = db.statistics()
    print(
        f"truck-like dataset: {stats['num_objects']} trucks, "
        f"T={stats['time_domain_length']}, "
        f"{stats['total_points']} samples"
    )
    print(f"query: m={spec.m}, k={spec.k}, e={spec.eps:g}\n")

    started = time.perf_counter()
    exact = normalize_convoys(cmc(db, spec.m, spec.k, spec.eps))
    cmc_seconds = time.perf_counter() - started
    print(f"CMC    : {cmc_seconds:6.2f}s   {len(exact)} convoys")

    for variant in ("cuts", "cuts+", "cuts*"):
        result = cuts(db, spec.m, spec.k, spec.eps, variant=variant)
        agree = convoy_sets_equal(exact, result.convoys)
        d = result.durations
        print(
            f"{variant:7s}: {result.total_time:6.2f}s   "
            f"simplify {d['simplification']:.2f}s | "
            f"filter {d['filter']:.2f}s | refine {d['refinement']:.2f}s   "
            f"answers match CMC: {agree}"
        )

    print("\nlargest coherent fleets (consolidation candidates):")
    for convoy in sorted(exact, key=lambda c: c.size, reverse=True)[:5]:
        trucks = ", ".join(sorted(convoy.objects))
        print(
            f"  {convoy.size} trucks [{trucks}] ran together for "
            f"{convoy.lifetime} time points"
        )


if __name__ == "__main__":
    main()
