#!/usr/bin/env python
"""Streaming quickstart: discover convoys online, as position updates arrive.

The offline algorithms (``cmc``, ``cuts``) need the whole trajectory
database up front.  ``StreamingConvoyMiner`` answers the same convoy query
one snapshot at a time: push ``{object_id: (x, y)}`` per tick, get each
convoy back the moment its chain fails to extend, and ``flush()`` at the
end of the stream for the convoys still travelling at the last tick.

This script mines a seeded synthetic stream (four groups of five objects
planted among independent walkers), prints convoys as they close, and then
shows that replaying a materialized database through the engine gives
exactly the offline answer — both paths drive the same engine core.
"""

from repro import (
    StreamingConvoyMiner,
    cmc,
    mine_stream,
    replay_database,
    synthetic_stream,
    truck_dataset,
)


def main():
    m, k, eps = 3, 15, 10.0
    print(f"convoy query: m={m}, k={k}, e={eps}")
    print("\nmining a live synthetic stream (120 objects, 80 ticks):")
    miner = StreamingConvoyMiner(m, k, eps)
    tail = []
    for t, snapshot in synthetic_stream(120, 80, seed=21, eps=eps):
        for convoy in miner.feed(t, snapshot):
            members = ", ".join(sorted(convoy.objects))
            print(f"  t={t}: closed {{{members}}} "
                  f"t=[{convoy.t_start}, {convoy.t_end}]")
    tail = miner.flush()
    print(f"  end of stream: {len(tail)} convoy(s) still open were emitted")
    counters = miner.counters
    print(f"  {counters['snapshots']} snapshots, "
          f"{counters['clustering_calls']} clustering passes "
          f"(one per snapshot — never a recompute), "
          f"peak {counters['peak_candidates']} live candidates")

    print("\noffline/streaming agreement on a paper-like database:")
    spec = truck_dataset(scale=0.01)
    offline = cmc(spec.database, spec.m, spec.k, spec.eps)
    streamed = mine_stream(
        replay_database(spec.database), spec.m, spec.k, spec.eps
    )
    assert offline == streamed
    print(f"  replaying {spec.database.total_points} points gave the same "
          f"{len(offline)} convoy(s) as offline CMC")


if __name__ == "__main__":
    main()
