#!/usr/bin/env python
"""Carpooling discovery on a car-like commuter dataset.

The paper's motivating application: "the identification of cars that
follow the same routes at the same time may be used for the organization
of carpooling".  This script generates the Car-like synthetic dataset
(heterogeneous trip lengths, staggered departures, irregular sampling),
mines convoys with CuTS*, and turns each convoy into a carpool proposal —
who could share a ride, and for how long.
"""

from repro import car_dataset, co_travel_totals, cuts, top_convoys


def main():
    spec = car_dataset(seed=13, scale=0.05)
    db = spec.database
    stats = db.statistics()
    print(
        f"car-like dataset: {stats['num_objects']} cars, "
        f"{stats['time_domain_length']} time points, "
        f"{stats['total_points']} GPS samples"
    )
    print(
        f"query: groups of >= {spec.m} cars within e={spec.eps:g} "
        f"for >= {spec.k} consecutive time points\n"
    )

    result = cuts(db, spec.m, spec.k, spec.eps, variant="cuts*")
    proposals = top_convoys(result.convoys, limit=10, by="mass")

    if not proposals:
        print("no shared rides found — try a larger e or smaller k")
        return

    print(f"{len(proposals)} carpool opportunities, best first:")
    for rank, convoy in enumerate(proposals, start=1):
        riders = ", ".join(sorted(convoy.objects))
        saved = (convoy.size - 1) * convoy.lifetime
        print(
            f"  #{rank}: cars [{riders}] share the road during "
            f"t=[{convoy.t_start}, {convoy.t_end}] — pooling would save "
            f"~{saved} vehicle-time-points"
        )

    pairs = co_travel_totals(result.convoys).most_common(3)
    if pairs:
        print("\nstrongest pairwise matches:")
        for pair, total in pairs:
            a, b = sorted(pair)
            print(f"  {a} + {b}: {total} shared time points")

    durations = result.durations
    print(
        f"\ndiscovery took {sum(durations.values()):.2f}s "
        f"(simplify {durations['simplification']:.2f}s, "
        f"filter {durations['filter']:.2f}s, "
        f"refine {durations['refinement']:.2f}s)"
    )
    print(
        f"ground truth: {len(spec.planted)} planted commuter groups; "
        f"{sum(1 for p in spec.planted if p.is_detected_by(result.convoys, spec.m))} detected"
    )


if __name__ == "__main__":
    main()
