"""Incremental cross-tick snapshot clustering.

CMC (Algorithm 1) pays a full ``DBSCAN(O_t, e, m)`` pass per snapshot even
though consecutive GPS snapshots are nearly identical: most objects move
far less than ``e`` per tick, many not at all.  This module maintains the
previous tick's clustering as a materialized view and applies the position
*delta* instead — the incremental view-maintenance framing, applied to
density clustering rather than joins.

Exactness contract
------------------

:meth:`IncrementalSnapshotClusterer.cluster` returns, for every snapshot,
**exactly** the list :func:`repro.clustering.dbscan.dbscan` would return —
same member sets, same cluster order — regardless of call history.  That is
possible because the classical DBSCAN sweep of
:func:`~repro.clustering.generic_dbscan.density_cluster`, although stated
order-dependently, has a fully order-independent characterization:

* an object is **core** iff ``|NH_e(p)| >= m``;
* the clusters' core sets are the connected components of the core objects
  under ``e``-adjacency;
* a component's *creation key* is the smallest scan position (index in the
  snapshot's key order) over its cores — the sweep creates clusters exactly
  in that order, because the first core of a component that the seed loop
  reaches is necessarily still unvisited;
* a **border** object (non-core with at least one core neighbour) belongs
  to the adjacent component with the smallest creation key — components are
  grown to completion one at a time, so the earliest-created adjacent
  component labels every reachable border first;
* the returned list is the components sorted by creation key.

The incremental pass maintains those invariants under a snapshot delta.

Delta maintenance
-----------------

Between ticks the clusterer diffs the new snapshot against the previous
one, applies the delta to a persistent mutable
:class:`~repro.clustering.grid_index.GridIndex` (``insert`` / ``move`` /
``remove``), and refreshes the cached ``e``-neighbourhood list of every
object in the *dirty region* ``D`` — the changed objects plus every object
within ``e`` of a changed object's old or new position (the only objects
whose neighbourhood can have changed).  It then rebuilds density
connections over the smallest self-contained superset ``R`` of ``D``:

* every previous component owning a core in ``D`` or adjacent to ``D`` is
  absorbed whole (a component can split only by losing one of its own
  cores, and merge only through a dirty bridge, so un-absorbed components
  keep their core sets verbatim);
* neighbours of absorbed members join ``R`` as individuals, so borders
  contested between an absorbed and a spliced component are re-resolved;
* everything else — the untouched components — is *spliced* through
  unchanged, except that creation keys are recomputed from the current
  snapshot order and borders recorded as ambiguous (more than one adjacent
  component) are re-assigned when the key order flipped.

When the raw churn (inserted + removed + moved objects) exceeds
``churn_threshold`` of the snapshot, delta maintenance would touch most of
the data anyway, so the clusterer falls back to a full rebuild — the same
code path with every object dirty.  Correctness never depends on the
threshold; it only trades constant factors.  The threshold itself can be a
fixed fraction or an :class:`AdaptiveChurnThreshold` that observes the
measured cost of delta and full passes online and tracks the crossover.

Cluster diffs
-------------

:meth:`IncrementalSnapshotClusterer.cluster_with_delta` additionally
returns a :class:`ClusterDelta` describing the tick *as a diff*: every
output cluster carries a stable integer id (spliced components keep theirs
across ticks) and a classification — ``unchanged`` (same member set as the
previous tick), ``changed`` (the id survived but the member set differs),
or ``appeared`` (the id is new this tick); ids present last tick but gone
now are listed as ``vanished``.  Downstream consumers — specifically
:meth:`repro.core.candidates.CandidateTracker.advance_delta` — use the
diff to skip work on clusters that were spliced through untouched, turning
the whole streaming convoy pipeline into a materialized view maintained
under updates.  ``unchanged`` is exact (member sets compared against a
pre-mutation copy taken on first touch), never merely "probably the same".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.clustering.grid_index import GridIndex
from repro.clustering.numeric import VectorGridIndex, validate_backend

#: :class:`ClusterDelta` classifications.
UNCHANGED = "unchanged"
CHANGED = "changed"
APPEARED = "appeared"


@dataclass(frozen=True)
class ClusterDelta:
    """One tick's clustering described as a diff against the previous tick.

    Attributes:
        ids: stable integer cluster id per output cluster, parallel to the
            cluster list returned alongside this delta.  A spliced
            component keeps its id for as long as it survives; rebuilt or
            new components get fresh ids (ids are never reused).
        status: classification per output cluster, parallel to ``ids`` —
            :data:`UNCHANGED` (member set identical to this id's set at
            the previous tick), :data:`CHANGED` (same id, different
            members), or :data:`APPEARED` (id new this tick; includes
            every cluster of a full rebuild pass).
        vanished: sorted ids that existed at the previous tick but have no
            output cluster this tick (dissolved, absorbed, or emptied).
    """

    ids: tuple
    status: tuple
    vanished: tuple

    def __post_init__(self):
        if len(self.ids) != len(self.status):
            raise ValueError(
                f"ids/status length mismatch: {len(self.ids)} ids, "
                f"{len(self.status)} statuses"
            )

    @property
    def unchanged_count(self):
        """How many output clusters were spliced through byte-identical."""
        return sum(1 for s in self.status if s == UNCHANGED)


class AdaptiveChurnThreshold:
    """Online estimate of the delta-vs-full crossover churn fraction.

    The fixed ``churn_threshold`` default encodes a one-off measurement of
    where delta maintenance stops paying.  That crossover moves with the
    hardware, the workload's cluster geometry, and — now that cluster
    diffs feed the candidate tracker — with how much downstream work each
    spliced cluster saves.  This policy measures instead of assuming.

    Cost model: a full pass costs ``phi`` seconds per snapshot point; a
    delta pass costs ``a + b * c`` seconds per snapshot point at churn
    fraction ``c`` — the fixed term ``a`` covers the per-tick snapshot
    diff and bookkeeping that every delta pass pays regardless of churn,
    the slope ``b`` the churn-proportional dirty-region work.  The delta
    pass wins while ``a + b * c < phi``, so the threshold sits at the
    crossover ``(phi - a) / b``.  ``phi`` is an EWMA over observed full
    passes; ``a`` and ``b`` come from an exponentially weighted linear fit
    of the observed delta-pass costs against their churn fractions.  (A
    naive per-churned-point average instead of the affine fit would fold
    the fixed term into the slope and bias the threshold toward zero at
    low churn — a one-way ratchet into full passes on exactly the
    workloads the delta path serves best.)

    The slope is unidentifiable until delta passes at distinct churn
    levels have been seen, and a non-positive fitted slope means the
    measurements are still noise; in both cases the threshold simply
    keeps its current value.  Correctness never depends on the estimate
    (both pass kinds return identical clusterings); a bad estimate only
    costs constant factors, so the EWMA can be aggressive.

    Args:
        initial: threshold used until the fit is identifiable.
        alpha: EWMA weight of the newest observation, in (0, 1].
        floor, ceiling: clamp for the estimated threshold, keeping a
            misread clock from pinning the policy at "never" or "always".
    """

    def __init__(self, initial=0.35, alpha=0.25, floor=0.02, ceiling=0.95):
        if not 0.0 <= initial <= 1.0:
            raise ValueError(f"initial must be in [0, 1], got {initial}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= floor <= ceiling <= 1.0:
            raise ValueError(
                f"need 0 <= floor <= ceiling <= 1, got [{floor}, {ceiling}]"
            )
        self._alpha = alpha
        self._floor = floor
        self._ceiling = ceiling
        self.threshold = min(max(initial, floor), ceiling)
        self._full_unit = None  # EWMA seconds per point over full passes
        # EWMA moments of (churn fraction c, seconds-per-point u) over
        # delta passes; E[cu] - E[c]E[u] = b * Var[c] for affine data, so
        # the fit is exact whenever the observations follow the model.
        self._mc = None
        self._mu = None
        self._mcc = None
        self._mcu = None

    def observe_full(self, n_points, seconds):
        """Record a completed full pass over ``n_points`` objects."""
        if n_points > 0 and seconds > 0.0:
            self._full_unit = self._ewma(self._full_unit, seconds / n_points)
            self._refresh()

    def observe_delta(self, churned_points, n_points, seconds):
        """Record a completed delta pass: churn applied, size, cost.

        ``churned_points`` may be zero (a pure key-order tick): such
        passes cost only the fixed term and anchor the fit's intercept.
        """
        if churned_points < 0 or n_points <= 0 or seconds <= 0.0:
            return
        c = min(churned_points / n_points, 1.0)
        u = seconds / n_points
        self._mc = self._ewma(self._mc, c)
        self._mu = self._ewma(self._mu, u)
        self._mcc = self._ewma(self._mcc, c * c)
        self._mcu = self._ewma(self._mcu, c * u)
        self._refresh()

    def _ewma(self, current, observation):
        if current is None:
            return observation
        return current + self._alpha * (observation - current)

    def _refresh(self):
        if self._full_unit is None or self._mc is None:
            return
        churn_spread = self._mcc - self._mc * self._mc
        if churn_spread <= 1e-12:
            return  # one churn level so far: slope unidentifiable
        slope = (self._mcu - self._mc * self._mu) / churn_spread
        if slope <= 0.0:
            return  # noise: more churn cannot genuinely cost less
        intercept = self._mu - slope * self._mc
        crossover = (self._full_unit - intercept) / slope
        self.threshold = min(max(crossover, self._floor), self._ceiling)

#: Counter keys a clusterer maintains in its ``counters`` dict.
COUNTER_KEYS = (
    "ticks",
    "full_passes",
    "incremental_passes",
    "clustered_points",
    "refreshed_neighborhoods",
    "reclustered_points",
)


class IncrementalSnapshotClusterer:
    """Cross-tick snapshot DBSCAN with dirty-region delta maintenance.

    Drop-in replacement for calling
    :func:`repro.clustering.dbscan.dbscan` once per snapshot: feed the
    successive snapshots of a stream to :meth:`cluster` and each call
    returns exactly what the fresh pass would, at a fraction of the cost
    when consecutive snapshots overlap heavily.

    Args:
        eps: density distance threshold ``e``.
        min_pts: the ``m`` of the convoy query (minimum neighbourhood size
            for a core object, the object itself included).
        churn_threshold: fall back to a full rebuild when more than this
            fraction of the snapshot changed since the previous tick
            (insertions + removals + moves, over the new snapshot size).
            A float fixes the threshold; the string ``"adaptive"`` (or an
            :class:`AdaptiveChurnThreshold` instance) estimates the
            crossover online from measured pass costs instead.
        counters: optional dict receiving bookkeeping totals (the
            ``COUNTER_KEYS``); a fresh dict is created when omitted and is
            always available as :attr:`counters`.
        backend: numeric backend for the neighbourhood queries —
            ``"python"`` (default) keeps the per-query
            :class:`~repro.clustering.grid_index.GridIndex` walks;
            ``"vector"`` maintains positions in the contiguous
            :class:`~repro.clustering.numeric.VectorGridIndex` and
            answers the full pass plus every tick's dirty-region
            patching as batched eps-disk queries.  The clustering
            depends only on neighbour *sets*, which both backends
            compute identically, so the answer (clusters and deltas)
            is bit-for-bit the same.
    """

    def __init__(self, eps, min_pts, churn_threshold=0.35, counters=None,
                 backend="python"):
        self._backend = validate_backend(backend)
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        if churn_threshold == "adaptive":
            self._adaptive = AdaptiveChurnThreshold()
        elif isinstance(churn_threshold, AdaptiveChurnThreshold):
            self._adaptive = churn_threshold
        else:
            if (
                not isinstance(churn_threshold, (int, float))
                or not 0.0 <= churn_threshold <= 1.0
            ):
                raise ValueError(
                    f"churn_threshold must be in [0, 1], 'adaptive', or an "
                    f"AdaptiveChurnThreshold, got {churn_threshold!r}"
                )
            self._adaptive = None
            self._fixed_threshold = churn_threshold
        self._eps = float(eps)
        self._min_pts = min_pts
        self.counters = counters if counters is not None else {}
        for key in COUNTER_KEYS:
            self.counters.setdefault(key, 0)
        self.reset()

    @property
    def churn_threshold(self):
        """The currently effective fallback threshold (fixed or adaptive)."""
        if self._adaptive is not None:
            return self._adaptive.threshold
        return self._fixed_threshold

    def reset(self):
        """Drop all cross-tick state; the next call runs a full pass."""
        self._snapshot = None      # {id: (x, y)} as of the last cluster()
        self._index = None         # persistent mutable GridIndex
        self._nbrs = {}            # id -> list of ids within eps (incl. self)
        self._core = set()         # ids with |NH_e| >= min_pts
        self._comp_of = {}         # id -> component label (cores + borders)
        self._members = {}         # label -> set of member ids
        self._comp_cores = {}      # label -> set of core ids
        self._border_cands = {}    # border id -> set of >= 2 adjacent labels
        self._next_label = 0
        self._touched = {}         # label -> pre-tick member-set copy

    # -- public entry points -----------------------------------------------

    def cluster(self, snapshot):
        """Cluster one snapshot; equals ``dbscan(snapshot, eps, min_pts)``.

        Args:
            snapshot: mapping ``{object_id: (x, y)}``.  Snapshots may share
                ids with previous calls (same object later in time) or not;
                any overlap is exploited, none is required.

        Returns:
            List of clusters, each a ``set`` of object ids, identical —
            member sets *and* list order — to what a fresh
            :func:`~repro.clustering.dbscan.dbscan` pass over this snapshot
            returns.
        """
        return self.cluster_with_delta(snapshot)[0]

    def cluster_with_delta(self, snapshot):
        """Cluster one snapshot and describe the tick as a diff.

        The cluster list is exactly what :meth:`cluster` returns (it is
        the same computation); the accompanying :class:`ClusterDelta`
        names each output cluster with a stable id and classifies it
        against the previous tick.  Consumers that maintain per-cluster
        state — the candidate tracker's
        :meth:`~repro.core.candidates.CandidateTracker.advance_delta` —
        can then skip every cluster reported ``unchanged``.

        Returns:
            ``(clusters, delta)`` where ``clusters`` is the
            :meth:`cluster` answer and ``delta`` a :class:`ClusterDelta`
            parallel to it.
        """
        started = time.perf_counter() if self._adaptive is not None else None
        clusters, delta, pass_kind, churn = self._cluster_impl(snapshot)
        if started is not None:
            elapsed = time.perf_counter() - started
            if pass_kind == "full":
                self._adaptive.observe_full(len(snapshot), elapsed)
            else:
                self._adaptive.observe_delta(churn, len(snapshot), elapsed)
        return clusters, delta

    def _cluster_impl(self, snapshot):
        """Run one tick; return ``(clusters, delta, pass_kind, churn)``."""
        self.counters["ticks"] += 1
        self.counters["clustered_points"] += len(snapshot)
        self._touched = {}
        prev_labels = frozenset(self._members)
        if self._snapshot is None:
            return self._full_pass(snapshot, prev_labels)

        removed = [o for o in self._snapshot if o not in snapshot]
        changed = [
            o for o, xy in snapshot.items()
            if o not in self._snapshot or self._snapshot[o] != xy
        ]
        churn = len(removed) + len(changed)
        if churn > self.churn_threshold * max(len(snapshot), 1):
            return self._full_pass(snapshot, prev_labels)
        self.counters["incremental_passes"] += 1
        if churn == 0:
            # Positions are identical; only the key order (hence creation
            # keys and ambiguous-border ties) can differ from last tick.
            clusters, delta = self._finish(snapshot, frozenset(), (),
                                           prev_labels)
            return clusters, delta, "delta", churn

        # Validate up front so a bad coordinate cannot leave the index
        # half-mutated.
        for o in changed:
            GridIndex._check_finite(o, snapshot[o])

        # Apply the delta to the persistent index, remembering old positions.
        eps = self._eps
        index = self._index
        nbrs = self._nbrs
        touched = set(changed)
        touched.update(removed)
        moved = []
        for o in removed:
            index.remove(o)
        for o in changed:
            if o in self._snapshot:
                moved.append(o)
                index.move(o, snapshot[o])
            else:
                index.insert(o, snapshot[o])

        # Dirty region D: every object whose e-neighbourhood changed — the
        # changed objects plus everything within eps of a changed object's
        # old or new position.  One post-mutation query per changed
        # endpoint both finds D and *patches* the cached neighbour list of
        # every clean member in place (an unmoved object's list gains or
        # loses exactly the changed objects that crossed its eps-disk), so
        # no per-dirty-object re-query is needed.  All queries run against
        # the fully mutated index, so the whole set can be answered as one
        # batch (the vector backend's bulk path); the answers are consumed
        # in the exact order the per-query code issued them.
        inserted = [o for o in changed if o not in self._snapshot]
        queries = [self._snapshot[o] for o in removed]
        for o in moved:
            queries.append(self._snapshot[o])
            queries.append(snapshot[o])
        queries.extend(snapshot[o] for o in inserted)
        answers = iter(self._batch_neighbors(queries, eps))
        dirty = set(changed)
        for o in removed:
            for q in next(answers):
                dirty.add(q)
                if q not in touched:
                    nbrs[q].remove(o)
        for o in moved:
            before = next(answers)
            after = next(answers)
            before_set = set(before)
            after_set = set(after)
            for q in before:
                dirty.add(q)
                if q not in touched and q not in after_set:
                    nbrs[q].remove(o)
            for q in after:
                dirty.add(q)
                if q not in touched and q not in before_set:
                    nbrs[q].append(o)
            nbrs[o] = after
        for o in inserted:
            fresh = next(answers)
            for q in fresh:
                dirty.add(q)
                if q not in touched:
                    nbrs[q].append(o)
            nbrs[o] = fresh
        self.counters["refreshed_neighborhoods"] += len(dirty)

        # Queue components that cannot be spliced: any component owning a
        # previous core that was removed, changed, or sits next to the
        # dirty region (splits route through a lost/demoted core of the
        # component itself; merges and promotions route through a dirty
        # bridge adjacent to one of its cores).
        absorb = set()
        for o in removed:
            label = self._detach_removed(o)
            if label is not None:
                absorb.add(label)
        recluster = set(dirty)
        for q in dirty:
            if q in self._core:
                absorb.add(self._comp_of[q])
            for n in self._nbrs[q]:
                if n in self._core:
                    absorb.add(self._comp_of[n])
                else:
                    recluster.add(n)

        # Absorb queued components whole, pulling their members' neighbours
        # in as individuals (their border assignments may be contested).
        # Cores of un-queued components stay spliced: a clean non-core
        # member cannot carry a merge, so adjacency through it is harmless.
        for label in absorb:
            for mem in self._members[label]:
                recluster.add(mem)
                for n in self._nbrs[mem]:
                    if n in recluster or n in self._core:
                        continue
                    recluster.add(n)
        clusters, delta = self._finish(snapshot, absorb, recluster,
                                       prev_labels)
        return clusters, delta, "delta", churn

    # -- internals ---------------------------------------------------------

    def _batch_neighbors(self, queries, radius):
        """Answer a batch of eps-disk queries against the current index.

        The vector backend answers the whole batch in one pass; the
        python backend issues the same queries one by one.  Per query
        the returned id *set* is identical either way.
        """
        if self._backend == "vector":
            return self._index.neighbors_within_batch(queries, radius)
        index = self._index
        return [index.neighbors_within(xy, radius) for xy in queries]

    def _full_pass(self, snapshot, prev_labels):
        """Rebuild everything from scratch (first call or high churn)."""
        self.counters["full_passes"] += 1
        eps = self._eps
        if self._backend == "vector":
            index = VectorGridIndex(eps, snapshot)  # validates coordinates
            self._index = index
            self._nbrs = index.all_neighbors(eps)
        else:
            index = GridIndex(eps, snapshot)  # validates coordinates
            self._index = index
            self._nbrs = {o: index.neighbors_of(o, eps) for o in snapshot}
        self.counters["refreshed_neighborhoods"] += len(snapshot)
        self._core = set()
        self._comp_of = {}
        self._members = {}
        self._comp_cores = {}
        self._border_cands = {}
        clusters, delta = self._finish(snapshot, frozenset(), set(snapshot),
                                       prev_labels)
        return clusters, delta, "full", len(snapshot)

    def _touch(self, label):
        """Snapshot a component's member set before its first mutation."""
        if label not in self._touched:
            self._touched[label] = set(self._members[label])

    def _detach_removed(self, o):
        """Forget a departed object; return its component label (or None)."""
        self._nbrs.pop(o, None)
        self._border_cands.pop(o, None)
        was_core = o in self._core
        self._core.discard(o)
        label = self._comp_of.pop(o, None)
        if label is not None:
            self._touch(label)
            self._members[label].discard(o)
            if was_core:
                self._comp_cores[label].discard(o)
                return label
        return None

    def _finish(self, snapshot, absorb, recluster, prev_labels):
        """Recluster ``recluster``, splice the rest, emit the sorted answer.

        Args:
            snapshot: the new snapshot (defines the scan order).
            absorb: labels of previous components being dissolved.
            recluster: ids (all present in ``snapshot``) whose density
                connections are rebuilt; every id outside it keeps its core
                status, component and — unless recorded as ambiguous — its
                border assignment.
            prev_labels: the component labels that existed before this tick
                (classifies the delta's appeared/vanished entries).

        Returns:
            ``(clusters, delta)`` — the sorted cluster list and its
            :class:`ClusterDelta`.
        """
        min_pts = self._min_pts
        nbrs = self._nbrs
        core = self._core
        comp_of = self._comp_of
        members = self._members
        comp_cores = self._comp_cores
        self.counters["reclustered_points"] += len(recluster)

        # Detach everything being reclustered.  Cores of spliced components
        # never appear here (the absorption closure guarantees it), so a
        # detached id with a surviving label is one of its borders.
        for label in absorb:
            del members[label]
            del comp_cores[label]
        for q in recluster:
            label = comp_of.pop(q, None)
            if label is not None and label not in absorb:
                self._touch(label)
                members[label].discard(q)
            self._border_cands.pop(q, None)

        # Refresh core status (no-op for ids whose lists did not change).
        for q in recluster:
            if len(nbrs[q]) >= min_pts:
                core.add(q)
            else:
                core.discard(q)

        # Rebuild the core components inside the reclustered region.  Every
        # core adjacent to a reclustered core is itself reclustered — a
        # cross-boundary core adjacency would mean the absorption closure
        # missed a merge, so it is checked outright.
        for q in recluster:
            if q not in core or q in comp_of:
                continue
            label = self._next_label
            self._next_label += 1
            component = []
            stack = [q]
            comp_of[q] = label
            while stack:
                c = stack.pop()
                component.append(c)
                for n in nbrs[c]:
                    if n not in core:
                        continue
                    existing = comp_of.get(n)
                    if existing == label:
                        continue
                    if existing is not None or n not in recluster:
                        raise AssertionError(
                            "incremental clustering invariant violated: "
                            f"core {n!r} adjacent to reclustered core {c!r} "
                            "was spliced"
                        )
                    comp_of[n] = label
                    stack.append(n)
            comp_cores[label] = set(component)
            members[label] = set(component)

        # Creation keys: the sweep order of density_cluster, recomputed
        # against the *current* snapshot's key order every tick.
        position = {o: i for i, o in enumerate(snapshot)}
        creation_key = {
            label: min(position[c] for c in cores)
            for label, cores in comp_cores.items()
        }

        # Borders of the reclustered region: earliest-created adjacent
        # component (which may be a spliced one).
        for q in recluster:
            if q in core:
                continue
            cands = {comp_of[c] for c in nbrs[q] if c in core}
            if not cands:
                continue  # noise
            best = min(cands, key=creation_key.__getitem__)
            comp_of[q] = best
            self._touch(best)
            members[best].add(q)
            if len(cands) > 1:
                self._border_cands[q] = cands

        # Spliced ambiguous borders: the key order may have flipped even
        # though no position changed (snapshot key order is data).
        for q, cands in self._border_cands.items():
            if q in recluster:
                continue
            best = min(cands, key=creation_key.__getitem__)
            current = comp_of[q]
            if best != current:
                self._touch(current)
                self._touch(best)
                members[current].discard(q)
                members[best].add(q)
                comp_of[q] = best

        self._snapshot = dict(snapshot)
        order = sorted(members, key=creation_key.__getitem__)
        # Classify each surviving label exactly: a label is ``unchanged``
        # only when no mutation touched it this tick, or every mutation
        # cancelled out against the pre-tick copy.
        touched = self._touched
        status = []
        for label in order:
            if label not in prev_labels:
                status.append(APPEARED)
            elif label in touched and members[label] != touched[label]:
                status.append(CHANGED)
            else:
                status.append(UNCHANGED)
        delta = ClusterDelta(
            ids=tuple(order),
            status=tuple(status),
            vanished=tuple(sorted(prev_labels - members.keys())),
        )
        return [set(members[label]) for label in order], delta
