"""Incremental cross-tick snapshot clustering.

CMC (Algorithm 1) pays a full ``DBSCAN(O_t, e, m)`` pass per snapshot even
though consecutive GPS snapshots are nearly identical: most objects move
far less than ``e`` per tick, many not at all.  This module maintains the
previous tick's clustering as a materialized view and applies the position
*delta* instead — the incremental view-maintenance framing, applied to
density clustering rather than joins.

Exactness contract
------------------

:meth:`IncrementalSnapshotClusterer.cluster` returns, for every snapshot,
**exactly** the list :func:`repro.clustering.dbscan.dbscan` would return —
same member sets, same cluster order — regardless of call history.  That is
possible because the classical DBSCAN sweep of
:func:`~repro.clustering.generic_dbscan.density_cluster`, although stated
order-dependently, has a fully order-independent characterization:

* an object is **core** iff ``|NH_e(p)| >= m``;
* the clusters' core sets are the connected components of the core objects
  under ``e``-adjacency;
* a component's *creation key* is the smallest scan position (index in the
  snapshot's key order) over its cores — the sweep creates clusters exactly
  in that order, because the first core of a component that the seed loop
  reaches is necessarily still unvisited;
* a **border** object (non-core with at least one core neighbour) belongs
  to the adjacent component with the smallest creation key — components are
  grown to completion one at a time, so the earliest-created adjacent
  component labels every reachable border first;
* the returned list is the components sorted by creation key.

The incremental pass maintains those invariants under a snapshot delta.

Delta maintenance
-----------------

Between ticks the clusterer diffs the new snapshot against the previous
one, applies the delta to a persistent mutable
:class:`~repro.clustering.grid_index.GridIndex` (``insert`` / ``move`` /
``remove``), and refreshes the cached ``e``-neighbourhood list of every
object in the *dirty region* ``D`` — the changed objects plus every object
within ``e`` of a changed object's old or new position (the only objects
whose neighbourhood can have changed).  It then rebuilds density
connections over the smallest self-contained superset ``R`` of ``D``:

* every previous component owning a core in ``D`` or adjacent to ``D`` is
  absorbed whole (a component can split only by losing one of its own
  cores, and merge only through a dirty bridge, so un-absorbed components
  keep their core sets verbatim);
* neighbours of absorbed members join ``R`` as individuals, so borders
  contested between an absorbed and a spliced component are re-resolved;
* everything else — the untouched components — is *spliced* through
  unchanged, except that creation keys are recomputed from the current
  snapshot order and borders recorded as ambiguous (more than one adjacent
  component) are re-assigned when the key order flipped.

When the raw churn (inserted + removed + moved objects) exceeds
``churn_threshold`` of the snapshot, delta maintenance would touch most of
the data anyway, so the clusterer falls back to a full rebuild — the same
code path with every object dirty.  Correctness never depends on the
threshold; it only trades constant factors.
"""

from __future__ import annotations

from repro.clustering.grid_index import GridIndex

#: Counter keys a clusterer maintains in its ``counters`` dict.
COUNTER_KEYS = (
    "ticks",
    "full_passes",
    "incremental_passes",
    "clustered_points",
    "refreshed_neighborhoods",
    "reclustered_points",
)


class IncrementalSnapshotClusterer:
    """Cross-tick snapshot DBSCAN with dirty-region delta maintenance.

    Drop-in replacement for calling
    :func:`repro.clustering.dbscan.dbscan` once per snapshot: feed the
    successive snapshots of a stream to :meth:`cluster` and each call
    returns exactly what the fresh pass would, at a fraction of the cost
    when consecutive snapshots overlap heavily.

    Args:
        eps: density distance threshold ``e``.
        min_pts: the ``m`` of the convoy query (minimum neighbourhood size
            for a core object, the object itself included).
        churn_threshold: fall back to a full rebuild when more than this
            fraction of the snapshot changed since the previous tick
            (insertions + removals + moves, over the new snapshot size).
        counters: optional dict receiving bookkeeping totals (the
            ``COUNTER_KEYS``); a fresh dict is created when omitted and is
            always available as :attr:`counters`.
    """

    def __init__(self, eps, min_pts, churn_threshold=0.35, counters=None):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        if not 0.0 <= churn_threshold <= 1.0:
            raise ValueError(
                f"churn_threshold must be in [0, 1], got {churn_threshold}"
            )
        self._eps = float(eps)
        self._min_pts = min_pts
        self._churn_threshold = churn_threshold
        self.counters = counters if counters is not None else {}
        for key in COUNTER_KEYS:
            self.counters.setdefault(key, 0)
        self.reset()

    def reset(self):
        """Drop all cross-tick state; the next call runs a full pass."""
        self._snapshot = None      # {id: (x, y)} as of the last cluster()
        self._index = None         # persistent mutable GridIndex
        self._nbrs = {}            # id -> list of ids within eps (incl. self)
        self._core = set()         # ids with |NH_e| >= min_pts
        self._comp_of = {}         # id -> component label (cores + borders)
        self._members = {}         # label -> set of member ids
        self._comp_cores = {}      # label -> set of core ids
        self._border_cands = {}    # border id -> set of >= 2 adjacent labels
        self._next_label = 0

    # -- public entry point ------------------------------------------------

    def cluster(self, snapshot):
        """Cluster one snapshot; equals ``dbscan(snapshot, eps, min_pts)``.

        Args:
            snapshot: mapping ``{object_id: (x, y)}``.  Snapshots may share
                ids with previous calls (same object later in time) or not;
                any overlap is exploited, none is required.

        Returns:
            List of clusters, each a ``set`` of object ids, identical —
            member sets *and* list order — to what a fresh
            :func:`~repro.clustering.dbscan.dbscan` pass over this snapshot
            returns.
        """
        self.counters["ticks"] += 1
        self.counters["clustered_points"] += len(snapshot)
        if self._snapshot is None:
            return self._full_pass(snapshot)

        removed = [o for o in self._snapshot if o not in snapshot]
        changed = [
            o for o, xy in snapshot.items()
            if o not in self._snapshot or self._snapshot[o] != xy
        ]
        churn = len(removed) + len(changed)
        if churn > self._churn_threshold * max(len(snapshot), 1):
            return self._full_pass(snapshot)
        self.counters["incremental_passes"] += 1
        if churn == 0:
            # Positions are identical; only the key order (hence creation
            # keys and ambiguous-border ties) can differ from last tick.
            return self._finish(snapshot, frozenset(), ())

        # Validate up front so a bad coordinate cannot leave the index
        # half-mutated.
        for o in changed:
            GridIndex._check_finite(o, snapshot[o])

        # Apply the delta to the persistent index, remembering old positions.
        eps = self._eps
        index = self._index
        nbrs = self._nbrs
        touched = set(changed)
        touched.update(removed)
        moved = []
        for o in removed:
            index.remove(o)
        for o in changed:
            if o in self._snapshot:
                moved.append(o)
                index.move(o, snapshot[o])
            else:
                index.insert(o, snapshot[o])

        # Dirty region D: every object whose e-neighbourhood changed — the
        # changed objects plus everything within eps of a changed object's
        # old or new position.  One post-mutation query per changed
        # endpoint both finds D and *patches* the cached neighbour list of
        # every clean member in place (an unmoved object's list gains or
        # loses exactly the changed objects that crossed its eps-disk), so
        # no per-dirty-object re-query is needed.
        dirty = set(changed)
        for o in removed:
            for q in index.neighbors_within(self._snapshot[o], eps):
                dirty.add(q)
                if q not in touched:
                    nbrs[q].remove(o)
        for o in moved:
            before = index.neighbors_within(self._snapshot[o], eps)
            after = index.neighbors_within(snapshot[o], eps)
            before_set = set(before)
            after_set = set(after)
            for q in before:
                dirty.add(q)
                if q not in touched and q not in after_set:
                    nbrs[q].remove(o)
            for q in after:
                dirty.add(q)
                if q not in touched and q not in before_set:
                    nbrs[q].append(o)
            nbrs[o] = after
        for o in changed:
            if o in self._snapshot:
                continue  # moved, handled above
            fresh = index.neighbors_within(snapshot[o], eps)
            for q in fresh:
                dirty.add(q)
                if q not in touched:
                    nbrs[q].append(o)
            nbrs[o] = fresh
        self.counters["refreshed_neighborhoods"] += len(dirty)

        # Queue components that cannot be spliced: any component owning a
        # previous core that was removed, changed, or sits next to the
        # dirty region (splits route through a lost/demoted core of the
        # component itself; merges and promotions route through a dirty
        # bridge adjacent to one of its cores).
        absorb = set()
        for o in removed:
            label = self._detach_removed(o)
            if label is not None:
                absorb.add(label)
        recluster = set(dirty)
        for q in dirty:
            if q in self._core:
                absorb.add(self._comp_of[q])
            for n in self._nbrs[q]:
                if n in self._core:
                    absorb.add(self._comp_of[n])
                else:
                    recluster.add(n)

        # Absorb queued components whole, pulling their members' neighbours
        # in as individuals (their border assignments may be contested).
        # Cores of un-queued components stay spliced: a clean non-core
        # member cannot carry a merge, so adjacency through it is harmless.
        for label in absorb:
            for mem in self._members[label]:
                recluster.add(mem)
                for n in self._nbrs[mem]:
                    if n in recluster or n in self._core:
                        continue
                    recluster.add(n)
        return self._finish(snapshot, absorb, recluster)

    # -- internals ---------------------------------------------------------

    def _full_pass(self, snapshot):
        """Rebuild everything from scratch (first call or high churn)."""
        self.counters["full_passes"] += 1
        index = GridIndex(self._eps, snapshot)  # validates coordinates
        self._index = index
        eps = self._eps
        self._nbrs = {o: index.neighbors_of(o, eps) for o in snapshot}
        self.counters["refreshed_neighborhoods"] += len(snapshot)
        self._core = set()
        self._comp_of = {}
        self._members = {}
        self._comp_cores = {}
        self._border_cands = {}
        return self._finish(snapshot, frozenset(), set(snapshot))

    def _detach_removed(self, o):
        """Forget a departed object; return its component label (or None)."""
        self._nbrs.pop(o, None)
        self._border_cands.pop(o, None)
        was_core = o in self._core
        self._core.discard(o)
        label = self._comp_of.pop(o, None)
        if label is not None:
            self._members[label].discard(o)
            if was_core:
                self._comp_cores[label].discard(o)
                return label
        return None

    def _finish(self, snapshot, absorb, recluster):
        """Recluster ``recluster``, splice the rest, emit the sorted answer.

        Args:
            snapshot: the new snapshot (defines the scan order).
            absorb: labels of previous components being dissolved.
            recluster: ids (all present in ``snapshot``) whose density
                connections are rebuilt; every id outside it keeps its core
                status, component and — unless recorded as ambiguous — its
                border assignment.
        """
        min_pts = self._min_pts
        nbrs = self._nbrs
        core = self._core
        comp_of = self._comp_of
        members = self._members
        comp_cores = self._comp_cores
        self.counters["reclustered_points"] += len(recluster)

        # Detach everything being reclustered.  Cores of spliced components
        # never appear here (the absorption closure guarantees it), so a
        # detached id with a surviving label is one of its borders.
        for label in absorb:
            del members[label]
            del comp_cores[label]
        for q in recluster:
            label = comp_of.pop(q, None)
            if label is not None and label not in absorb:
                members[label].discard(q)
            self._border_cands.pop(q, None)

        # Refresh core status (no-op for ids whose lists did not change).
        for q in recluster:
            if len(nbrs[q]) >= min_pts:
                core.add(q)
            else:
                core.discard(q)

        # Rebuild the core components inside the reclustered region.  Every
        # core adjacent to a reclustered core is itself reclustered — a
        # cross-boundary core adjacency would mean the absorption closure
        # missed a merge, so it is checked outright.
        for q in recluster:
            if q not in core or q in comp_of:
                continue
            label = self._next_label
            self._next_label += 1
            component = []
            stack = [q]
            comp_of[q] = label
            while stack:
                c = stack.pop()
                component.append(c)
                for n in nbrs[c]:
                    if n not in core:
                        continue
                    existing = comp_of.get(n)
                    if existing == label:
                        continue
                    if existing is not None or n not in recluster:
                        raise AssertionError(
                            "incremental clustering invariant violated: "
                            f"core {n!r} adjacent to reclustered core {c!r} "
                            "was spliced"
                        )
                    comp_of[n] = label
                    stack.append(n)
            comp_cores[label] = set(component)
            members[label] = set(component)

        # Creation keys: the sweep order of density_cluster, recomputed
        # against the *current* snapshot's key order every tick.
        position = {o: i for i, o in enumerate(snapshot)}
        creation_key = {
            label: min(position[c] for c in cores)
            for label, cores in comp_cores.items()
        }

        # Borders of the reclustered region: earliest-created adjacent
        # component (which may be a spliced one).
        for q in recluster:
            if q in core:
                continue
            cands = {comp_of[c] for c in nbrs[q] if c in core}
            if not cands:
                continue  # noise
            best = min(cands, key=creation_key.__getitem__)
            comp_of[q] = best
            members[best].add(q)
            if len(cands) > 1:
                self._border_cands[q] = cands

        # Spliced ambiguous borders: the key order may have flipped even
        # though no position changed (snapshot key order is data).
        for q, cands in self._border_cands.items():
            if q in recluster:
                continue
            best = min(cands, key=creation_key.__getitem__)
            current = comp_of[q]
            if best != current:
                members[current].discard(q)
                members[best].add(q)
                comp_of[q] = best

        self._snapshot = dict(snapshot)
        order = sorted(members, key=creation_key.__getitem__)
        return [set(members[label]) for label in order]
