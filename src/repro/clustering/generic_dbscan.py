"""DBSCAN over opaque items with a pluggable neighbourhood oracle.

Both clustering problems in the paper — points at one time instant (CMC) and
polylines of simplified segments within one time partition (the CuTS
filter's TRAJ-DBSCAN) — are instances of the same density-clustering
skeleton; only the neighbourhood predicate differs.  This module implements
that skeleton once, faithfully to Ester et al.:

* an item is a **core** item if its neighbourhood (including itself) holds
  at least ``min_pts`` items;
* a cluster is a maximal set of density-connected items: every core item's
  whole neighbourhood joins its cluster, and the cluster is grown
  breadth-first through core items;
* non-core items reachable from a core item become **border** items of that
  cluster; unreachable items are noise and appear in no cluster.

Border items are assigned to the first cluster that reaches them (the
classical, order-dependent DBSCAN rule).  The convoy algorithms only rely
on properties that are order-independent — cluster membership of core
points and the set of clusters of size ``>= m`` — so the tie-break never
affects convoy results.
"""

from __future__ import annotations


def density_cluster(num_items, neighbors_fn, min_pts):
    """Cluster items ``0 .. num_items-1`` by density connection.

    Args:
        num_items: number of items; items are dense integer indices.
        neighbors_fn: callable mapping an item index to an iterable of the
            indices within distance ``e`` of it, **including the item
            itself**.  The function may be called more than once per item.
        min_pts: the ``m`` of the paper — minimum neighbourhood size for an
            item to be a core item.

    Returns:
        List of clusters, each a list of item indices.  Noise items are
        omitted.  Cluster and member order follow discovery order, which is
        deterministic given ``neighbors_fn``.
    """
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    UNVISITED = -2
    NOISE = -1
    labels = [UNVISITED] * num_items
    clusters = []
    for seed in range(num_items):
        if labels[seed] != UNVISITED:
            continue
        seed_neighbors = list(neighbors_fn(seed))
        if len(seed_neighbors) < min_pts:
            labels[seed] = NOISE
            continue
        cluster_id = len(clusters)
        members = []
        clusters.append(members)
        labels[seed] = cluster_id
        members.append(seed)
        # Breadth-first expansion through core items.
        frontier = list(seed_neighbors)
        position = 0
        while position < len(frontier):
            item = frontier[position]
            position += 1
            label = labels[item]
            if label == NOISE:
                # Border item: reachable from a core item, adopt the cluster.
                labels[item] = cluster_id
                members.append(item)
                continue
            if label != UNVISITED:
                continue
            labels[item] = cluster_id
            members.append(item)
            item_neighbors = list(neighbors_fn(item))
            if len(item_neighbors) >= min_pts:
                frontier.extend(item_neighbors)
    return clusters
