"""Snapshot DBSCAN over point locations (Algorithm 1, line 7).

This is the ``DBSCAN(O_t, e, m)`` call of CMC: cluster the locations of the
objects alive at one time point, with distance threshold ``e`` and minimum
cluster density ``m``.  Neighbourhood queries go through
:class:`repro.clustering.grid_index.GridIndex`; the clustering skeleton is
:func:`repro.clustering.generic_dbscan.density_cluster`.
"""

from __future__ import annotations

from repro.clustering.generic_dbscan import density_cluster
from repro.clustering.grid_index import GridIndex
from repro.clustering.numeric import VectorGridIndex, validate_backend


def dbscan(points, eps, min_pts, backend="python"):
    """Cluster identified points by density connection.

    Args:
        points: mapping ``{object_id: (x, y)}``.
        eps: the distance threshold ``e`` of the convoy query.
        min_pts: the ``m`` of the convoy query; an object is a core object
            when at least ``m`` objects (itself included) lie within ``e``.
        backend: numeric backend for the neighbourhood queries —
            ``"python"`` (default) walks the grid point by point through
            :class:`~repro.clustering.grid_index.GridIndex`;
            ``"vector"`` answers every point's eps-disk in one batched
            pass over contiguous storage
            (:class:`~repro.clustering.numeric.VectorGridIndex`).  The
            clustering depends only on the neighbour *sets*, which both
            backends compute identically, so the answer is bit-for-bit
            the same.

    Returns:
        List of clusters, each a ``set`` of object ids; noise objects are in
        no cluster.  Every returned cluster has at least ``min_pts``
        members, because a cluster contains at least one core object and
        that object's entire neighbourhood.
    """
    backend = validate_backend(backend)
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not points:
        return []
    ids = list(points.keys())
    id_to_idx = {object_id: i for i, object_id in enumerate(ids)}

    if backend == "vector":
        index = VectorGridIndex(eps, points)
        by_id = index.all_neighbors(eps)
        lists = [
            [id_to_idx[q] for q in by_id[object_id]] for object_id in ids
        ]
        clusters = density_cluster(len(ids), lists.__getitem__, min_pts)
        return [{ids[i] for i in members} for members in clusters]

    index = GridIndex(eps, points)
    cache = {}

    def neighbors_fn(item):
        cached = cache.get(item)
        if cached is None:
            found = index.neighbors_of(ids[item], eps)
            cached = [id_to_idx[object_id] for object_id in found]
            cache[item] = cached
        return cached

    clusters = density_cluster(len(ids), neighbors_fn, min_pts)
    return [{ids[i] for i in members} for members in clusters]


def dbscan_brute_force(points, eps, min_pts):
    """Reference DBSCAN using O(N^2) neighbourhood scans.

    Exists purely as a test oracle for :func:`dbscan` — it shares the
    clustering skeleton but computes neighbourhoods by checking every pair,
    so any disagreement isolates a bug in the grid index.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not points:
        return []
    ids = list(points.keys())
    locations = [points[object_id] for object_id in ids]
    eps2 = eps * eps

    def neighbors_fn(item):
        x, y = locations[item]
        result = []
        for other, (ox, oy) in enumerate(locations):
            dx = ox - x
            dy = oy - y
            if dx * dx + dy * dy <= eps2:
                result.append(other)
        return result

    clusters = density_cluster(len(ids), neighbors_fn, min_pts)
    return [{ids[i] for i in members} for members in clusters]
