"""Per-partition polylines of simplified segments.

The CuTS filter (Algorithm 2) clusters, within each time partition ``T_z``,
one *polyline* per object: the sequence of that object's simplified line
segments whose time intervals intersect ``T_z``.  A
:class:`PartitionPolyline` bundles those segments with the per-segment
**actual tolerances** δ(l') of Definition 4, plus the cached aggregates the
range search needs (bounding box, max tolerance, covered time interval).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PartitionPolyline:
    """The simplified sub-trajectory of one object inside one time partition.

    Attributes:
        object_id: identifier of the moving object.
        segments: time-ordered tuple of
            :class:`repro.trajectory.segment.TimestampedSegment`.
        tolerances: tuple of actual tolerances δ(l'), parallel to
            ``segments``.  Passing the *global* tolerance δ for every
            segment degrades the filter exactly as Figure 14 measures
            (the "Use of Global Tolerance" series).
    """

    object_id: object
    segments: tuple
    tolerances: tuple
    _bbox: object = field(init=False, repr=False, compare=False)
    _max_tolerance: float = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.segments:
            raise ValueError(f"polyline for {self.object_id!r} has no segments")
        if len(self.segments) != len(self.tolerances):
            raise ValueError(
                f"polyline for {self.object_id!r}: {len(self.segments)} segments "
                f"but {len(self.tolerances)} tolerances"
            )
        for prev, cur in zip(self.segments, self.segments[1:]):
            if cur.t_start < prev.t_start:
                raise ValueError(
                    f"polyline for {self.object_id!r}: segments not time-ordered"
                )
        box = self.segments[0].bbox
        for segment in self.segments[1:]:
            box = box.union(segment.bbox)
        object.__setattr__(self, "_bbox", box)
        object.__setattr__(self, "_max_tolerance", max(self.tolerances))

    @property
    def bbox(self):
        """The minimum bounding box of every segment in the polyline."""
        return self._bbox

    @property
    def max_tolerance(self):
        """``δmax``: the largest actual tolerance over the polyline's segments."""
        return self._max_tolerance

    @property
    def t_start(self):
        """First time point covered by any segment."""
        return self.segments[0].t_start

    @property
    def t_end(self):
        """Last time point covered by any segment."""
        return max(segment.t_end for segment in self.segments)

    def overlaps_interval(self, t_lo, t_hi):
        """Return True if any segment's time interval meets ``[t_lo, t_hi]``."""
        return self.t_start <= t_hi and t_lo <= self.t_end
