"""Vectorized numeric backend for the per-tick hot kernels.

Everything the streaming pipeline pays for per tick bottoms out in three
kernels: the eps-neighbourhood queries behind snapshot DBSCAN, the
dirty-region neighbourhood patching of the incremental clusterer, and
the candidate-cluster matching join of the tracker.  The classic
implementations walk Python dicts and sets point by point; this module
provides drop-in *batch* implementations over contiguous storage:

* :class:`PositionStore` — object positions as two parallel contiguous
  ``float64`` columns with an id↔row map (swap-remove keeps the columns
  dense under churn).  Storage is a stdlib ``array('d')`` pair; when
  numpy is importable the kernels take zero-copy ``frombuffer`` views
  over the very same buffers, and when it is not they fall back to
  ``memoryview`` scans — numpy is an optional accelerator, never a
  dependency.
* :class:`VectorGridIndex` — the same exact uniform-grid contract as
  :class:`repro.clustering.grid_index.GridIndex` (identical neighbour
  *sets* for every query), plus batch entry points: cell ids for the
  whole store computed by one vectorized floor-divide, and eps-disk
  queries grouped by grid cell so each 3×3 candidate block is gathered
  once and filtered by a single squared-distance broadcast per group.
* :func:`match_candidates_vector` — a drop-in for
  :func:`repro.core.candidates.match_candidates`: cluster members and
  candidate object sets are interned to dense int ids; because snapshot
  clusters are disjoint the whole batch reduces to one owner-table join
  (a gather plus one ``bincount`` over every candidate's id array when
  numpy is present, a hash-join otherwise) instead of ``jobs ×
  clusters`` pairwise set intersections; overlapping cluster families —
  legal under the kernel contract, never produced by DBSCAN — take the
  general sorted-array merge-intersection path.  The function is pure
  and picklable, so :class:`~repro.streaming.sharding.
  ShardedCandidateTracker` ships it to executor backends exactly like
  the classic kernel.

Exactness: every kernel computes the same squared-distance expression,
the same floor-divide cell ids, and the same intersection sets as its
pure-Python counterpart, so outputs are bit-for-bit interchangeable —
the differential suites (``tests/clustering/test_numeric.py``,
``tests/streaming/test_vector_equivalence.py``) run both backends in
lockstep and hold them equal, with and without numpy installed.
"""

from __future__ import annotations

from array import array

from repro.clustering.grid_index import GridIndex

try:  # numpy is optional: kernels fall back to array('d')/memoryview.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the import shim
    np = None

#: Numeric backend names accepted wherever ``backend=`` is threaded
#: through (dbscan, the incremental clusterer, the candidate tracker,
#: the streaming engine, ``cmc()``, and ``stream --backend``).
NUMERIC_BACKENDS = ("python", "vector")

#: Queries broadcast against a 3×3 candidate block in slices of this
#: many rows, bounding the temporary distance matrix.
_QUERY_CHUNK = 1024


def have_numpy():
    """Whether the vector kernels are currently numpy-accelerated."""
    return np is not None


def validate_backend(backend):
    """Return a normalized backend name; reject unknown ones loudly."""
    if backend is None:
        return "python"
    if backend not in NUMERIC_BACKENDS:
        raise ValueError(
            f"backend must be one of {NUMERIC_BACKENDS}, got {backend!r}"
        )
    return backend


class PositionStore:
    """Dense contiguous ``(x, y)`` columns with an id↔row map.

    Rows are kept dense under removal by swap-remove: the last row moves
    into the vacated slot, so the columns never fragment and batch
    kernels can view them as one contiguous ``float64`` block.
    """

    __slots__ = ("_xs", "_ys", "_ids", "_rows")

    def __init__(self):
        self._xs = array("d")
        self._ys = array("d")
        self._ids = []  # row -> item id
        self._rows = {}  # item id -> row

    def __len__(self):
        return len(self._ids)

    def __contains__(self, item_id):
        return item_id in self._rows

    def ids(self):
        """The stored ids in row order (a copy)."""
        return list(self._ids)

    def row_of(self, item_id):
        """Current row of an id (rows move under swap-remove)."""
        return self._rows[item_id]

    def add(self, item_id, x, y):
        """Append one position; duplicate ids are rejected."""
        if item_id in self._rows:
            raise ValueError(f"duplicate item id {item_id!r}")
        self._rows[item_id] = len(self._ids)
        self._ids.append(item_id)
        self._xs.append(x)
        self._ys.append(y)

    def remove(self, item_id):
        """Swap-remove one position; unknown ids raise KeyError."""
        row = self._rows.pop(item_id)
        last = len(self._ids) - 1
        if row != last:
            moved = self._ids[last]
            self._ids[row] = moved
            self._rows[moved] = row
            self._xs[row] = self._xs[last]
            self._ys[row] = self._ys[last]
        self._ids.pop()
        self._xs.pop()
        self._ys.pop()

    def set(self, item_id, x, y):
        """Overwrite an id's position in place."""
        row = self._rows[item_id]
        self._xs[row] = x
        self._ys[row] = y

    def get(self, item_id):
        """The stored ``(x, y)`` of an id."""
        row = self._rows[item_id]
        return (self._xs[row], self._ys[row])

    def columns(self):
        """Zero-copy views over the coordinate columns.

        Numpy ``float64`` views when numpy is available, ``memoryview``
        pairs otherwise — either way reads go straight to the
        ``array('d')`` buffers, no copies.  Views are only valid until
        the next mutation (appends may reallocate).
        """
        if np is not None and len(self._ids):
            return (
                np.frombuffer(self._xs, dtype=np.float64),
                np.frombuffer(self._ys, dtype=np.float64),
            )
        return memoryview(self._xs), memoryview(self._ys)


class VectorGridIndex:
    """Uniform grid over a :class:`PositionStore`, batch-query capable.

    The single-query surface (``insert`` / ``remove`` / ``move`` /
    ``neighbors_within`` / ``neighbors_of``) matches
    :class:`~repro.clustering.grid_index.GridIndex` exactly — same
    validation, same neighbour sets — so the incremental clusterer can
    swap one for the other.  The batch entry points are where the
    backend earns its keep: :meth:`neighbors_within_batch` groups
    queries by grid cell and filters each group's 3×3 candidate block
    with one squared-distance broadcast, and :meth:`all_neighbors`
    answers the full-pass "every point's eps-disk" question that way.
    """

    def __init__(self, cell_size, points=None):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._cells = {}  # (gx, gy) -> {item_id: None}
        self._store = PositionStore()
        if points:
            self._bulk_load(points)

    def __len__(self):
        return len(self._store)

    def __contains__(self, item_id):
        return item_id in self._store

    @property
    def cell_size(self):
        """The configured cell side length."""
        return self._cell_size

    def _cell_of(self, xy):
        return (int(xy[0] // self._cell_size), int(xy[1] // self._cell_size))

    def _bulk_load(self, points):
        """Load a whole snapshot: one vectorized cell-id pass when numpy
        is available, the scalar loop otherwise (identical cells)."""
        store = self._store
        for item_id, xy in points.items():
            GridIndex._check_finite(item_id, xy)
            store.add(item_id, xy[0], xy[1])
        ids = store._ids
        if np is not None and ids:
            xs, ys = store.columns()
            gx = np.floor_divide(xs, self._cell_size).astype(np.int64)
            gy = np.floor_divide(ys, self._cell_size).astype(np.int64)
            cells = self._cells
            for row, item_id in enumerate(ids):
                cell = (int(gx[row]), int(gy[row]))
                bucket = cells.get(cell)
                if bucket is None:
                    bucket = cells[cell] = {}
                bucket[item_id] = None
        else:
            for item_id in ids:
                cell = self._cell_of(store.get(item_id))
                bucket = self._cells.get(cell)
                if bucket is None:
                    bucket = self._cells[cell] = {}
                bucket[item_id] = None

    def insert(self, item_id, xy):
        """Insert one point; duplicate ids / non-finite coords rejected."""
        if item_id in self._store:
            raise ValueError(f"duplicate item id {item_id!r}")
        GridIndex._check_finite(item_id, xy)
        self._store.add(item_id, xy[0], xy[1])
        self._cells.setdefault(self._cell_of(xy), {})[item_id] = None

    def remove(self, item_id):
        """Remove a point; unknown ids raise :class:`KeyError`."""
        if item_id not in self._store:
            raise KeyError(f"unknown item id {item_id!r}")
        cell = self._cell_of(self._store.get(item_id))
        self._store.remove(item_id)
        bucket = self._cells[cell]
        del bucket[item_id]
        if not bucket:
            del self._cells[cell]

    def move(self, item_id, xy):
        """Update a position, re-bucketing only on a cell change."""
        if item_id not in self._store:
            raise KeyError(f"unknown item id {item_id!r}")
        GridIndex._check_finite(item_id, xy)
        old_cell = self._cell_of(self._store.get(item_id))
        new_cell = self._cell_of(xy)
        self._store.set(item_id, xy[0], xy[1])
        if old_cell != new_cell:
            bucket = self._cells[old_cell]
            del bucket[item_id]
            if not bucket:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, {})[item_id] = None

    def location_of(self, item_id):
        """Return the stored ``(x, y)`` of an item."""
        return self._store.get(item_id)

    def _block_ids(self, cell, reach):
        """Every stored id in the ``(2*reach+1)²`` block around a cell."""
        cx, cy = cell
        cells = self._cells
        out = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                bucket = cells.get((gx, gy))
                if bucket:
                    out.extend(bucket)
        return out

    def neighbors_within(self, xy, radius):
        """Ids of all points with ``D(xy, point) <= radius`` (exact)."""
        return self.neighbors_within_batch((xy,), radius)[0]

    def neighbors_of(self, item_id, radius):
        """``NH_radius`` of a stored item (including the item itself)."""
        return self.neighbors_within(self._store.get(item_id), radius)

    def neighbors_within_batch(self, queries, radius):
        """Answer many eps-disk queries in one batched pass.

        Args:
            queries: sequence of ``(x, y)`` query points.
            radius: non-negative query radius.

        Returns:
            List parallel to ``queries``; entry ``i`` lists the ids of
            every stored point within ``radius`` of ``queries[i]`` —
            the same *set* per query that
            :meth:`GridIndex.neighbors_within` returns.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        results = [None] * len(queries)
        if not len(self._store):
            for qi in range(len(queries)):
                results[qi] = []
            return results
        reach = int(radius // self._cell_size) + 1
        by_cell = {}
        for qi, xy in enumerate(queries):
            by_cell.setdefault(self._cell_of(xy), []).append(qi)
        for cell, group in by_cell.items():
            block = self._block_ids(cell, reach)
            if not block:
                for qi in group:
                    results[qi] = []
                continue
            if np is not None:
                self._filter_block_numpy(queries, group, block, radius,
                                         results)
            else:
                self._filter_block_python(queries, group, block, radius,
                                          results)
        return results

    def _filter_block_numpy(self, queries, group, block, radius, results):
        """Broadcast one squared-distance filter per query chunk."""
        store = self._store
        rows = np.fromiter(
            (store._rows[i] for i in block), dtype=np.intp, count=len(block)
        )
        xs, ys = store.columns()
        bx = xs[rows]
        by = ys[rows]
        radius2 = radius * radius
        for start in range(0, len(group), _QUERY_CHUNK):
            chunk = group[start:start + _QUERY_CHUNK]
            qx = np.fromiter(
                (queries[qi][0] for qi in chunk), dtype=np.float64,
                count=len(chunk),
            )
            qy = np.fromiter(
                (queries[qi][1] for qi in chunk), dtype=np.float64,
                count=len(chunk),
            )
            dx = bx[None, :] - qx[:, None]
            dy = by[None, :] - qy[:, None]
            mask = dx * dx + dy * dy <= radius2
            for k, qi in enumerate(chunk):
                results[qi] = [
                    block[j] for j in np.nonzero(mask[k])[0].tolist()
                ]

    def _filter_block_python(self, queries, group, block, radius, results):
        """The same filter over memoryviews (no-numpy fallback)."""
        store = self._store
        xs, ys = store.columns()
        store_rows = store._rows
        rows = [store_rows[i] for i in block]
        radius2 = radius * radius
        for qi in group:
            x, y = queries[qi]
            hits = []
            for item_id, row in zip(block, rows):
                dx = xs[row] - x
                dy = ys[row] - y
                if dx * dx + dy * dy <= radius2:
                    hits.append(item_id)
            results[qi] = hits

    def all_neighbors(self, radius):
        """Every stored point's eps-disk in one batch.

        Returns:
            Dict ``{item_id: [neighbor ids]}`` covering every stored
            point (each point's own id included, at distance zero).
        """
        store = self._store
        ids = store.ids()
        queries = [store.get(item_id) for item_id in ids]
        return dict(zip(ids, self.neighbors_within_batch(queries, radius)))


# -- the matching kernel ----------------------------------------------------


def match_candidates_vector(members, jobs, min_objects):
    """Batch candidate–cluster matching; drop-in for ``match_candidates``.

    Same contract as :func:`repro.core.candidates.match_candidates` —
    same arguments, same ``(pos, [(cluster_index, intersection)])``
    output in job order with matches in scan order — but the
    ``jobs × clusters`` pairwise set intersections are replaced by a
    batch join: every cluster member is interned to a dense int id, and
    since snapshot clusters are disjoint each object names its *owner*
    cluster, so one pass over each candidate's id array yields its
    intersection size with **every** cluster at once (a gather plus one
    ``bincount`` under numpy, a hash-join without).  Cluster families
    with overlapping members — legal under the kernel contract, never
    produced by density clustering — fall back to sorted-array
    merge-intersection per scanned pair.

    Pure and picklable by construction, exactly like the classic
    kernel, so the sharded tracker ships it to executor backends
    unchanged.
    """
    if not jobs:
        return []
    if not members:
        return [(pos, []) for pos, _objects, _scan in jobs]
    owner_of = {}
    disjoint = True
    for index, cluster in enumerate(members):
        for obj in cluster:
            if obj in owner_of:
                disjoint = False
                break
            owner_of[obj] = index
        if not disjoint:
            break
    if not disjoint:
        return _match_merge_intersect(members, jobs, min_objects)
    n_clusters = len(members)
    if np is not None:
        counts = _owner_join_counts_numpy(owner_of, jobs, n_clusters)
    else:
        counts = _owner_join_counts_python(owner_of, jobs, n_clusters)
    out = []
    for j, (pos, objects, scan) in enumerate(jobs):
        row = counts[j]
        if scan is None:
            indexes = [index for index in row if row[index] >= min_objects]
            indexes.sort()
        else:
            indexes = [
                index for index in scan if row.get(index, 0) >= min_objects
            ]
        matches = [
            (index,
             frozenset(obj for obj in objects if obj in members[index]))
            for index in indexes
        ]
        out.append((pos, matches))
    return out


def _owner_join_counts_numpy(owner_of, jobs, n_clusters):
    """Per-job intersection sizes with every cluster, via one gather +
    one ``bincount`` over the concatenated candidate id arrays."""
    segments = []
    codes = []
    for j, (_pos, objects, _scan) in enumerate(jobs):
        hits = [owner_of[obj] for obj in objects if obj in owner_of]
        codes.extend(hits)
        segments.extend([j] * len(hits))
    if not codes:
        return [{} for _ in jobs]
    owners = np.fromiter(codes, dtype=np.int64, count=len(codes))
    seg = np.fromiter(segments, dtype=np.int64, count=len(segments))
    flat = np.bincount(
        seg * n_clusters + owners, minlength=len(jobs) * n_clusters
    ).reshape(len(jobs), n_clusters)
    rows = []
    for j in range(len(jobs)):
        nz = np.nonzero(flat[j])[0]
        rows.append({
            int(index): int(flat[j][index]) for index in nz.tolist()
        })
    return rows


def _owner_join_counts_python(owner_of, jobs, n_clusters):
    """The same per-job owner counts as a pure hash-join (no numpy)."""
    rows = []
    for _pos, objects, _scan in jobs:
        row = {}
        for obj in objects:
            index = owner_of.get(obj)
            if index is not None:
                row[index] = row.get(index, 0) + 1
        rows.append(row)
    return rows


def _match_merge_intersect(members, jobs, min_objects):
    """General (overlapping-cluster) path: sorted int-id arrays, one
    merge-intersection per scanned pair."""
    code_of = {}
    for cluster in members:
        for obj in cluster:
            if obj not in code_of:
                code_of[obj] = len(code_of)
    encoded = [
        _sorted_codes(cluster, code_of, all_known=True)
        for cluster in members
    ]
    full_scan = range(len(members))
    out = []
    for pos, objects, scan in jobs:
        cand = _sorted_codes(objects, code_of, all_known=False)
        matches = []
        for index in (full_scan if scan is None else scan):
            common = _merge_intersect_size(cand, encoded[index])
            if common >= min_objects:
                cluster = members[index]
                matches.append((
                    index,
                    frozenset(obj for obj in objects if obj in cluster),
                ))
        out.append((pos, matches))
    return out


def _sorted_codes(objects, code_of, all_known):
    """Encode a set of objects as a sorted int-id array."""
    if all_known:
        values = [code_of[obj] for obj in objects]
    else:
        values = [
            code_of[obj] for obj in objects if obj in code_of
        ]
    values.sort()
    if np is not None:
        return np.fromiter(values, dtype=np.int64, count=len(values))
    return values


def _merge_intersect_size(left, right):
    """|left ∩ right| for two sorted unique int-id arrays."""
    if np is not None:
        return int(
            np.intersect1d(left, right, assume_unique=True).size
        )
    i = j = size = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        a, b = left[i], right[j]
        if a == b:
            size += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return size
