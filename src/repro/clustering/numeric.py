"""Vectorized numeric backend for the per-tick hot kernels.

Everything the streaming pipeline pays for per tick bottoms out in three
kernels: the eps-neighbourhood queries behind snapshot DBSCAN, the
dirty-region neighbourhood patching of the incremental clusterer, and
the candidate-cluster matching join of the tracker.  The classic
implementations walk Python dicts and sets point by point; this module
provides drop-in *batch* implementations over contiguous storage:

* :class:`PositionStore` — object positions as two parallel contiguous
  ``float64`` columns with an id↔row map (swap-remove keeps the columns
  dense under churn).  Storage is a stdlib ``array('d')`` pair; when
  numpy is importable the kernels take zero-copy ``frombuffer`` views
  over the very same buffers, and when it is not they fall back to
  ``memoryview`` scans — numpy is an optional accelerator, never a
  dependency.
* :class:`VectorGridIndex` — the same exact uniform-grid contract as
  :class:`repro.clustering.grid_index.GridIndex` (identical neighbour
  *sets* for every query), plus batch entry points: cell ids for the
  whole store computed by one vectorized floor-divide, and eps-disk
  queries grouped by grid cell so each 3×3 candidate block is gathered
  once and filtered by a single squared-distance broadcast per group.
* :func:`match_candidates_vector` — a drop-in for
  :func:`repro.core.candidates.match_candidates`: cluster members and
  candidate object sets are interned to dense int ids; because snapshot
  clusters are disjoint the whole batch reduces to one owner-table join
  (a gather plus one ``bincount`` over every candidate's id array when
  numpy is present, a hash-join otherwise) instead of ``jobs ×
  clusters`` pairwise set intersections; overlapping cluster families —
  legal under the kernel contract, never produced by DBSCAN — take the
  general sorted-array merge-intersection path.  The function is pure
  and picklable, so :class:`~repro.streaming.sharding.
  ShardedCandidateTracker` ships it to executor backends exactly like
  the classic kernel.

Exactness: every kernel computes the same squared-distance expression,
the same floor-divide cell ids, and the same intersection sets as its
pure-Python counterpart, so outputs are bit-for-bit interchangeable —
the differential suites (``tests/clustering/test_numeric.py``,
``tests/streaming/test_vector_equivalence.py``) run both backends in
lockstep and hold them equal, with and without numpy installed.
"""

from __future__ import annotations

from array import array

from repro.clustering.grid_index import GridIndex

try:  # numpy is optional: kernels fall back to array('d')/memoryview.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the import shim
    np = None

#: Numeric backend names accepted wherever ``backend=`` is threaded
#: through (dbscan, the incremental clusterer, the candidate tracker,
#: the streaming engine, ``cmc()``, and ``stream --backend``).
NUMERIC_BACKENDS = ("python", "vector")

#: Match-kernel names accepted wherever ``match_kernel=`` is threaded
#: through (the candidate trackers, the streaming engine, ``cmc()``,
#: and ``stream --match-kernel``).  ``scalar`` is the pure-Python
#: pairwise kernel, ``merge`` the sorted-array merge-intersection
#: kernel, ``bitset`` the packed-word popcount kernel, and ``auto``
#: picks between the three per tick via :class:`KernelDispatch`.
MATCH_KERNELS = ("auto", "scalar", "merge", "bitset")

#: Queries broadcast against a 3×3 candidate block in slices of this
#: many rows, bounding the temporary distance matrix.
_QUERY_CHUNK = 1024

#: The bitset kernel broadcasts job rows against cluster rows in blocks
#: of at most this many ``uint64`` temporaries (16 MiB).
_BITSET_BLOCK_WORDS = 1 << 21


def have_numpy():
    """Whether the vector kernels are currently numpy-accelerated."""
    return np is not None


def validate_backend(backend):
    """Return a normalized backend name; reject unknown ones loudly."""
    if backend is None:
        return "python"
    if backend not in NUMERIC_BACKENDS:
        raise ValueError(
            f"backend must be one of {NUMERIC_BACKENDS}, got {backend!r}"
        )
    return backend


def validate_match_kernel(kernel):
    """Return a validated match-kernel name; reject unknown ones loudly.

    ``None`` is passed through and means "follow the numeric backend"
    (the pre-dispatch default).  Anything else must be one of
    :data:`MATCH_KERNELS` — unknown names raise a :class:`ValueError`
    that names the offending value and lists the valid choices, so a
    typo at the miner / ``cmc()`` / CLI layer never surfaces as a bare
    :class:`KeyError` from a registry lookup.
    """
    if kernel is None:
        return None
    if kernel not in MATCH_KERNELS:
        raise ValueError(
            f"match kernel must be one of {MATCH_KERNELS}, got {kernel!r}"
        )
    return kernel


class PositionStore:
    """Dense contiguous ``(x, y)`` columns with an id↔row map.

    Rows are kept dense under removal by swap-remove: the last row moves
    into the vacated slot, so the columns never fragment and batch
    kernels can view them as one contiguous ``float64`` block.
    """

    __slots__ = ("_xs", "_ys", "_ids", "_rows")

    def __init__(self):
        self._xs = array("d")
        self._ys = array("d")
        self._ids = []  # row -> item id
        self._rows = {}  # item id -> row

    def __len__(self):
        return len(self._ids)

    def __contains__(self, item_id):
        return item_id in self._rows

    def ids(self):
        """The stored ids in row order (a copy)."""
        return list(self._ids)

    def row_of(self, item_id):
        """Current row of an id (rows move under swap-remove)."""
        return self._rows[item_id]

    def add(self, item_id, x, y):
        """Append one position; duplicate ids are rejected."""
        if item_id in self._rows:
            raise ValueError(f"duplicate item id {item_id!r}")
        self._rows[item_id] = len(self._ids)
        self._ids.append(item_id)
        self._xs.append(x)
        self._ys.append(y)

    def remove(self, item_id):
        """Swap-remove one position; unknown ids raise KeyError."""
        row = self._rows.pop(item_id)
        last = len(self._ids) - 1
        if row != last:
            moved = self._ids[last]
            self._ids[row] = moved
            self._rows[moved] = row
            self._xs[row] = self._xs[last]
            self._ys[row] = self._ys[last]
        self._ids.pop()
        self._xs.pop()
        self._ys.pop()

    def set(self, item_id, x, y):
        """Overwrite an id's position in place."""
        row = self._rows[item_id]
        self._xs[row] = x
        self._ys[row] = y

    def get(self, item_id):
        """The stored ``(x, y)`` of an id."""
        row = self._rows[item_id]
        return (self._xs[row], self._ys[row])

    def columns(self):
        """Zero-copy views over the coordinate columns.

        Numpy ``float64`` views when numpy is available, ``memoryview``
        pairs otherwise — either way reads go straight to the
        ``array('d')`` buffers, no copies.  Views are only valid until
        the next mutation (appends may reallocate).
        """
        if np is not None and len(self._ids):
            return (
                np.frombuffer(self._xs, dtype=np.float64),
                np.frombuffer(self._ys, dtype=np.float64),
            )
        return memoryview(self._xs), memoryview(self._ys)


class VectorGridIndex:
    """Uniform grid over a :class:`PositionStore`, batch-query capable.

    The single-query surface (``insert`` / ``remove`` / ``move`` /
    ``neighbors_within`` / ``neighbors_of``) matches
    :class:`~repro.clustering.grid_index.GridIndex` exactly — same
    validation, same neighbour sets — so the incremental clusterer can
    swap one for the other.  The batch entry points are where the
    backend earns its keep: :meth:`neighbors_within_batch` groups
    queries by grid cell and filters each group's 3×3 candidate block
    with one squared-distance broadcast, and :meth:`all_neighbors`
    answers the full-pass "every point's eps-disk" question that way.
    """

    def __init__(self, cell_size, points=None):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._cells = {}  # (gx, gy) -> {item_id: None}
        self._store = PositionStore()
        if points:
            self._bulk_load(points)

    def __len__(self):
        return len(self._store)

    def __contains__(self, item_id):
        return item_id in self._store

    @property
    def cell_size(self):
        """The configured cell side length."""
        return self._cell_size

    def _cell_of(self, xy):
        return (int(xy[0] // self._cell_size), int(xy[1] // self._cell_size))

    def _bulk_load(self, points):
        """Load a whole snapshot: one vectorized cell-id pass when numpy
        is available, the scalar loop otherwise (identical cells)."""
        store = self._store
        for item_id, xy in points.items():
            GridIndex._check_finite(item_id, xy)
            store.add(item_id, xy[0], xy[1])
        ids = store._ids
        if np is not None and ids:
            xs, ys = store.columns()
            gx = np.floor_divide(xs, self._cell_size).astype(np.int64)
            gy = np.floor_divide(ys, self._cell_size).astype(np.int64)
            cells = self._cells
            for row, item_id in enumerate(ids):
                cell = (int(gx[row]), int(gy[row]))
                bucket = cells.get(cell)
                if bucket is None:
                    bucket = cells[cell] = {}
                bucket[item_id] = None
        else:
            for item_id in ids:
                cell = self._cell_of(store.get(item_id))
                bucket = self._cells.get(cell)
                if bucket is None:
                    bucket = self._cells[cell] = {}
                bucket[item_id] = None

    def insert(self, item_id, xy):
        """Insert one point; duplicate ids / non-finite coords rejected."""
        if item_id in self._store:
            raise ValueError(f"duplicate item id {item_id!r}")
        GridIndex._check_finite(item_id, xy)
        self._store.add(item_id, xy[0], xy[1])
        self._cells.setdefault(self._cell_of(xy), {})[item_id] = None

    def remove(self, item_id):
        """Remove a point; unknown ids raise :class:`KeyError`."""
        if item_id not in self._store:
            raise KeyError(f"unknown item id {item_id!r}")
        cell = self._cell_of(self._store.get(item_id))
        self._store.remove(item_id)
        bucket = self._cells[cell]
        del bucket[item_id]
        if not bucket:
            del self._cells[cell]

    def move(self, item_id, xy):
        """Update a position, re-bucketing only on a cell change."""
        if item_id not in self._store:
            raise KeyError(f"unknown item id {item_id!r}")
        GridIndex._check_finite(item_id, xy)
        old_cell = self._cell_of(self._store.get(item_id))
        new_cell = self._cell_of(xy)
        self._store.set(item_id, xy[0], xy[1])
        if old_cell != new_cell:
            bucket = self._cells[old_cell]
            del bucket[item_id]
            if not bucket:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, {})[item_id] = None

    def location_of(self, item_id):
        """Return the stored ``(x, y)`` of an item."""
        return self._store.get(item_id)

    def _block_ids(self, cell, reach):
        """Every stored id in the ``(2*reach+1)²`` block around a cell."""
        cx, cy = cell
        cells = self._cells
        out = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                bucket = cells.get((gx, gy))
                if bucket:
                    out.extend(bucket)
        return out

    def neighbors_within(self, xy, radius):
        """Ids of all points with ``D(xy, point) <= radius`` (exact)."""
        return self.neighbors_within_batch((xy,), radius)[0]

    def neighbors_of(self, item_id, radius):
        """``NH_radius`` of a stored item (including the item itself)."""
        return self.neighbors_within(self._store.get(item_id), radius)

    def neighbors_within_batch(self, queries, radius):
        """Answer many eps-disk queries in one batched pass.

        Args:
            queries: sequence of ``(x, y)`` query points.
            radius: non-negative query radius.

        Returns:
            List parallel to ``queries``; entry ``i`` lists the ids of
            every stored point within ``radius`` of ``queries[i]`` —
            the same *set* per query that
            :meth:`GridIndex.neighbors_within` returns.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        results = [None] * len(queries)
        if not len(self._store):
            for qi in range(len(queries)):
                results[qi] = []
            return results
        reach = int(radius // self._cell_size) + 1
        by_cell = {}
        for qi, xy in enumerate(queries):
            by_cell.setdefault(self._cell_of(xy), []).append(qi)
        for cell, group in by_cell.items():
            block = self._block_ids(cell, reach)
            if not block:
                for qi in group:
                    results[qi] = []
                continue
            if np is not None:
                self._filter_block_numpy(queries, group, block, radius,
                                         results)
            else:
                self._filter_block_python(queries, group, block, radius,
                                          results)
        return results

    def _filter_block_numpy(self, queries, group, block, radius, results):
        """Broadcast one squared-distance filter per query chunk."""
        store = self._store
        rows = np.fromiter(
            (store._rows[i] for i in block), dtype=np.intp, count=len(block)
        )
        xs, ys = store.columns()
        bx = xs[rows]
        by = ys[rows]
        radius2 = radius * radius
        for start in range(0, len(group), _QUERY_CHUNK):
            chunk = group[start:start + _QUERY_CHUNK]
            qx = np.fromiter(
                (queries[qi][0] for qi in chunk), dtype=np.float64,
                count=len(chunk),
            )
            qy = np.fromiter(
                (queries[qi][1] for qi in chunk), dtype=np.float64,
                count=len(chunk),
            )
            dx = bx[None, :] - qx[:, None]
            dy = by[None, :] - qy[:, None]
            mask = dx * dx + dy * dy <= radius2
            for k, qi in enumerate(chunk):
                results[qi] = [
                    block[j] for j in np.nonzero(mask[k])[0].tolist()
                ]

    def _filter_block_python(self, queries, group, block, radius, results):
        """The same filter over memoryviews (no-numpy fallback)."""
        store = self._store
        xs, ys = store.columns()
        store_rows = store._rows
        rows = [store_rows[i] for i in block]
        radius2 = radius * radius
        for qi in group:
            x, y = queries[qi]
            hits = []
            for item_id, row in zip(block, rows):
                dx = xs[row] - x
                dy = ys[row] - y
                if dx * dx + dy * dy <= radius2:
                    hits.append(item_id)
            results[qi] = hits

    def all_neighbors(self, radius):
        """Every stored point's eps-disk in one batch.

        Returns:
            Dict ``{item_id: [neighbor ids]}`` covering every stored
            point (each point's own id included, at distance zero).
        """
        store = self._store
        ids = store.ids()
        queries = [store.get(item_id) for item_id in ids]
        return dict(zip(ids, self.neighbors_within_batch(queries, radius)))


# -- the matching kernel ----------------------------------------------------


def match_candidates_vector(members, jobs, min_objects):
    """Batch candidate–cluster matching; drop-in for ``match_candidates``.

    Same contract as :func:`repro.core.candidates.match_candidates` —
    same arguments, same ``(pos, [(cluster_index, intersection)])``
    output in job order with matches in scan order — but the
    ``jobs × clusters`` pairwise set intersections are replaced by a
    batch join: every cluster member is interned to a dense int id, and
    since snapshot clusters are disjoint each object names its *owner*
    cluster, so one pass over each candidate's id array yields its
    intersection size with **every** cluster at once (a gather plus one
    ``bincount`` under numpy, a hash-join without).  Cluster families
    with overlapping members — legal under the kernel contract, never
    produced by density clustering — fall back to sorted-array
    merge-intersection per scanned pair.

    Pure and picklable by construction, exactly like the classic
    kernel, so the sharded tracker ships it to executor backends
    unchanged.
    """
    if not jobs:
        return []
    if not members:
        return [(pos, []) for pos, _objects, _scan in jobs]
    owner_of = {}
    disjoint = True
    for index, cluster in enumerate(members):
        for obj in cluster:
            if obj in owner_of:
                disjoint = False
                break
            owner_of[obj] = index
        if not disjoint:
            break
    if not disjoint:
        return _match_merge_intersect(members, jobs, min_objects)
    n_clusters = len(members)
    if np is not None:
        counts = _owner_join_counts_numpy(owner_of, jobs, n_clusters)
    else:
        counts = _owner_join_counts_python(owner_of, jobs, n_clusters)
    out = []
    for j, (pos, objects, scan) in enumerate(jobs):
        row = counts[j]
        if scan is None:
            indexes = [index for index in row if row[index] >= min_objects]
            indexes.sort()
        else:
            indexes = [
                index for index in scan if row.get(index, 0) >= min_objects
            ]
        matches = [
            (index,
             frozenset(obj for obj in objects if obj in members[index]))
            for index in indexes
        ]
        out.append((pos, matches))
    return out


def _owner_join_counts_numpy(owner_of, jobs, n_clusters):
    """Per-job intersection sizes with every cluster, via one gather +
    one ``bincount`` over the concatenated candidate id arrays."""
    segments = []
    codes = []
    for j, (_pos, objects, _scan) in enumerate(jobs):
        hits = [owner_of[obj] for obj in objects if obj in owner_of]
        codes.extend(hits)
        segments.extend([j] * len(hits))
    if not codes:
        return [{} for _ in jobs]
    owners = np.fromiter(codes, dtype=np.int64, count=len(codes))
    seg = np.fromiter(segments, dtype=np.int64, count=len(segments))
    flat = np.bincount(
        seg * n_clusters + owners, minlength=len(jobs) * n_clusters
    ).reshape(len(jobs), n_clusters)
    rows = []
    for j in range(len(jobs)):
        nz = np.nonzero(flat[j])[0]
        rows.append({
            int(index): int(flat[j][index]) for index in nz.tolist()
        })
    return rows


def _owner_join_counts_python(owner_of, jobs, n_clusters):
    """The same per-job owner counts as a pure hash-join (no numpy)."""
    rows = []
    for _pos, objects, _scan in jobs:
        row = {}
        for obj in objects:
            index = owner_of.get(obj)
            if index is not None:
                row[index] = row.get(index, 0) + 1
        rows.append(row)
    return rows


def _match_merge_intersect(members, jobs, min_objects):
    """General (overlapping-cluster) path: sorted int-id arrays, one
    merge-intersection per scanned pair."""
    code_of = {}
    for cluster in members:
        for obj in cluster:
            if obj not in code_of:
                code_of[obj] = len(code_of)
    encoded = [
        _sorted_codes(cluster, code_of, all_known=True)
        for cluster in members
    ]
    full_scan = range(len(members))
    out = []
    for pos, objects, scan in jobs:
        cand = _sorted_codes(objects, code_of, all_known=False)
        matches = []
        for index in (full_scan if scan is None else scan):
            common = _merge_intersect_size(cand, encoded[index])
            if common >= min_objects:
                matches.append((
                    index,
                    _intersection(objects, members[index], common),
                ))
        out.append((pos, matches))
    return out


def _sorted_codes(objects, code_of, all_known):
    """Encode a set of objects as a sorted int-id array."""
    if all_known:
        values = [code_of[obj] for obj in objects]
    else:
        values = [
            code_of[obj] for obj in objects if obj in code_of
        ]
    values.sort()
    if np is not None:
        return np.fromiter(values, dtype=np.int64, count=len(values))
    return values


def _merge_intersect_size(left, right):
    """|left ∩ right| for two sorted unique int-id arrays."""
    if np is not None:
        return int(
            np.intersect1d(left, right, assume_unique=True).size
        )
    i = j = size = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        a, b = left[i], right[j]
        if a == b:
            size += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return size


def match_candidates_merge(members, jobs, min_objects):
    """The ``merge`` match kernel: one sorted-array merge-intersection
    per scanned pair.

    Same contract as :func:`repro.core.candidates.match_candidates`.
    This is the general representation tier the vector kernel falls back
    to on overlapping cluster families, exposed as a named kernel so the
    dispatcher (and benchmarks) can select it unconditionally.  Pure and
    picklable, like every match kernel.
    """
    if not jobs:
        return []
    if not members:
        return [(pos, []) for pos, _objects, _scan in jobs]
    return _match_merge_intersect(members, jobs, min_objects)


# -- the bitset tier --------------------------------------------------------


def bitset_remap(jobs):
    """Dense id remap over the live population of a tick's jobs.

    Returns ``{object id: bit index}`` covering every candidate object
    in first-seen order.  Cluster ids outside the remap cannot appear in
    any candidate-cluster intersection, so clusters are encoded through
    the same remap with unknown ids simply skipped.  Built once per tick
    by the (sharded) tracker and shipped in shard tasks so every shard
    packs rows over the same bit positions.
    """
    # dict.fromkeys + one enumerate comprehension keep the per-tick
    # remap build at C speed — a Python insert loop over 10^5 ids would
    # rival the packed intersection pass it exists to enable.
    seen = {}
    for _pos, objects, _scan in jobs:
        seen.update(dict.fromkeys(objects))
    return {obj: bit for bit, obj in enumerate(seen)}


def match_candidates_bitset(members, jobs, min_objects, remap=None):
    """The ``bitset`` match kernel: word-AND + popcount over packed rows.

    Same contract as :func:`repro.core.candidates.match_candidates`.
    Candidate and cluster object sets are packed into ``np.uint64``
    bitset rows over a dense per-tick id remap (``remap``, built from
    the jobs when not supplied), and every scanned intersection size is
    computed as ``popcount(candidate_row & cluster_row)`` over a 2-D
    block — one vectorized pass for the whole batch instead of a
    per-pair merge.  Without numpy the rows are Python ``int`` bitmasks
    and the popcount is :meth:`int.bit_count` — still one C-speed AND
    per pair.  Pure and picklable, like every match kernel.

    A supplied ``remap`` must cover every job object id (the sharded
    tracker builds it over the full tick before bucketing).
    """
    if not jobs:
        return []
    if not members:
        return [(pos, []) for pos, _objects, _scan in jobs]
    if remap is None:
        remap = bitset_remap(jobs)
    if np is None:
        return _match_bitset_python(members, jobs, min_objects, remap)
    words = max(1, (len(remap) + 63) >> 6)
    job_rows = _pack_rows_numpy(
        [objects for _pos, objects, _scan in jobs], remap, words,
        all_known=True,
    )
    cluster_rows = _pack_rows_numpy(members, remap, words)
    counts = _bitset_counts_numpy(job_rows, cluster_rows)
    out = []
    for j, (pos, objects, scan) in enumerate(jobs):
        row = counts[j]
        if scan is None:
            indexes = np.nonzero(row >= min_objects)[0].tolist()
        else:
            indexes = [
                index for index in scan if row[index] >= min_objects
            ]
        out.append((pos, [
            (index, _intersection(objects, members[index], row[index]))
            for index in indexes
        ]))
    return out


def _intersection(objects, cluster, common):
    """The matched pair's intersection set, from its known size.

    When the count says every candidate object is inside the cluster —
    the steady state of a stable convoy — the intersection *is* the
    candidate's set, so the elementwise membership filter is skipped.
    """
    if common == len(objects):
        return (objects if isinstance(objects, frozenset)
                else frozenset(objects))
    return frozenset(obj for obj in objects if obj in cluster)


def _pack_rows_numpy(sets, remap, words, all_known=False):
    """Pack object-id sets into ``uint64`` bitset rows over a remap.

    Ids outside the remap are skipped unless ``all_known`` (job sets are
    covered by construction — the trusted path skips the membership
    test and a missing id is a caller bug raising KeyError).  The rows
    are built as one boolean matrix packed along the bit axis, so the
    per-object Python work is a single C-speed ``map`` per set.
    """
    bits = np.zeros((len(sets), words * 64), dtype=bool)
    lookup = remap.__getitem__ if all_known else remap.get
    for i, objects in enumerate(sets):
        if all_known:
            codes = np.fromiter(
                map(lookup, objects), dtype=np.int64, count=len(objects)
            )
        else:
            hits = [code for code in map(lookup, objects)
                    if code is not None]
            if not hits:
                continue
            codes = np.fromiter(hits, dtype=np.int64, count=len(hits))
        bits[i, codes] = True
    # Bit order within a byte is packbits' big-endian convention; both
    # sides of every AND use it, and popcount is order-blind.
    return np.packbits(bits, axis=1).view(np.uint64)


_POPCOUNT16 = None


def _popcount_table():
    """65536-entry popcount table for numpy builds without
    ``np.bitwise_count`` (added in numpy 2.0)."""
    global _POPCOUNT16
    if _POPCOUNT16 is None:
        _POPCOUNT16 = np.fromiter(
            (value.bit_count() for value in range(65536)),
            dtype=np.uint8, count=65536,
        )
    return _POPCOUNT16


def _bitset_counts_numpy(job_rows, cluster_rows):
    """``popcount(job_row & cluster_row)`` for every (job, cluster)
    pair, as an ``(n_jobs, n_clusters)`` int64 matrix, broadcast in
    blocks bounded by :data:`_BITSET_BLOCK_WORDS` temporaries."""
    n_jobs, words = job_rows.shape
    n_clusters = cluster_rows.shape[0]
    counts = np.empty((n_jobs, n_clusters), dtype=np.int64)
    chunk = max(1, _BITSET_BLOCK_WORDS // max(1, n_clusters * words))
    native = hasattr(np, "bitwise_count")
    for start in range(0, n_jobs, chunk):
        block = job_rows[start:start + chunk, None, :] & cluster_rows
        if native:
            counts[start:start + chunk] = np.bitwise_count(block).sum(
                axis=2, dtype=np.int64
            )
        else:
            table = _popcount_table()
            halves = block.view(np.uint16).reshape(
                block.shape[0], n_clusters, words * 4
            )
            counts[start:start + chunk] = table[halves].sum(
                axis=2, dtype=np.int64
            )
    return counts


def _match_bitset_python(members, jobs, min_objects, remap):
    """The bitset kernel over Python ``int`` bitmasks (no-numpy path)."""
    cluster_masks = []
    for cluster in members:
        mask = 0
        for obj in cluster:
            bit = remap.get(obj)
            if bit is not None:
                mask |= 1 << bit
        cluster_masks.append(mask)
    full_scan = range(len(members))
    out = []
    for pos, objects, scan in jobs:
        row = 0
        for obj in objects:
            row |= 1 << remap[obj]
        matches = []
        for index in (full_scan if scan is None else scan):
            common = (row & cluster_masks[index]).bit_count()
            if common >= min_objects:
                matches.append((
                    index,
                    _intersection(objects, members[index], common),
                ))
        out.append((pos, matches))
    return out


# -- adaptive kernel dispatch -----------------------------------------------


class MatchPlanStats:
    """Shape of one tick's match join, as seen by the plan pass.

    The candidate tracker's plan pass computes these counts from the
    tick's jobs before any kernel runs; :class:`KernelDispatch` turns
    them into per-kernel work-unit features.  ``population`` bounds the
    bitset remap width from above (the plan pass reports total job ids
    rather than paying for an exact distinct count — the cost fit only
    needs a consistently scaling feature).
    """

    __slots__ = (
        "jobs", "clusters", "pairs", "job_ids", "member_ids", "scan_ids",
        "population",
    )

    def __init__(self, jobs, clusters, pairs, job_ids, member_ids,
                 scan_ids, population):
        self.jobs = jobs
        self.clusters = clusters
        self.pairs = pairs
        self.job_ids = job_ids
        self.member_ids = member_ids
        self.scan_ids = scan_ids
        self.population = population

    @property
    def density(self):
        """Mean candidate-set size as a fraction of the population."""
        if not self.jobs or not self.population:
            return 0.0
        return (self.job_ids / self.jobs) / self.population


class KernelDispatch:
    """Adaptive per-tick choice between the fixed match kernels.

    Same estimator shape as
    :class:`repro.clustering.incremental.AdaptiveChurnThreshold`: for
    each kernel the dispatcher keeps an EWMA affine fit of observed
    per-tick seconds against a work-unit feature derived from the plan
    pass's :class:`MatchPlanStats` (scanned candidate ids for
    ``scalar``; encode volume plus per-pair overhead for ``merge``;
    encode volume plus ``pairs × words`` for ``bitset``).  ``choose``
    predicts each kernel's cost for the tick and picks the cheapest;
    ``observe`` feeds the measured cost of whichever kernel ran back
    into its fit.

    Cold start is guarded two ways: each kernel is run
    ``explore_rounds`` times before predictions are trusted (even on
    tiny ticks, where mispricing costs microseconds, so exploration
    always finishes within the first ``3 × explore_rounds`` ticks), and
    after exploration any tick whose scalar work-unit count falls below
    ``explore_floor`` runs the scalar kernel unconditionally — small
    deltas never pay batch overhead just to learn it is not worth it,
    which is the fix for the small-delta regime where batching loses.

    Predictions in the scalar/batch crossover zone sit well inside
    per-tick timing noise, so a raw argmin would flip on noise and
    could settle on the wrong side.  Two guards keep the choice robust
    there.  First, a *decisive-gain bias*: a batch kernel (``merge`` /
    ``bitset``) is picked only when predicted at least
    ``batch_margin`` times cheaper than ``scalar`` — close races go to
    the kernel with no batch setup and the lowest variance, and
    batching must earn its overhead decisively.

    Second, a fit is only updated when its kernel runs, so the
    runner-up's fit would otherwise freeze at whatever (possibly
    noise-inflated) state it had when the dispatcher last left it — a
    feedback loop that can pin a close race on the wrong side.  The
    *staleness probe* breaks it: a kernel unobserved for
    ``refresh_every`` predicted ticks whose
    predicted cost is within ``refresh_margin`` of the winner's gets
    one tick to refresh its fit.  Clear losers (outside the margin)
    are never probed, so a hopeless kernel costs nothing after its
    exploration rounds.  Correctness never depends on the choice:
    every fixed kernel is bit-for-bit equivalent, the estimate only
    moves time.
    """

    KERNELS = ("scalar", "merge", "bitset")

    def __init__(self, alpha=0.25, explore_rounds=2, explore_floor=4096,
                 refresh_every=16, refresh_margin=2.0, batch_margin=1.15):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if explore_rounds < 1:
            raise ValueError(
                f"explore_rounds must be at least 1, got {explore_rounds}"
            )
        if explore_floor < 0:
            raise ValueError(
                f"explore_floor must be non-negative, got {explore_floor}"
            )
        if refresh_every < 1:
            raise ValueError(
                f"refresh_every must be at least 1, got {refresh_every}"
            )
        if refresh_margin < 1.0:
            raise ValueError(
                f"refresh_margin must be at least 1.0, got {refresh_margin}"
            )
        if batch_margin < 1.0:
            raise ValueError(
                f"batch_margin must be at least 1.0, got {batch_margin}"
            )
        self._batch_margin = float(batch_margin)
        self._alpha = float(alpha)
        self._rounds = int(explore_rounds)
        self._floor = float(explore_floor)
        self._refresh = int(refresh_every)
        self._margin = float(refresh_margin)
        self._ticks = 0  # predicted (post-exploration, above-floor) ticks
        self._last_run = dict.fromkeys(self.KERNELS, 0)
        # Per-kernel EWMA moments: observations, E[u], E[s], E[u²], E[u·s].
        self._seen = dict.fromkeys(self.KERNELS, 0)
        self._mu = dict.fromkeys(self.KERNELS, 0.0)
        self._ms = dict.fromkeys(self.KERNELS, 0.0)
        self._muu = dict.fromkeys(self.KERNELS, 0.0)
        self._mus = dict.fromkeys(self.KERNELS, 0.0)

    def units(self, stats):
        """Per-kernel work-unit features for one tick's plan stats."""
        words = max(1, (stats.population + 63) >> 6)
        encode = stats.job_ids + stats.member_ids
        return {
            "scalar": float(max(1, stats.scan_ids)),
            "merge": float(max(
                1, encode + stats.scan_ids + 32 * stats.pairs
            )),
            "bitset": float(max(1, 32 * encode + stats.pairs * words)),
        }

    def choose(self, stats):
        """Pick the kernel name predicted cheapest for this tick."""
        units = self.units(stats)
        for name in self.KERNELS:
            if self._seen[name] < self._rounds:
                return name
        if units["scalar"] < self._floor:
            return "scalar"
        predicted = {
            name: self._predict(name, units[name]) for name in self.KERNELS
        }
        best = min(self.KERNELS, key=predicted.__getitem__)
        if (best != "scalar"
                and predicted[best] * self._batch_margin
                > predicted["scalar"]):
            best = "scalar"
        self._ticks += 1
        stale = [
            name for name in self.KERNELS
            if name != best
            and self._ticks - self._last_run[name] >= self._refresh
            and predicted[name] <= self._margin * predicted[best]
        ]
        pick = min(stale, key=self._last_run.__getitem__) if stale else best
        self._last_run[pick] = self._ticks
        return pick

    def observe(self, name, stats, seconds):
        """Fold one measured tick into the chosen kernel's fit."""
        if name not in self._seen:
            raise ValueError(
                f"kernel must be one of {self.KERNELS}, got {name!r}"
            )
        u = self.units(stats)[name]
        s = max(0.0, float(seconds))
        self._seen[name] += 1
        self._mu[name] = self._ewma(self._mu[name], u, self._seen[name])
        self._ms[name] = self._ewma(self._ms[name], s, self._seen[name])
        self._muu[name] = self._ewma(self._muu[name], u * u,
                                     self._seen[name])
        self._mus[name] = self._ewma(self._mus[name], u * s,
                                     self._seen[name])

    def _ewma(self, current, observation, seen):
        if seen == 1:
            return float(observation)
        return current + self._alpha * (observation - current)

    def _predict(self, name, units):
        """Predicted seconds for a tick of ``units`` work on a kernel."""
        mu, ms = self._mu[name], self._ms[name]
        spread = self._muu[name] - mu * mu
        if spread > 1e-12:
            slope = (self._mus[name] - mu * ms) / spread
            if slope > 0.0:
                intercept = max(0.0, ms - slope * mu)
                return intercept + slope * units
        # Degenerate fit (constant units so far, or noise-dominated
        # negative slope): fall back to the mean per-unit rate.
        if mu > 0.0:
            return ms / mu * units
        return ms
