"""Multi-step range search over simplified polylines (Section 5.2).

The filter step must find, for a query polyline ``o'_q``, every polyline
``o'_i`` whose *original* trajectory could have been within ``e`` of the
query's original trajectory at some shared time point.  Lemmas 1-3 turn
that into tests on the simplified data:

* **Lemma 2** (box level): if
  ``Dmin(B(l'_q), B(S)) > e + δ(l'_q) + δmax(S)`` then no segment of the
  group ``S`` can qualify — used here both against STR-packed *buckets* of
  polylines and against a single polyline's box;
* **Lemma 1** (segment level, CuTS/CuTS+): if
  ``DLL(l'_q, l'_i) > e + δ(l'_q) + δ(l'_i)`` the pair is out;
* **Lemma 3** (segment level, CuTS*): same with the tighter
  time-parameterized distance ``D*``.

A pair of polylines is an ``e``-neighbour pair exactly when its ω value

    ``ω(o'_q, o'_i) = min over time-overlapping segment pairs of
      dist(l'_q, l'_i) - δ(l'_q) - δ(l'_i)``

is at most ``e``.  The searcher answers neighbourhood queries with early
exit (the first qualifying segment pair settles the predicate) and records
pruning statistics for the Lemma 2 ablation bench.
"""

from __future__ import annotations

import math

from repro.geometry.bbox import box_min_distance

DISTANCE_MODES = ("dll", "cpa")


def _segment_pair_distance(seg_q, seg_i, mode):
    if mode == "dll":
        return seg_q.spatial_distance_to(seg_i)
    return seg_q.cpa_distance_to(seg_i)


def _overlapping_segment_pairs(poly_q, poly_i):
    """Yield ``(seg_q, tol_q, seg_i, tol_i)`` for time-overlapping segments.

    Both segment lists are time-ordered, so a two-pointer sweep enumerates
    the overlapping pairs in O(len_q + len_i + #overlaps).
    """
    segs_q = poly_q.segments
    segs_i = poly_i.segments
    tols_q = poly_q.tolerances
    tols_i = poly_i.tolerances
    iq = 0
    ii = 0
    while iq < len(segs_q) and ii < len(segs_i):
        seg_q = segs_q[iq]
        seg_i = segs_i[ii]
        if seg_q.t_end < seg_i.t_start:
            iq += 1
            continue
        if seg_i.t_end < seg_q.t_start:
            ii += 1
            continue
        # Overlap found; emit this pair and every later pair of the side
        # whose segment still overlaps.
        yield seg_q, tols_q[iq], seg_i, tols_i[ii]
        # Advance the segment that ends first; ties advance both via two steps.
        if seg_q.t_end <= seg_i.t_end:
            # seg_q may also overlap subsequent segments of poly_i that start
            # within it; enumerate them before advancing iq.
            jj = ii + 1
            while jj < len(segs_i) and segs_i[jj].t_start <= seg_q.t_end:
                if segs_i[jj].t_end >= seg_q.t_start:
                    yield seg_q, tols_q[iq], segs_i[jj], tols_i[jj]
                jj += 1
            iq += 1
        else:
            jj = iq + 1
            while jj < len(segs_q) and segs_q[jj].t_start <= seg_i.t_end:
                if segs_q[jj].t_end >= seg_i.t_start:
                    yield segs_q[jj], tols_q[jj], seg_i, tols_i[ii]
                jj += 1
            ii += 1


def polyline_omega(poly_q, poly_i, mode="dll"):
    """Return ``ω(o'_q, o'_i)`` under the chosen segment distance.

    ``inf`` when no pair of segments shares a time point — temporally
    disjoint objects can never convoy together.
    """
    if mode not in DISTANCE_MODES:
        raise ValueError(f"unknown distance mode {mode!r}; expected {DISTANCE_MODES}")
    best = math.inf
    for seg_q, tol_q, seg_i, tol_i in _overlapping_segment_pairs(poly_q, poly_i):
        distance = _segment_pair_distance(seg_q, seg_i, mode)
        adjusted = distance - tol_q - tol_i
        if adjusted < best:
            best = adjusted
    return best


def polylines_within(poly_q, poly_i, eps, mode="dll"):
    """Return True if ``ω(o'_q, o'_i) <= eps`` (early-exit variant)."""
    if mode not in DISTANCE_MODES:
        raise ValueError(f"unknown distance mode {mode!r}; expected {DISTANCE_MODES}")
    for seg_q, tol_q, seg_i, tol_i in _overlapping_segment_pairs(poly_q, poly_i):
        bound = eps + tol_q + tol_i
        # Per-pair Lemma 2: box distance lower-bounds the segment distance.
        if box_min_distance(seg_q.bbox, seg_i.bbox) > bound:
            continue
        if _segment_pair_distance(seg_q, seg_i, mode) <= bound:
            return True
    return False


class _Bucket:
    __slots__ = ("indices", "bbox", "max_tolerance")

    def __init__(self, indices, bbox, max_tolerance):
        self.indices = indices
        self.bbox = bbox
        self.max_tolerance = max_tolerance


class PolylineRangeSearcher:
    """ε-neighbourhood oracle over one partition's polylines.

    Polylines are packed into STR-style buckets (sort by box centre x,
    chunk, sort each chunk by centre y, chunk again) so that Lemma 2 can
    discard whole buckets with one box-distance test before any per-segment
    work — the "prune a subset S of line segments fast" step of
    Section 5.2.

    Args:
        polylines: list of :class:`repro.clustering.polyline.PartitionPolyline`.
        eps: the convoy distance threshold ``e``.
        mode: ``"dll"`` for Lemma 1 (CuTS, CuTS+) or ``"cpa"`` for Lemma 3
            (CuTS*).
        bucket_capacity: target polylines per bucket.
        use_lemma2: disable to measure the value of the box-level pruning
            (ablation bench); correctness is unaffected, only speed.
    """

    def __init__(self, polylines, eps, mode="dll", bucket_capacity=8, use_lemma2=True):
        if mode not in DISTANCE_MODES:
            raise ValueError(f"unknown distance mode {mode!r}; expected {DISTANCE_MODES}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if bucket_capacity < 1:
            raise ValueError(f"bucket_capacity must be >= 1, got {bucket_capacity}")
        self._polylines = list(polylines)
        self._eps = eps
        self._mode = mode
        self._use_lemma2 = use_lemma2
        self._buckets = self._pack_buckets(bucket_capacity)
        self.stats = {
            "bucket_tests": 0,
            "buckets_pruned": 0,
            "item_box_tests": 0,
            "items_pruned_by_box": 0,
            "exact_tests": 0,
        }

    def _pack_buckets(self, capacity):
        order = sorted(
            range(len(self._polylines)),
            key=lambda i: (
                self._polylines[i].bbox.min_x + self._polylines[i].bbox.max_x
            ),
        )
        buckets = []
        import math as _math

        n = len(order)
        if n == 0:
            return buckets
        num_slabs = max(1, int(_math.ceil(_math.sqrt(n / capacity))))
        slab_size = int(_math.ceil(n / num_slabs))
        for s in range(0, n, slab_size):
            slab = sorted(
                order[s : s + slab_size],
                key=lambda i: (
                    self._polylines[i].bbox.min_y + self._polylines[i].bbox.max_y
                ),
            )
            for b in range(0, len(slab), capacity):
                chunk = slab[b : b + capacity]
                box = self._polylines[chunk[0]].bbox
                max_tol = self._polylines[chunk[0]].max_tolerance
                for i in chunk[1:]:
                    box = box.union(self._polylines[i].bbox)
                    tol = self._polylines[i].max_tolerance
                    if tol > max_tol:
                        max_tol = tol
                buckets.append(_Bucket(chunk, box, max_tol))
        return buckets

    def __len__(self):
        return len(self._polylines)

    def polyline(self, index):
        """Return the polyline stored at ``index``."""
        return self._polylines[index]

    def neighbors_of(self, query_index):
        """Return indices of polylines with ``ω <= e`` from the query.

        The query polyline itself is always part of its own neighbourhood
        (``ω(p, p) <= 0 <= e``), matching the point-DBSCAN convention.
        """
        query = self._polylines[query_index]
        eps = self._eps
        stats = self.stats
        result = []
        query_box = query.bbox
        query_tol = query.max_tolerance
        for bucket in self._buckets:
            if self._use_lemma2:
                stats["bucket_tests"] += 1
                bound = eps + query_tol + bucket.max_tolerance
                if box_min_distance(query_box, bucket.bbox) > bound:
                    stats["buckets_pruned"] += 1
                    continue
            for index in bucket.indices:
                if index == query_index:
                    result.append(index)
                    continue
                candidate = self._polylines[index]
                if self._use_lemma2:
                    stats["item_box_tests"] += 1
                    bound = eps + query_tol + candidate.max_tolerance
                    if box_min_distance(query_box, candidate.bbox) > bound:
                        stats["items_pruned_by_box"] += 1
                        continue
                stats["exact_tests"] += 1
                if polylines_within(query, candidate, eps, self._mode):
                    result.append(index)
        return result
