"""Plane-sweep ε-adjacency join over partition polylines.

The filter step's clustering needs, for each partition, the graph of
polyline pairs with ``ω <= e``.  Querying an index once per polyline (the
textbook formulation in :mod:`repro.clustering.range_search`) tests every
close pair twice and re-scans bucket structures per query; this module
instead computes the whole adjacency in one pass, the way spatio-temporal
join papers do it (the paper cites plane-sweep joins [6, 26]):

1. every polyline's bounding box is expanded by ``e/2 + δmax`` — by
   Lemma 2, two polylines with ``ω <= e`` must have expanded boxes that
   overlap (each axis gap is at most ``Dmin <= e + δmax_1 + δmax_2``);
2. a sweep over the x axis enumerates exactly the overlapping expanded box
   pairs;
3. each surviving pair is settled with the exact early-exit ω test
   (Lemma 1 / Lemma 3 bounds), using inlined float arithmetic — this is
   the innermost loop of the whole CuTS filter.

The inlined segment kernels mirror :mod:`repro.geometry.distance` and
:mod:`repro.geometry.cpa`; the geometry modules stay the readable
reference implementations, and the equivalence is pinned by tests.
"""

from __future__ import annotations

import math


class JoinPolyline:
    """Flattened, float-level view of one partition polyline.

    Attributes:
        object_id: the moving object's identifier.
        segs: list of ``(x1, y1, x2, y2, t1, t2, tol)`` tuples, time-ordered.
        bounds: ``(min_x, min_y, max_x, max_y)`` over all segments.
        max_tol: largest per-segment actual tolerance.
    """

    __slots__ = ("object_id", "segs", "bounds", "max_tol")

    def __init__(self, object_id, segs):
        self.object_id = object_id
        self.segs = segs
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        max_tol = 0.0
        for x1, y1, x2, y2, _t1, _t2, tol in segs:
            if x1 > x2:
                x1, x2 = x2, x1
            if y1 > y2:
                y1, y2 = y2, y1
            if x1 < min_x:
                min_x = x1
            if x2 > max_x:
                max_x = x2
            if y1 < min_y:
                min_y = y1
            if y2 > max_y:
                max_y = y2
            if tol > max_tol:
                max_tol = tol
        self.bounds = (min_x, min_y, max_x, max_y)
        self.max_tol = max_tol

    @classmethod
    def from_partition_polyline(cls, polyline):
        """Flatten a :class:`~repro.clustering.polyline.PartitionPolyline`."""
        segs = [
            (
                seg.start[0], seg.start[1], seg.end[0], seg.end[1],
                float(seg.t_start), float(seg.t_end), tol,
            )
            for seg, tol in zip(polyline.segments, polyline.tolerances)
        ]
        return cls(polyline.object_id, segs)


def _point_seg_dist2(px, py, ax, ay, bx, by):
    """Squared distance from point (px,py) to segment (ax,ay)-(bx,by)."""
    abx = bx - ax
    aby = by - ay
    denom = abx * abx + aby * aby
    if denom == 0.0:
        dx = px - ax
        dy = py - ay
        return dx * dx + dy * dy
    t = ((px - ax) * abx + (py - ay) * aby) / denom
    if t < 0.0:
        t = 0.0
    elif t > 1.0:
        t = 1.0
    dx = px - (ax + abx * t)
    dy = py - (ay + aby * t)
    return dx * dx + dy * dy


def _segments_cross(ax, ay, bx, by, cx, cy, dx, dy):
    """True if closed segments AB and CD intersect (inlined orientation test)."""
    d1 = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    d2 = (bx - ax) * (dy - ay) - (by - ay) * (dx - ax)
    d3 = (dx - cx) * (ay - cy) - (dy - cy) * (ax - cx)
    d4 = (dx - cx) * (by - cy) - (dy - cy) * (bx - cx)
    if ((d1 > 0) != (d2 > 0) or d1 == 0 or d2 == 0) and (
        (d3 > 0) != (d4 > 0) or d3 == 0 or d4 == 0
    ):
        # Possible intersection including collinear touches; fall back to
        # the precise bounding checks for the degenerate cases.
        if d1 == 0 and d2 == 0 and d3 == 0 and d4 == 0:
            return (
                min(ax, bx) <= max(cx, dx)
                and min(cx, dx) <= max(ax, bx)
                and min(ay, by) <= max(cy, dy)
                and min(cy, dy) <= max(ay, by)
            )
        if (d1 > 0) != (d2 > 0) and (d3 > 0) != (d4 > 0):
            return True
        # One orientation is exactly zero: endpoint touching.
        if d1 == 0 and min(ax, bx) <= cx <= max(ax, bx) and min(ay, by) <= cy <= max(ay, by):
            return True
        if d2 == 0 and min(ax, bx) <= dx <= max(ax, bx) and min(ay, by) <= dy <= max(ay, by):
            return True
        if d3 == 0 and min(cx, dx) <= ax <= max(cx, dx) and min(cy, dy) <= ay <= max(cy, dy):
            return True
        if d4 == 0 and min(cx, dx) <= bx <= max(cx, dx) and min(cy, dy) <= by <= max(cy, dy):
            return True
    return False


def _dll_within(sa, sb, bound):
    """True if DLL(segment a, segment b) <= bound (inlined Lemma 1 test)."""
    ax1, ay1, ax2, ay2 = sa[0], sa[1], sa[2], sa[3]
    bx1, by1, bx2, by2 = sb[0], sb[1], sb[2], sb[3]
    bound2 = bound * bound
    if _point_seg_dist2(ax1, ay1, bx1, by1, bx2, by2) <= bound2:
        return True
    if _point_seg_dist2(ax2, ay2, bx1, by1, bx2, by2) <= bound2:
        return True
    if _point_seg_dist2(bx1, by1, ax1, ay1, ax2, ay2) <= bound2:
        return True
    if _point_seg_dist2(bx2, by2, ax1, ay1, ax2, ay2) <= bound2:
        return True
    return _segments_cross(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2)


def _cpa_within(sa, sb, bound):
    """True if D*(segment a, segment b) <= bound (inlined Lemma 3 test)."""
    t_lo = sa[4] if sa[4] > sb[4] else sb[4]
    t_hi = sa[5] if sa[5] < sb[5] else sb[5]
    if t_lo > t_hi:
        return False
    # Velocities (zero-duration segments are stationary).
    da = sa[5] - sa[4]
    if da > 0.0:
        vax = (sa[2] - sa[0]) / da
        vay = (sa[3] - sa[1]) / da
    else:
        vax = vay = 0.0
    db = sb[5] - sb[4]
    if db > 0.0:
        vbx = (sb[2] - sb[0]) / db
        vby = (sb[3] - sb[1]) / db
    else:
        vbx = vby = 0.0
    dvx = vax - vbx
    dvy = vay - vby
    speed2 = dvx * dvx + dvy * dvy
    # Positions extrapolated to t = 0.
    pax = sa[0] - vax * sa[4]
    pay = sa[1] - vay * sa[4]
    pbx = sb[0] - vbx * sb[4]
    pby = sb[1] - vby * sb[4]
    if speed2 == 0.0:
        t = t_lo
    else:
        t = -((pax - pbx) * dvx + (pay - pby) * dvy) / speed2
        if t < t_lo:
            t = t_lo
        elif t > t_hi:
            t = t_hi
    dx = (pax + vax * t) - (pbx + vbx * t)
    dy = (pay + vay * t) - (pby + vby * t)
    return dx * dx + dy * dy <= bound * bound


def pair_within(poly_a, poly_b, eps, mode="dll"):
    """True if ``ω(a, b) <= eps`` under the chosen segment distance.

    Early-exits on the first qualifying time-overlapping segment pair; a
    per-pair bounding test (segment boxes) precedes each exact kernel.
    """
    kernel = _dll_within if mode == "dll" else _cpa_within
    segs_a = poly_a.segs
    segs_b = poly_b.segs
    ia = 0
    ib = 0
    na = len(segs_a)
    nb = len(segs_b)
    while ia < na and ib < nb:
        sa = segs_a[ia]
        sb = segs_b[ib]
        if sa[5] < sb[4]:
            ia += 1
            continue
        if sb[5] < sa[4]:
            ib += 1
            continue
        if _candidate_pair_test(sa, sb, eps, kernel):
            return True
        if sa[5] <= sb[5]:
            jb = ib + 1
            while jb < nb and segs_b[jb][4] <= sa[5]:
                if segs_b[jb][5] >= sa[4] and _candidate_pair_test(
                    sa, segs_b[jb], eps, kernel
                ):
                    return True
                jb += 1
            ia += 1
        else:
            ja = ia + 1
            while ja < na and segs_a[ja][4] <= sb[5]:
                if segs_a[ja][5] >= sb[4] and _candidate_pair_test(
                    segs_a[ja], sb, eps, kernel
                ):
                    return True
                ja += 1
            ib += 1
    return False


def _candidate_pair_test(sa, sb, eps, kernel):
    bound = eps + sa[6] + sb[6]
    # Per-pair Lemma 2: axis gaps between the segment boxes bound Dmin.
    a_min_x, a_max_x = (sa[0], sa[2]) if sa[0] <= sa[2] else (sa[2], sa[0])
    b_min_x, b_max_x = (sb[0], sb[2]) if sb[0] <= sb[2] else (sb[2], sb[0])
    gap_x = a_min_x - b_max_x
    if gap_x < b_min_x - a_max_x:
        gap_x = b_min_x - a_max_x
    if gap_x > bound:
        return False
    a_min_y, a_max_y = (sa[1], sa[3]) if sa[1] <= sa[3] else (sa[3], sa[1])
    b_min_y, b_max_y = (sb[1], sb[3]) if sb[1] <= sb[3] else (sb[3], sb[1])
    gap_y = a_min_y - b_max_y
    if gap_y < b_min_y - a_max_y:
        gap_y = b_min_y - a_max_y
    if gap_y > bound:
        return False
    if gap_x > 0.0 and gap_y > 0.0 and gap_x * gap_x + gap_y * gap_y > bound * bound:
        return False
    return kernel(sa, sb, bound)


def polyline_adjacency(polylines, eps, mode="dll", use_sweep=True, stats=None):
    """Compute the ε-neighbour adjacency over one partition's polylines.

    Args:
        polylines: list of :class:`JoinPolyline`.
        eps: the convoy distance threshold ``e``.
        mode: ``"dll"`` (Lemma 1, CuTS/CuTS+) or ``"cpa"`` (Lemma 3, CuTS*).
        use_sweep: when False, every time-coexisting pair is tested exactly
            (the Lemma 2 ablation configuration); the result is identical,
            only slower.
        stats: optional dict accumulating ``pairs_considered`` /
            ``pairs_linked`` counters.

    Returns:
        List of neighbour index lists: ``adjacency[i]`` contains ``i``
        itself plus every ``j`` with ``ω(i, j) <= eps`` — exactly the
        ``NH_e`` sets DBSCAN consumes.
    """
    n = len(polylines)
    adjacency = [[i] for i in range(n)]
    considered = 0
    linked = 0
    if use_sweep:
        order = []
        for i, poly in enumerate(polylines):
            margin = 0.5 * eps + poly.max_tol
            min_x, min_y, max_x, max_y = poly.bounds
            order.append(
                (min_x - margin, max_x + margin,
                 min_y - margin, max_y + margin, i)
            )
        order.sort()
        active = []
        for entry in order:
            start_x = entry[0]
            i = entry[4]
            poly_i = polylines[i]
            keep = []
            for other in active:
                if other[1] < start_x:
                    continue
                keep.append(other)
                if other[3] < entry[2] or entry[3] < other[2]:
                    continue
                j = other[4]
                considered += 1
                if pair_within(poly_i, polylines[j], eps, mode):
                    linked += 1
                    adjacency[i].append(j)
                    adjacency[j].append(i)
            keep.append(entry)
            active = keep
    else:
        for i in range(n):
            for j in range(i + 1, n):
                considered += 1
                if pair_within(polylines[i], polylines[j], eps, mode):
                    linked += 1
                    adjacency[i].append(j)
                    adjacency[j].append(i)
    if stats is not None:
        stats["pairs_considered"] = stats.get("pairs_considered", 0) + considered
        stats["pairs_linked"] = stats.get("pairs_linked", 0) + linked
    return adjacency
