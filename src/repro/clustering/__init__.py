"""Density-based clustering substrate.

The convoy definition is built on DBSCAN-style *density connection*
(Ester et al. 1996, reference [12] of the paper), so the library implements
DBSCAN from scratch in three layers:

* :mod:`repro.clustering.grid_index` — a uniform grid over points that
  answers exact ``e``-neighbourhood queries in expected O(neighbours);
* :mod:`repro.clustering.dbscan` — snapshot DBSCAN over point locations
  (the per-time-point clustering of CMC, Algorithm 1 line 7);
* :mod:`repro.clustering.incremental` — cross-tick delta maintenance of
  snapshot DBSCAN for streams: identical output to a fresh pass per tick,
  paying only for the objects that moved;
* :mod:`repro.clustering.generic_dbscan` — DBSCAN over opaque items with a
  pluggable neighbourhood oracle, used by the CuTS filter to cluster
  *polylines of simplified segments* (the TRAJ-DBSCAN of Algorithm 2);
* :mod:`repro.clustering.range_search` — the multi-step range search of
  Section 5.2 over simplified polylines, applying the Lemma 2 box bound
  before the per-segment Lemma 1 / Lemma 3 bounds.
"""

from repro.clustering.dbscan import dbscan
from repro.clustering.generic_dbscan import density_cluster
from repro.clustering.grid_index import GridIndex
from repro.clustering.incremental import (
    AdaptiveChurnThreshold,
    ClusterDelta,
    IncrementalSnapshotClusterer,
)
from repro.clustering.polyline import PartitionPolyline
from repro.clustering.range_search import PolylineRangeSearcher, polyline_omega

__all__ = [
    "AdaptiveChurnThreshold",
    "ClusterDelta",
    "GridIndex",
    "IncrementalSnapshotClusterer",
    "PartitionPolyline",
    "PolylineRangeSearcher",
    "dbscan",
    "density_cluster",
    "polyline_omega",
]
