"""Uniform grid index for exact ``e``-neighbourhood queries.

DBSCAN's core operation is the ``e``-neighbourhood search
``NH_e(p) = {q | D(p, q) <= e}``.  A uniform grid with cell side ``e``
answers it exactly by scanning the 3x3 block of cells around the query
point and filtering by true distance — the standard trick that brings
snapshot clustering from O(N^2) to expected O(N) per query on non-adversarial
data, playing the role of the "spatial index" the paper credits with
O(N log N) clustering.

The index is mutable: :meth:`GridIndex.remove` and :meth:`GridIndex.move`
let one index follow a snapshot stream across ticks instead of being
rebuilt from scratch (the incremental clusterer in
:mod:`repro.clustering.incremental` relies on this).  Buckets are insertion
-ordered hash sets (dicts), so every mutation is amortized O(1) — no
tombstones accumulate and a bucket whose last point leaves is reclaimed
immediately, keeping memory proportional to the live points regardless of
how far they have drifted since the index was built.
"""

from __future__ import annotations

import math
from collections import defaultdict


class GridIndex:
    """A uniform grid over identified 2-D points.

    Args:
        cell_size: side length of a grid cell.  For ``e``-neighbourhood
            queries the natural choice is ``e`` itself (then only the 3x3
            surrounding block must be scanned).
        points: optional mapping ``{item_id: (x, y)}`` to bulk-load.
    """

    def __init__(self, cell_size, points=None):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._cells = defaultdict(dict)
        self._points = {}
        if points:
            for item_id, xy in points.items():
                self.insert(item_id, xy)

    def __len__(self):
        return len(self._points)

    def __contains__(self, item_id):
        return item_id in self._points

    @property
    def cell_size(self):
        """The configured cell side length."""
        return self._cell_size

    def _cell_of(self, xy):
        return (int(xy[0] // self._cell_size), int(xy[1] // self._cell_size))

    @staticmethod
    def _check_finite(item_id, xy):
        if not (math.isfinite(xy[0]) and math.isfinite(xy[1])):
            raise ValueError(
                f"coordinates must be finite, got {xy!r} for item "
                f"{item_id!r} (NaN/inf would corrupt cell hashing)"
            )

    def insert(self, item_id, xy):
        """Insert one point; duplicate ids and non-finite coordinates are
        rejected."""
        if item_id in self._points:
            raise ValueError(f"duplicate item id {item_id!r}")
        self._check_finite(item_id, xy)
        self._points[item_id] = xy
        self._cells[self._cell_of(xy)][item_id] = None

    def remove(self, item_id):
        """Remove a point; unknown ids raise :class:`KeyError`.

        The point's bucket entry is deleted eagerly and the bucket itself is
        dropped when it empties, so long-lived streaming indexes never
        accumulate ghost cells.
        """
        if item_id not in self._points:
            raise KeyError(f"unknown item id {item_id!r}")
        xy = self._points.pop(item_id)
        cell = self._cell_of(xy)
        bucket = self._cells[cell]
        del bucket[item_id]
        if not bucket:
            del self._cells[cell]

    def move(self, item_id, xy):
        """Update a point's position, re-bucketing only on a cell change.

        Unknown ids raise :class:`KeyError`; non-finite coordinates raise
        :class:`ValueError` and leave the index unchanged.  Moves within a
        cell cost one dict store; cross-cell moves cost one delete plus one
        insert — both amortized O(1).
        """
        if item_id not in self._points:
            raise KeyError(f"unknown item id {item_id!r}")
        self._check_finite(item_id, xy)
        old_cell = self._cell_of(self._points[item_id])
        new_cell = self._cell_of(xy)
        self._points[item_id] = xy
        if old_cell != new_cell:
            bucket = self._cells[old_cell]
            del bucket[item_id]
            if not bucket:
                del self._cells[old_cell]
            self._cells[new_cell][item_id] = None

    def location_of(self, item_id):
        """Return the stored ``(x, y)`` of an item."""
        return self._points[item_id]

    def neighbors_within(self, xy, radius):
        """Return ids of all points with ``D(xy, point) <= radius``.

        The query point itself is included when it was inserted (DBSCAN's
        neighbourhood definition counts the point itself).  ``radius`` may
        be smaller or larger than the cell size; the scanned block is sized
        accordingly.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        reach = int(radius // self._cell_size) + 1
        cx, cy = self._cell_of(xy)
        radius2 = radius * radius
        result = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                bucket = self._cells.get((gx, gy))
                if not bucket:
                    continue
                for item_id in bucket:
                    px, py = self._points[item_id]
                    dx = px - xy[0]
                    dy = py - xy[1]
                    if dx * dx + dy * dy <= radius2:
                        result.append(item_id)
        return result

    def neighbors_of(self, item_id, radius):
        """Return ``NH_radius`` of a stored item (including the item itself)."""
        return self.neighbors_within(self._points[item_id], radius)
