"""Uniform grid index for exact ``e``-neighbourhood queries.

DBSCAN's core operation is the ``e``-neighbourhood search
``NH_e(p) = {q | D(p, q) <= e}``.  A uniform grid with cell side ``e``
answers it exactly by scanning the 3x3 block of cells around the query
point and filtering by true distance — the standard trick that brings
snapshot clustering from O(N^2) to expected O(N) per query on non-adversarial
data, playing the role of the "spatial index" the paper credits with
O(N log N) clustering.
"""

from __future__ import annotations

from collections import defaultdict


class GridIndex:
    """A uniform grid over identified 2-D points.

    Args:
        cell_size: side length of a grid cell.  For ``e``-neighbourhood
            queries the natural choice is ``e`` itself (then only the 3x3
            surrounding block must be scanned).
        points: optional mapping ``{item_id: (x, y)}`` to bulk-load.
    """

    def __init__(self, cell_size, points=None):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._cells = defaultdict(list)
        self._points = {}
        if points:
            for item_id, xy in points.items():
                self.insert(item_id, xy)

    def __len__(self):
        return len(self._points)

    def __contains__(self, item_id):
        return item_id in self._points

    @property
    def cell_size(self):
        """The configured cell side length."""
        return self._cell_size

    def _cell_of(self, xy):
        return (int(xy[0] // self._cell_size), int(xy[1] // self._cell_size))

    def insert(self, item_id, xy):
        """Insert one point; duplicate ids are rejected."""
        if item_id in self._points:
            raise ValueError(f"duplicate item id {item_id!r}")
        self._points[item_id] = xy
        self._cells[self._cell_of(xy)].append(item_id)

    def location_of(self, item_id):
        """Return the stored ``(x, y)`` of an item."""
        return self._points[item_id]

    def neighbors_within(self, xy, radius):
        """Return ids of all points with ``D(xy, point) <= radius``.

        The query point itself is included when it was inserted (DBSCAN's
        neighbourhood definition counts the point itself).  ``radius`` may
        be smaller or larger than the cell size; the scanned block is sized
        accordingly.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        reach = int(radius // self._cell_size) + 1
        cx, cy = self._cell_of(xy)
        radius2 = radius * radius
        result = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                bucket = self._cells.get((gx, gy))
                if not bucket:
                    continue
                for item_id in bucket:
                    px, py = self._points[item_id]
                    dx = px - xy[0]
                    dy = py - xy[1]
                    if dx * dx + dy * dy <= radius2:
                        result.append(item_id)
        return result

    def neighbors_of(self, item_id, radius):
        """Return ``NH_radius`` of a stored item (including the item itself)."""
        return self.neighbors_within(self._points[item_id], radius)
