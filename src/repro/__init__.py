"""repro — convoy discovery in trajectory databases.

A from-scratch Python reproduction of *"Discovery of Convoys in Trajectory
Databases"* (Jeung, Yiu, Zhou, Jensen, Shen — VLDB 2008): the convoy query
(density-connected groups of >= m objects over >= k consecutive time
points), the exact CMC algorithm, and the CuTS / CuTS+ / CuTS* filter-and-
refinement family built on trajectory line simplification with provable
distance bounds.

Quickstart::

    from repro import TrajectoryDatabase, Trajectory, cmc, cuts

    db = TrajectoryDatabase([
        Trajectory("a", [(0, 0, t) for t in range(10)]),
        Trajectory("b", [(0, 1, t) for t in range(10)]),
        Trajectory("c", [(9, 9, t) for t in range(10)]),
    ])
    convoys = cmc(db, m=2, k=5, eps=2.0)          # exact baseline
    result = cuts(db, m=2, k=5, eps=2.0, variant="cuts*")
    assert result.convoys == convoys

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.baselines import discover_flocks, mc2
from repro.clustering import IncrementalSnapshotClusterer
from repro.core import (
    Convoy,
    CutsResult,
    cmc,
    co_travel_totals,
    compute_delta,
    compute_lambda,
    convoy_sets_equal,
    convoy_timeline,
    convoys_during,
    convoys_of_object,
    cuts,
    false_negative_rate,
    false_positive_rate,
    is_valid_convoy,
    longest_convoy,
    normalize_convoys,
    participation_totals,
    summarize,
    top_convoys,
)
from repro.datasets import (
    DATASETS,
    DatasetSpec,
    car_dataset,
    cattle_dataset,
    synthetic_dataset,
    taxi_dataset,
    truck_dataset,
)
from repro.io import load_trajectories_csv, save_trajectories_csv
from repro.simplification import (
    douglas_peucker,
    douglas_peucker_plus,
    douglas_peucker_star,
)
from repro.streaming import (
    ReorderBuffer,
    ShardedCandidateTracker,
    StreamingConvoyMiner,
    StreamingPipeline,
    WatermarkFrontier,
    churn_stream,
    jitter_ticks,
    mine_stream,
    reorder_ticks,
    replay_csv,
    replay_database,
    synthetic_stream,
)
from repro.trajectory import Trajectory, TrajectoryDatabase, TrajectoryPoint

__version__ = "1.0.0"

__all__ = [
    "Convoy",
    "CutsResult",
    "DATASETS",
    "DatasetSpec",
    "IncrementalSnapshotClusterer",
    "ReorderBuffer",
    "ShardedCandidateTracker",
    "StreamingConvoyMiner",
    "StreamingPipeline",
    "Trajectory",
    "TrajectoryDatabase",
    "TrajectoryPoint",
    "WatermarkFrontier",
    "car_dataset",
    "cattle_dataset",
    "churn_stream",
    "cmc",
    "co_travel_totals",
    "compute_delta",
    "compute_lambda",
    "convoy_sets_equal",
    "convoy_timeline",
    "convoys_during",
    "convoys_of_object",
    "cuts",
    "discover_flocks",
    "longest_convoy",
    "participation_totals",
    "summarize",
    "top_convoys",
    "douglas_peucker",
    "douglas_peucker_plus",
    "douglas_peucker_star",
    "false_negative_rate",
    "false_positive_rate",
    "is_valid_convoy",
    "load_trajectories_csv",
    "mc2",
    "jitter_ticks",
    "mine_stream",
    "normalize_convoys",
    "reorder_ticks",
    "replay_csv",
    "replay_database",
    "save_trajectories_csv",
    "synthetic_dataset",
    "synthetic_stream",
    "taxi_dataset",
    "truck_dataset",
]
