"""Movement primitives for the synthetic datasets.

Three building blocks:

* :func:`waypoint_positions` — a random-waypoint walk: pick a target,
  travel toward it at (roughly) constant speed, repeat.  This produces the
  piecewise-near-linear movement that makes line simplification meaningful
  (a pure Brownian walk would simplify terribly and a straight line too
  well).
* :func:`group_trajectories` — trajectories for a leader plus followers
  with controllable spread around the leader over time.
* :func:`irregular_sample` — thin a regularly-sampled trajectory down to
  irregular sampling (the Taxi/Car regime), always keeping the endpoints.
"""

from __future__ import annotations

import math

from repro.trajectory.point import TrajectoryPoint
from repro.trajectory.trajectory import Trajectory


def waypoint_positions(rng, num_steps, area, speed, start=None, turn_jitter=0.0):
    """Generate ``num_steps`` positions of a random-waypoint walk.

    Args:
        rng: a seeded :class:`random.Random`.
        num_steps: number of positions (one per unit time step).
        area: side length of the square world ``[0, area] x [0, area]``;
            positions are clamped to it.
        speed: distance covered per time step while travelling.
        start: optional starting ``(x, y)``; random inside the area when
            None.
        turn_jitter: per-step heading noise (radians, std-dev-ish) applied
            on top of the waypoint pursuit, for less robotic tracks.

    Returns:
        List of ``(x, y)`` tuples of length ``num_steps``.
    """
    if num_steps < 1:
        raise ValueError(f"num_steps must be >= 1, got {num_steps}")
    if start is None:
        pos = (rng.uniform(0, area), rng.uniform(0, area))
    else:
        pos = start
    positions = [pos]
    target = (rng.uniform(0, area), rng.uniform(0, area))
    for _ in range(num_steps - 1):
        dx = target[0] - pos[0]
        dy = target[1] - pos[1]
        dist = math.hypot(dx, dy)
        if dist < speed:
            target = (rng.uniform(0, area), rng.uniform(0, area))
            dx = target[0] - pos[0]
            dy = target[1] - pos[1]
            dist = math.hypot(dx, dy) or 1.0
        heading = math.atan2(dy, dx)
        if turn_jitter:
            heading += rng.gauss(0.0, turn_jitter)
        step = min(speed, dist)
        pos = (
            min(max(pos[0] + step * math.cos(heading), 0.0), area),
            min(max(pos[1] + step * math.sin(heading), 0.0), area),
        )
        positions.append(pos)
    return positions


def group_trajectories(
    rng,
    leader_positions,
    t_start,
    member_ids,
    spread_fn,
    jitter=0.0,
):
    """Build follower trajectories around a leader path.

    Each member ``i`` keeps a fixed unit offset direction from the leader;
    its distance from the leader at step ``s`` is ``spread_fn(s)``, plus
    optional Gaussian jitter.  With a small constant spread the members
    form a density-connected blob (a convoy); growing the spread outside an
    interval disperses them.

    Args:
        rng: a seeded :class:`random.Random`.
        leader_positions: list of leader ``(x, y)`` per step.
        t_start: time point of the first step.
        member_ids: identifiers; one trajectory per member is returned.
        spread_fn: ``f(step_index) -> float`` distance from the leader.
        jitter: per-coordinate Gaussian noise σ.

    Returns:
        List of :class:`~repro.trajectory.trajectory.Trajectory`.
    """
    trajectories = []
    for member_id in member_ids:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        ux = math.cos(angle)
        uy = math.sin(angle)
        points = []
        for step, (lx, ly) in enumerate(leader_positions):
            r = spread_fn(step)
            x = lx + ux * r
            y = ly + uy * r
            if jitter:
                x += rng.gauss(0.0, jitter)
                y += rng.gauss(0.0, jitter)
            points.append(TrajectoryPoint(x, y, t_start + step))
        trajectories.append(Trajectory(member_id, points))
    return trajectories


def irregular_sample(trajectory, rng, keep_probability):
    """Thin a trajectory to irregular sampling.

    Every interior sample survives independently with ``keep_probability``;
    the first and last samples always survive so ``o.tau`` is unchanged.
    This reproduces the Taxi dataset's "some taxis reported their locations
    every three minutes, while some did it once in several minutes".

    Returns a new :class:`~repro.trajectory.trajectory.Trajectory`.
    """
    if not (0.0 < keep_probability <= 1.0):
        raise ValueError(
            f"keep_probability must be in (0, 1], got {keep_probability}"
        )
    points = list(trajectory)
    if len(points) <= 2 or keep_probability == 1.0:
        return trajectory
    kept = [points[0]]
    kept.extend(
        p for p in points[1:-1] if rng.random() < keep_probability
    )
    kept.append(points[-1])
    return Trajectory(trajectory.object_id, kept)
