"""Convoy planting with known ground truth.

Tests need databases where the *expected* convoys are known by
construction.  :func:`plant_convoy_group` builds a group of objects that
are provably density-connected (tightly packed around a leader) during a
chosen interval and dispersed outside it, and returns the
:class:`PlantedConvoy` ground-truth record alongside the trajectories.

The guarantee is one-sided by design: discovery algorithms must find a
convoy *containing* the planted one (same objects or more, covering at
least the core interval).  Exact interval equality is not promised because
the dispersal ramps are gradual and neighbouring noise objects may join.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.movers import group_trajectories, waypoint_positions


@dataclass(frozen=True)
class PlantedConvoy:
    """Ground truth for one planted convoy.

    Attributes:
        objects: frozenset of member object ids.
        t_start, t_end: the *core* interval during which the members are
            guaranteed tightly packed (well within any reasonable ``e``).
    """

    objects: frozenset
    t_start: int
    t_end: int

    @property
    def lifetime(self):
        """Length of the guaranteed interval in time points."""
        return self.t_end - self.t_start + 1

    def is_covered_by(self, convoys):
        """True if some discovered convoy contains this planted one."""
        return any(
            self.objects <= convoy.objects
            and convoy.t_start <= self.t_start
            and self.t_end <= convoy.t_end
            for convoy in convoys
        )

    def is_detected_by(self, convoys, min_members, min_overlap=0.7):
        """Tolerant detection check for noisy multi-group databases.

        The paper's CMC narrows a candidate to its intersection with each
        new cluster and never re-grows it, so a noise object that briefly
        co-clusters with some members *before* the core interval can
        legitimately clip a few time points off the discovered convoy (see
        the candidates-module docstring).  Detection therefore requires a
        discovered convoy sharing at least ``min_members`` members whose
        interval covers at least ``min_overlap`` of the core interval —
        strict containment (:meth:`is_covered_by`) remains the right check
        for noise-free planted databases.
        """
        needed = min(min_members, len(self.objects))
        for convoy in convoys:
            if len(convoy.objects & self.objects) < needed:
                continue
            overlap_lo = max(convoy.t_start, self.t_start)
            overlap_hi = min(convoy.t_end, self.t_end)
            if overlap_hi < overlap_lo:
                continue
            if (overlap_hi - overlap_lo + 1) >= min_overlap * self.lifetime:
                return True
        return False


def plant_convoy_group(
    rng,
    member_ids,
    t_start,
    t_end,
    eps,
    area,
    speed,
    alive_range=None,
    ramp=None,
    dispersed_spread=None,
):
    """Build one group of trajectories containing a known convoy.

    Args:
        rng: a seeded :class:`random.Random`.
        member_ids: ids of the group's objects (the convoy members).
        t_start, t_end: the core convoy interval (inclusive).
        eps: the query distance threshold the convoy must be found under;
            members stay within ``eps / 4`` of the leader inside the core
            interval (so consecutive members are within ``eps/2 < eps`` of
            each other).
        area: world side length.
        speed: leader speed per time step.
        alive_range: optional ``(t_lo, t_hi)`` full lifetime of the group's
            trajectories; defaults to the core interval padded by ``ramp``
            steps on both sides (clamped to ``t >= 0``).
        ramp: number of steps over which members disperse outside the core
            interval; defaults to ``max(4, (t_end - t_start) // 2)``.
        dispersed_spread: member-to-leader distance when fully dispersed;
            defaults to ``6 * eps`` (comfortably un-clusterable).

    Returns:
        ``(trajectories, PlantedConvoy)``.
    """
    if t_end < t_start:
        raise ValueError(f"core interval reversed: [{t_start}, {t_end}]")
    if ramp is None:
        ramp = max(4, (t_end - t_start) // 2)
    if dispersed_spread is None:
        dispersed_spread = 6.0 * eps
    if alive_range is None:
        alive_range = (max(0, t_start - ramp), t_end + ramp)
    t_lo, t_hi = alive_range
    if not (t_lo <= t_start and t_end <= t_hi):
        raise ValueError(
            f"alive range [{t_lo}, {t_hi}] must contain core [{t_start}, {t_end}]"
        )
    num_steps = t_hi - t_lo + 1
    leader = waypoint_positions(rng, num_steps, area, speed)
    tight = eps / 4.0
    core_lo = t_start - t_lo
    core_hi = t_end - t_lo

    def spread_fn(step):
        if core_lo <= step <= core_hi:
            return tight
        if step < core_lo:
            gap = core_lo - step
        else:
            gap = step - core_hi
        fraction = min(1.0, gap / ramp)
        return tight + (dispersed_spread - tight) * fraction

    trajectories = group_trajectories(
        rng,
        leader,
        t_lo,
        member_ids,
        spread_fn,
        jitter=eps / 40.0,
    )
    planted = PlantedConvoy(frozenset(member_ids), t_start, t_end)
    return trajectories, planted
