"""Synthetic trajectory datasets emulating the paper's evaluation data.

The paper evaluates on four real datasets (Truck/Athens, Cattle/CSIRO,
Car/Copenhagen, Taxi/Beijing) that are not redistributable.  Convoy
discovery experiments depend on the data's *shape* — object count, time
domain length, sampling regularity, lifetime heterogeneity, and the amount
of genuine co-movement — rather than on geography, so each dataset is
replaced by a seeded generator matching those shape parameters (see
DESIGN.md §4 for the substitution argument).

* :func:`truck_dataset` — many objects with medium-length, partially
  overlapping lifetimes and strong route-sharing (most convoys);
* :func:`cattle_dataset` — very few objects with enormous, regularly
  sampled histories (simplification-dominated workloads);
* :func:`car_dataset` — heterogeneous trajectory lengths and staggered
  appearance (the regime that penalizes CMC's virtual points);
* :func:`taxi_dataset` — many near-uniformly scattered objects with short,
  irregularly sampled histories (clustering-dominated, ~no convoys).

All generators accept a ``scale`` multiplier on the time domain (and the
derived lifetime parameter ``k``) so tests run in milliseconds and benches
in seconds; ``scale=1.0`` approximates the paper's point counts.
"""

from repro.datasets.movers import (
    group_trajectories,
    irregular_sample,
    waypoint_positions,
)
from repro.datasets.paperlike import (
    DATASETS,
    DatasetSpec,
    car_dataset,
    cattle_dataset,
    synthetic_dataset,
    taxi_dataset,
    truck_dataset,
)
from repro.datasets.planting import PlantedConvoy, plant_convoy_group

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "PlantedConvoy",
    "car_dataset",
    "cattle_dataset",
    "group_trajectories",
    "irregular_sample",
    "plant_convoy_group",
    "synthetic_dataset",
    "taxi_dataset",
    "truck_dataset",
    "waypoint_positions",
]
