"""Generators emulating the paper's four evaluation datasets.

Every generator returns a :class:`DatasetSpec` bundling the synthetic
:class:`~repro.trajectory.TrajectoryDatabase`, the convoy-query parameters
(m, k, e) analogous to Table 3, the planted ground truth, and the paper's
reported statistics for side-by-side reporting in Table 3's bench.

The shape parameters (object count, domain length, sampling regularity,
lifetime heterogeneity) follow Table 3; the ``scale`` argument shrinks the
time domain (and ``k`` proportionally) so the suite runs on a laptop —
the paper's absolute C++ timings are not reproducible anyway, while every
relative conclusion survives scaling (DESIGN.md §4).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.datasets.movers import waypoint_positions
from repro.datasets.planting import PlantedConvoy
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.point import TrajectoryPoint
from repro.trajectory.trajectory import Trajectory


@dataclass
class DatasetSpec:
    """A generated dataset plus everything an experiment needs to run it.

    Attributes:
        name: dataset name ("truck", "cattle", "car", "taxi", or custom).
        database: the generated trajectory database.
        m, k, eps: convoy-query parameters analogous to Table 3 (``k`` is
            scaled together with the time domain).
        planted: list of :class:`~repro.datasets.planting.PlantedConvoy`
            ground-truth records.
        paper_stats: the corresponding Table 3 column (empty for custom
            datasets), for paper-vs-measured reporting.
        seed, scale: generation parameters, for provenance.
    """

    name: str
    database: TrajectoryDatabase
    m: int
    k: int
    eps: float
    planted: list = field(default_factory=list)
    paper_stats: dict = field(default_factory=dict)
    seed: int = 0
    scale: float = 1.0

    def statistics(self):
        """Measured Table 3 statistics of the generated database."""
        return self.database.statistics()


class _Episode:
    """One planted co-movement episode during dataset assembly."""

    __slots__ = ("members", "t_core_lo", "t_core_hi", "t_lo", "t_hi",
                 "leader", "offsets", "tight")

    def __init__(self, members, t_core_lo, t_core_hi, t_lo, t_hi,
                 leader, offsets, tight):
        self.members = members
        self.t_core_lo = t_core_lo
        self.t_core_hi = t_core_hi
        self.t_lo = t_lo
        self.t_hi = t_hi
        self.leader = leader
        self.offsets = offsets
        self.tight = tight

    def weight(self, t):
        """Blend weight: 1 inside the core, ramping to 0 at the episode edges."""
        if self.t_core_lo <= t <= self.t_core_hi:
            return 1.0
        if t < self.t_core_lo:
            span = self.t_core_lo - self.t_lo
            return (t - self.t_lo) / span if span else 1.0
        span = self.t_hi - self.t_core_hi
        return (self.t_hi - t) / span if span else 1.0

    def position_for(self, member, t):
        """The member's episode-following position at time ``t``."""
        lx, ly = self.leader[t - self.t_lo]
        ox, oy = self.offsets[member]
        return (lx + ox, ly + oy)


def synthetic_dataset(
    name,
    seed,
    n_objects,
    t_domain,
    eps,
    m,
    k,
    episode_count,
    episode_size,
    episode_duration_factor=(1.2, 2.5),
    area=None,
    speed=None,
    alive_fraction=(1.0, 1.0),
    keep_probability=1.0,
    paper_stats=None,
    scale=1.0,
):
    """Assemble a synthetic dataset with planted convoys.

    Construction: every object follows an independent random-waypoint walk
    over its alive window; each *episode* picks a member subset and a core
    interval and blends the members' positions onto a shared leader path
    (within ``eps/4``) during the core, with linear ramps on both sides.
    Inside the core the members are pairwise within ``eps/2 (+ jitter)`` of
    each other, hence density-connected for any ``m`` up to the group size.

    Args:
        name: dataset name.
        seed: RNG seed; everything is derived from it deterministically.
        n_objects: number of moving objects ``N``.
        t_domain: number of time points ``T`` (domain is ``[0, T-1]``).
        eps, m, k: the convoy-query parameters the dataset is tuned for.
        episode_count: how many co-movement episodes to plant.
        episode_size: ``(lo, hi)`` member-count range per episode.
        episode_duration_factor: core duration as a multiple of ``k``.
        area: world side length; default ``25 * eps``.
        speed: movement per time step; default ``eps / 3``.
        alive_fraction: ``(lo, hi)`` range of each object's lifetime as a
            fraction of ``T`` (1.0 = alive for the whole domain).
        keep_probability: per-tick sampling probability *outside* episode
            windows (members keep dense sampling inside episodes so the
            planted co-movement survives interpolation).
        paper_stats: optional Table 3 column to attach.
        scale: recorded on the spec for provenance.

    Returns:
        A :class:`DatasetSpec`.
    """
    if t_domain < max(4, k + 2):
        raise ValueError(f"t_domain={t_domain} too small for k={k}")
    if n_objects < 1:
        raise ValueError(f"n_objects must be >= 1, got {n_objects}")
    rng = random.Random(seed)
    if area is None:
        area = 25.0 * eps
    if speed is None:
        speed = eps / 3.0
    jitter = eps / 40.0

    # 1. Alive windows and base walks.
    alive = []
    base = []
    for i in range(n_objects):
        fraction = rng.uniform(*alive_fraction)
        length = max(4, int(t_domain * fraction))
        start = rng.randint(0, t_domain - length)
        alive.append((start, start + length - 1))
        base.append(
            waypoint_positions(rng, length, area, speed, turn_jitter=0.15)
        )

    # 2. Plant episodes on non-conflicting (object, interval) slots.
    ramp = max(3, k // 2)
    reserved = [[] for _ in range(n_objects)]
    episodes = []
    planted = []
    attempts = 0
    max_attempts = episode_count * 30
    while len(episodes) < episode_count and attempts < max_attempts:
        attempts += 1
        duration = int(k * rng.uniform(*episode_duration_factor))
        window = duration + 2 * ramp
        if window >= t_domain:
            duration = max(k, t_domain - 2 * ramp - 2)
            window = duration + 2 * ramp
            if window >= t_domain:
                break
        t_lo = rng.randint(0, t_domain - window - 1)
        t_core_lo = t_lo + ramp
        t_core_hi = t_core_lo + duration - 1
        t_hi = t_core_hi + ramp
        size = rng.randint(*episode_size)
        candidates = [
            i
            for i in range(n_objects)
            if alive[i][0] <= t_lo
            and t_hi <= alive[i][1]
            and all(hi < t_lo or t_hi < lo for lo, hi in reserved[i])
        ]
        if len(candidates) < size:
            continue
        members = rng.sample(candidates, size)
        leader = waypoint_positions(
            rng, t_hi - t_lo + 1, area, speed, turn_jitter=0.05
        )
        tight = eps / 4.0
        offsets = {}
        # Offset directions are spread evenly around the leader (with small
        # angular noise) so that, once the episode's spread grows past the
        # core interval, the members separate *cleanly*: no pair lingers
        # within e by having been given nearly identical directions.  That
        # keeps the planted ground truth sharp — pre/post-core partial
        # clusters would otherwise make CMC's intersection semantics narrow
        # the discovered convoy below the planted member set.
        spacing = 2.0 * math.pi / size
        base_angle = rng.uniform(0.0, 2.0 * math.pi)
        for slot, member in enumerate(members):
            angle = base_angle + slot * spacing + rng.uniform(-0.15, 0.15) * spacing
            radius = rng.uniform(0.5, 1.0) * tight
            offsets[member] = (radius * math.cos(angle), radius * math.sin(angle))
        for member in members:
            reserved[member].append((t_lo, t_hi))
        episodes.append(
            _Episode(members, t_core_lo, t_core_hi, t_lo, t_hi,
                     leader, offsets, tight)
        )
        planted.append(
            PlantedConvoy(
                frozenset(f"o{member}" for member in members),
                t_core_lo,
                t_core_hi,
            )
        )

    # 3. Materialize trajectories: base walk blended onto episode leaders.
    episodes_of = [[] for _ in range(n_objects)]
    for episode in episodes:
        for member in episode.members:
            episodes_of[member].append(episode)
    trajectories = []
    for i in range(n_objects):
        t_start, t_end = alive[i]
        walk = base[i]
        points = []
        for t in range(t_start, t_end + 1):
            x, y = walk[t - t_start]
            for episode in episodes_of[i]:
                if episode.t_lo <= t <= episode.t_hi:
                    w = episode.weight(t)
                    ex, ey = episode.position_for(i, t)
                    x = x * (1.0 - w) + ex * w
                    y = y * (1.0 - w) + ey * w
                    break
            points.append(
                TrajectoryPoint(
                    x + rng.gauss(0.0, jitter),
                    y + rng.gauss(0.0, jitter),
                    t,
                )
            )
        trajectories.append(Trajectory(f"o{i}", points))

    # 4. Thin to irregular sampling outside episode windows.
    if keep_probability < 1.0:
        thinned = []
        for i, trajectory in enumerate(trajectories):
            protected = [
                (episode.t_lo, episode.t_hi) for episode in episodes_of[i]
            ]
            points = list(trajectory)
            kept = [points[0]]
            for p in points[1:-1]:
                in_episode = any(lo <= p.t <= hi for lo, hi in protected)
                if in_episode or rng.random() < keep_probability:
                    kept.append(p)
            kept.append(points[-1])
            thinned.append(Trajectory(trajectory.object_id, kept))
        trajectories = thinned

    return DatasetSpec(
        name=name,
        database=TrajectoryDatabase(trajectories),
        m=m,
        k=k,
        eps=eps,
        planted=planted,
        paper_stats=dict(paper_stats or {}),
        seed=seed,
        scale=scale,
    )


#: Table 3, for paper-vs-measured reporting in the Table 3 bench.
PAPER_TABLE3 = {
    "truck": {
        "num_objects": 276,
        "time_domain_length": 10586,
        "average_trajectory_length": 224,
        "total_points": 59894,
        "m": 3,
        "k": 180,
        "eps": 8,
        "delta": 5.9,
        "lam": 4,
        "convoys_discovered": 91,
    },
    "cattle": {
        "num_objects": 13,
        "time_domain_length": 175636,
        "average_trajectory_length": 175636,
        "total_points": 2283268,
        "m": 2,
        "k": 180,
        "eps": 300,
        "delta": 274.2,
        "lam": 36,
        "convoys_discovered": 47,
    },
    "car": {
        "num_objects": 183,
        "time_domain_length": 8757,
        "average_trajectory_length": 451,
        "total_points": 82590,
        "m": 3,
        "k": 180,
        "eps": 80,
        "delta": 63.4,
        "lam": 24,
        "convoys_discovered": 15,
    },
    "taxi": {
        "num_objects": 500,
        "time_domain_length": 965,
        "average_trajectory_length": 82,
        "total_points": 41144,
        "m": 3,
        "k": 180,
        "eps": 40,
        "delta": 31.5,
        "lam": 4,
        "convoys_discovered": 4,
    },
}


def _scaled_k(scale):
    """The paper's k = 180, scaled with the time domain (minimum 4)."""
    return max(4, int(round(180 * scale)))


def truck_dataset(seed=7, scale=0.1):
    """Truck-like data: many objects, medium lifetimes, heavy route sharing.

    Emulates 276 concrete trucks in the Athens metropolitan area: objects
    live on partially overlapping sub-windows (the paper flattened 33 days
    into one), sampling is near-regular, and many small delivery convoys
    exist (the paper found 91 — the most of any dataset).
    """
    t_domain = max(80, int(round(10586 * scale)))
    return synthetic_dataset(
        name="truck",
        seed=seed,
        n_objects=276,
        t_domain=t_domain,
        eps=8.0,
        m=3,
        k=_scaled_k(scale),
        episode_count=24,
        episode_size=(3, 5),
        area=2000.0,
        speed=6.0,
        alive_fraction=(0.25, 0.7),
        keep_probability=0.9,
        paper_stats=PAPER_TABLE3["truck"],
        scale=scale,
    )


def cattle_dataset(seed=11, scale=0.01):
    """Cattle-like data: 13 objects with enormous, regularly sampled histories.

    Emulates the CSIRO virtual-fencing herd: GPS ear-tags sampling every
    second for hours.  The tiny N and huge T make simplification the
    dominant cost (Figures 13/15/17).  ``m = 2`` as in Table 3 ("except
    Cattle due to the small number of objects").
    """
    t_domain = max(300, int(round(175636 * scale)))
    return synthetic_dataset(
        name="cattle",
        seed=seed,
        n_objects=13,
        t_domain=t_domain,
        eps=300.0,
        m=2,
        k=_scaled_k(scale * 10),
        episode_count=10,
        episode_size=(2, 4),
        episode_duration_factor=(1.2, 3.0),
        area=5000.0,
        speed=40.0,
        alive_fraction=(1.0, 1.0),
        keep_probability=1.0,
        paper_stats=PAPER_TABLE3["cattle"],
        scale=scale,
    )


def car_dataset(seed=13, scale=0.1):
    """Car-like data: heterogeneous lifetimes and staggered appearance.

    Emulates 183 private cars over one week in Copenhagen: "trajectories in
    this dataset had very different lengths", which is the regime that
    forces CMC to interpolate many virtual points (Figure 12).
    """
    t_domain = max(80, int(round(8757 * scale)))
    return synthetic_dataset(
        name="car",
        seed=seed,
        n_objects=183,
        t_domain=t_domain,
        eps=80.0,
        m=3,
        k=_scaled_k(scale),
        episode_count=8,
        episode_size=(3, 4),
        area=10000.0,
        speed=30.0,
        alive_fraction=(0.1, 0.9),
        keep_probability=0.6,
        paper_stats=PAPER_TABLE3["car"],
        scale=scale,
    )


def taxi_dataset(seed=17, scale=0.5):
    """Taxi-like data: many scattered objects, short irregular histories.

    Emulates 500 Beijing taxis over one day with irregular multi-minute
    reporting gaps.  Taxis roam near-uniformly, so hardly any convoys exist
    (the paper found 4) and clustering dominates the cost (Figure 13).
    """
    t_domain = max(80, int(round(965 * scale)))
    return synthetic_dataset(
        name="taxi",
        seed=seed,
        n_objects=500,
        t_domain=t_domain,
        eps=40.0,
        m=3,
        k=_scaled_k(scale / 2.5),
        episode_count=3,
        episode_size=(3, 3),
        area=12000.0,
        speed=60.0,
        alive_fraction=(0.3, 1.0),
        keep_probability=0.35,
        paper_stats=PAPER_TABLE3["taxi"],
        scale=scale,
    )


#: Name -> generator registry, mirroring the paper's dataset lineup.
DATASETS = {
    "truck": truck_dataset,
    "cattle": cattle_dataset,
    "car": car_dataset,
    "taxi": taxi_dataset,
}
