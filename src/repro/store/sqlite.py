"""SQLite backend of the :class:`~repro.store.base.ConvoyStore` interface.

Storage shape (the accelerator-table pattern: interval answers live in
indexed columns next to the payload, so every query is an index range
walk, never a scan):

::

    convoys                                convoy_members
    ---------------------------------      -----------------------
    convoy_id   INTEGER PRIMARY KEY        object_id  TEXT
    identity    TEXT UNIQUE  <- upsert     convoy_id  INTEGER
    t_start     INTEGER  \\                 PRIMARY KEY (object_id,
    t_end       INTEGER   } interval                    convoy_id)
    segment     INTEGER  /  accelerator
    size        INTEGER  \\  rank
    lifetime    INTEGER  /  accelerator
    members_json TEXT    <- read-back payload (no join needed)
    min_x/min_y/max_x/max_y REAL  <- bbox accelerator (nullable)

    store_meta: schema_version, segment_length, and the transactional
    aggregate bounds (max_lifetime, max_width, max_height, min_t, max_t)
    the query planner's narrowing tricks rely on.

Why the queries are index-served:

* **alive_in(t1, t2)** — interval intersection (``t_start <= t2 AND
  t_end >= t1``) cannot be answered by one B-tree range alone, but the
  store knows the longest lifetime it ever stored (``max_lifetime``,
  maintained in the same transaction as every insert), so any convoy
  alive at ``t1`` must have ``t_start > t1 - max_lifetime``.  Adding
  that bound turns the predicate into a *two-sided* range on the
  ``(t_start, t_end, identity)`` index — the classic bounded-extent
  interval trick.  The same trick bounds ``intersecting(bbox)`` along x
  via ``max_width``.
* **top_k(by=size|duration)** — rows carry a coarse time ``segment``
  (``t_start // segment_length``) and two per-segment rank indexes
  (``(segment, size DESC, ...)`` / ``(segment, lifetime DESC, ...)``).
  ``top_k`` opens one sorted cursor per candidate segment and lazily
  **heap-merges** them (ranked enumeration): each ``next()`` pops one
  heap root and advances one cursor, so the k-th result is produced
  after O((#segments + k) log #segments) work and *nothing* is ever
  materialized or sorted wholesale.  A time-window restriction simply
  drops the non-overlapping segments before the merge starts.

Durability: the database runs in WAL mode with ``synchronous=NORMAL``
— every committed tick batch survives a killed process (WAL replay on
reopen); a crash mid-commit rolls back to the previous tick boundary,
and the identity upsert makes replaying the stream from the start
converge on exactly the same rows.  One writer at a time is assumed
(WAL readers are concurrent); multi-writer coordination is the
PostgreSQL backend's job.
"""

from __future__ import annotations

import heapq
import os
import sqlite3

from repro.geometry.bbox import BoundingBox
from repro.store.base import (
    ConvoyStore,
    convoy_identity,
    encode_members,
    encode_object_id,
    rank_key,
    row_to_convoy,
)

SCHEMA_VERSION = 1

#: Default coarse-segment width (time points) for the top-k rank indexes.
DEFAULT_SEGMENT_LENGTH = 64

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS convoys (
    convoy_id    INTEGER PRIMARY KEY,
    identity     TEXT NOT NULL UNIQUE,
    t_start      INTEGER NOT NULL,
    t_end        INTEGER NOT NULL,
    segment      INTEGER NOT NULL,
    size         INTEGER NOT NULL,
    lifetime     INTEGER NOT NULL,
    members_json TEXT NOT NULL,
    min_x REAL, min_y REAL, max_x REAL, max_y REAL
);
CREATE INDEX IF NOT EXISTS idx_convoys_interval
    ON convoys (t_start, t_end, identity);
CREATE INDEX IF NOT EXISTS idx_convoys_rank_size
    ON convoys (segment, size DESC, lifetime DESC, t_start, t_end, identity);
CREATE INDEX IF NOT EXISTS idx_convoys_rank_duration
    ON convoys (segment, lifetime DESC, size DESC, t_start, t_end, identity);
CREATE INDEX IF NOT EXISTS idx_convoys_bbox
    ON convoys (min_x);
CREATE TABLE IF NOT EXISTS convoy_members (
    object_id TEXT NOT NULL,
    convoy_id INTEGER NOT NULL REFERENCES convoys(convoy_id)
        ON DELETE CASCADE,
    PRIMARY KEY (object_id, convoy_id)
) WITHOUT ROWID;
"""

_ROW_FIELDS = "t_start, t_end, members_json"


class SQLiteConvoyStore(ConvoyStore):
    """A :class:`~repro.store.base.ConvoyStore` over one SQLite file.

    Args:
        path: database file path (created on first open), or
            ``":memory:"`` for an ephemeral store (tests; WAL does not
            apply there).
        segment_length: coarse-segment width for the top-k rank indexes,
            in time points.  Fixed at database creation; reopening an
            existing store keeps its stored value and ignores this
            argument.
    """

    def __init__(self, path, segment_length=DEFAULT_SEGMENT_LENGTH):
        if segment_length < 1:
            raise ValueError(
                f"segment_length must be >= 1, got {segment_length}"
            )
        self.path = os.fspath(path) if not isinstance(path, str) else path
        # Explicit transaction control: the connection stays in
        # autocommit and every write path wraps itself in BEGIN/COMMIT,
        # so a tick batch is exactly one WAL commit.
        # check_same_thread=False: callers may open a store on one
        # thread and step it from another (the ingestion service runs
        # miner steps on a worker pool).  Access is still serialized —
        # every user of a store (sink, session, CLI) runs one operation
        # at a time — and the sqlite3 module itself is compiled
        # thread-safe, so only the same-thread *handoff* is relaxed.
        self._con = sqlite3.connect(
            self.path, isolation_level=None, check_same_thread=False
        )
        self._con.execute("PRAGMA foreign_keys = ON")
        if self.path != ":memory:":
            self._con.execute("PRAGMA journal_mode = WAL")
            # NORMAL loses at most OS-buffer durability on *power* loss;
            # a killed process never loses a committed transaction, and
            # consistency is unconditional.
            self._con.execute("PRAGMA synchronous = NORMAL")
            self._con.execute("PRAGMA busy_timeout = 10000")
        self._closed = False
        self._in_batch = False
        self._con.executescript(_SCHEMA)
        self._meta = dict(
            self._con.execute("SELECT key, value FROM store_meta")
        )
        # Parsed-number cache over _meta: _bump_bounds consults the
        # aggregate bounds on every insert, so str->int parsing there
        # would be per-convoy write-through overhead.
        self._parsed = {}
        version = int(self._meta.get("schema_version", SCHEMA_VERSION))
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"convoy store {self.path!r} has schema version {version}; "
                f"this build reads version {SCHEMA_VERSION}"
            )
        if "schema_version" not in self._meta:
            self._write_meta(
                schema_version=SCHEMA_VERSION,
                segment_length=int(segment_length),
            )
        self.segment_length = int(self._meta["segment_length"])

    # -- metadata ----------------------------------------------------

    def _write_meta(self, **updates):
        """Upsert meta keys (inside the caller's transaction, if any)."""
        rows = [(key, str(value)) for key, value in updates.items()]
        self._con.executemany(
            "INSERT INTO store_meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            rows,
        )
        for key, value in updates.items():
            self._meta[key] = str(value)
            self._parsed.pop(key, None)

    def _meta_int(self, key):
        return self._meta_number(key, int)

    def _meta_float(self, key):
        return self._meta_number(key, float)

    def _meta_number(self, key, parse):
        value = self._parsed.get(key)
        if value is None:
            raw = self._meta.get(key)
            if raw is None:
                return None
            value = self._parsed[key] = parse(raw)
        return value

    # -- writing -----------------------------------------------------

    def add(self, convoy, bbox=None):
        self._check_open()
        if self._in_batch:
            return self._insert(convoy, bbox)
        self._con.execute("BEGIN IMMEDIATE")
        try:
            inserted = self._insert(convoy, bbox)
        except BaseException:
            self._con.execute("ROLLBACK")
            raise
        self._con.execute("COMMIT")
        return inserted

    def add_batch(self, convoys, bboxes=None):
        self._check_open()
        if bboxes is None:
            pairs = [(convoy, None) for convoy in convoys]
        else:
            pairs = list(zip(convoys, bboxes))
        if not pairs:
            return 0
        if self._in_batch:
            return sum(self._insert(c, b) for c, b in pairs)
        self._con.execute("BEGIN IMMEDIATE")
        try:
            stored = sum(self._insert(c, b) for c, b in pairs)
        except BaseException:
            self._con.execute("ROLLBACK")
            raise
        self._con.execute("COMMIT")
        return stored

    def batch(self):
        """Context manager grouping many :meth:`add` calls into one
        transaction (the write-through sink's per-tick commit unit)."""
        return _Batch(self)

    def _insert(self, convoy, bbox):
        # One encoding pass serves both the identity and the payload —
        # the identity is, by construction, interval + member text.
        members_json = encode_members(convoy.objects)
        identity = f"{convoy.t_start}:{convoy.t_end}:{members_json}"
        if bbox is None:
            box_cols = (None, None, None, None)
        else:
            box_cols = (bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y)
        cursor = self._con.execute(
            "INSERT INTO convoys (identity, t_start, t_end, segment, size,"
            " lifetime, members_json, min_x, min_y, max_x, max_y)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(identity) DO NOTHING",
            (identity, convoy.t_start, convoy.t_end,
             convoy.t_start // self.segment_length, convoy.size,
             convoy.lifetime, members_json, *box_cols),
        )
        if cursor.rowcount != 1:
            return False  # identity already stored: the idempotent path
        convoy_id = cursor.lastrowid
        self._con.executemany(
            "INSERT OR IGNORE INTO convoy_members (object_id, convoy_id)"
            " VALUES (?, ?)",
            [(encode_object_id(o), convoy_id) for o in convoy.objects],
        )
        self._bump_bounds(convoy, bbox)
        return True

    def _bump_bounds(self, convoy, bbox):
        """Maintain the aggregate bounds the narrowing tricks rely on
        (same transaction as the insert, so they are never stale)."""
        updates = {}
        max_lifetime = self._meta_int("max_lifetime")
        if max_lifetime is None or convoy.lifetime > max_lifetime:
            updates["max_lifetime"] = convoy.lifetime
        min_t = self._meta_int("min_t")
        if min_t is None or convoy.t_start < min_t:
            updates["min_t"] = convoy.t_start
        max_t = self._meta_int("max_t")
        if max_t is None or convoy.t_end > max_t:
            updates["max_t"] = convoy.t_end
        if bbox is not None:
            max_width = self._meta_float("max_width")
            if max_width is None or bbox.width > max_width:
                updates["max_width"] = bbox.width
            max_height = self._meta_float("max_height")
            if max_height is None or bbox.height > max_height:
                updates["max_height"] = bbox.height
        if updates:
            self._write_meta(**updates)

    # -- reading -----------------------------------------------------

    def alive_in(self, t1, t2, force_scan=False):
        """Convoys whose closed interval intersects ``[t1, t2]``.

        ``force_scan=True`` bypasses every index (``NOT INDEXED`` +
        external sort) — the benchmark's honest full-scan baseline, kept
        on the query itself so both plans answer literally the same SQL
        predicate.
        """
        self._check_open()
        if t2 < t1:
            raise ValueError(f"alive_in window reversed: [{t1}, {t2}]")
        if force_scan:
            rows = self._con.execute(
                f"SELECT {_ROW_FIELDS} FROM convoys NOT INDEXED"
                " WHERE t_end >= ? AND t_start <= ?"
                " ORDER BY t_start, t_end, identity",
                (t1, t2),
            )
            return [row_to_convoy(*row) for row in rows]
        max_lifetime = self._meta_int("max_lifetime")
        if max_lifetime is None:
            return []  # empty store
        # Bounded-extent narrowing: alive at t1 implies
        # t_start > t1 - max_lifetime, so the predicate is a two-sided
        # range on the (t_start, t_end, identity) index.
        rows = self._con.execute(
            f"SELECT {_ROW_FIELDS} FROM convoys"
            " WHERE t_start >= ? AND t_start <= ? AND t_end >= ?"
            " ORDER BY t_start, t_end, identity",
            (t1 - max_lifetime + 1, t2, t1),
        )
        return [row_to_convoy(*row) for row in rows]

    def containing(self, object_id):
        self._check_open()
        rows = self._con.execute(
            f"SELECT c.{_ROW_FIELDS.replace(', ', ', c.')}"
            " FROM convoy_members m"
            " JOIN convoys c ON c.convoy_id = m.convoy_id"
            " WHERE m.object_id = ?"
            " ORDER BY c.t_start, c.t_end, c.identity",
            (encode_object_id(object_id),),
        )
        return [row_to_convoy(*row) for row in rows]

    def intersecting(self, bbox):
        self._check_open()
        max_width = self._meta_float("max_width")
        if max_width is None:
            return []  # no convoy was ever stored with a bounding box
        # Same bounded-extent trick along x: an intersecting box has
        # min_x <= query.max_x and min_x > query.min_x - max_width,
        # served by the (min_x) index; y and the exact x overlap are
        # residual filters.
        rows = self._con.execute(
            f"SELECT {_ROW_FIELDS} FROM convoys"
            " WHERE min_x IS NOT NULL"
            " AND min_x >= ? AND min_x <= ?"
            " AND max_x >= ? AND min_y <= ? AND max_y >= ?"
            " ORDER BY t_start, t_end, identity",
            (bbox.min_x - max_width, bbox.max_x,
             bbox.min_x, bbox.max_y, bbox.min_y),
        )
        return [row_to_convoy(*row) for row in rows]

    def top_k(self, by="size", k=None, alive=None):
        """Lazily enumerate the k highest-ranked convoys (ranked-
        enumeration heap merge over the per-segment rank indexes; see
        the module docstring).  ``k=None`` streams the full ranking."""
        self._check_open()
        if by == "size":
            order = "size DESC, lifetime DESC, t_start, t_end, identity"
        elif by == "duration":
            order = "lifetime DESC, size DESC, t_start, t_end, identity"
        else:
            raise ValueError(
                f"top_k ranks by 'size' or 'duration', got {by!r}"
            )
        if k is not None and k < 0:
            raise ValueError(f"k must be >= 0 or None, got {k}")
        min_t = self._meta_int("min_t")
        if min_t is None or k == 0:
            return iter(())
        max_t = self._meta_int("max_t")
        max_lifetime = self._meta_int("max_lifetime")
        where = ""
        params = ()
        lo_t, hi_t = min_t, max_t
        if alive is not None:
            t1, t2 = alive
            if t2 < t1:
                raise ValueError(f"alive window reversed: [{t1}, {t2}]")
            where = " AND t_start >= ? AND t_start <= ? AND t_end >= ?"
            params = (t1 - max_lifetime + 1, t2, t1)
            lo_t = max(lo_t, t1 - max_lifetime + 1)
            hi_t = min(hi_t, t2)
            if hi_t < lo_t:
                return iter(())
        segments = range(lo_t // self.segment_length,
                         hi_t // self.segment_length + 1)
        return self._merge_segments(segments, order, where, params, by, k)

    def _merge_segments(self, segments, order, where, params, by, k):
        """The lazy k-way merge: one sorted index cursor per segment,
        one heap pop (plus one cursor advance) per yielded convoy."""
        cursors = []
        try:
            heap = []
            for seg_pos, segment in enumerate(segments):
                cursor = self._con.execute(
                    "SELECT size, lifetime, t_start, t_end, identity,"
                    " members_json FROM convoys"
                    f" WHERE segment = ?{where} ORDER BY {order}",
                    (segment, *params),
                )
                cursors.append(cursor)
                row = cursor.fetchone()
                if row is not None:
                    heap.append((self._merge_key(row, by), seg_pos, row))
            heapq.heapify(heap)
            yielded = 0
            while heap and (k is None or yielded < k):
                _key, seg_pos, row = heap[0]
                convoy = row_to_convoy(row[2], row[3], row[5])
                next_row = cursors[seg_pos].fetchone()
                if next_row is None:
                    heapq.heappop(heap)
                else:
                    heapq.heapreplace(
                        heap,
                        (self._merge_key(next_row, by), seg_pos, next_row),
                    )
                yield convoy
                yielded += 1
        finally:
            for cursor in cursors:
                cursor.close()

    @staticmethod
    def _merge_key(row, by):
        """The heap ordering key — precisely
        :func:`~repro.store.base.rank_key` built from row fields."""
        size, lifetime, t_start, t_end, identity, _members = row
        if by == "size":
            return (-size, -lifetime, t_start, t_end, identity)
        return (-lifetime, -size, t_start, t_end, identity)

    def all_convoys(self):
        self._check_open()
        rows = self._con.execute(
            f"SELECT {_ROW_FIELDS} FROM convoys"
            " ORDER BY t_start, t_end, identity"
        )
        return [row_to_convoy(*row) for row in rows]

    def count(self):
        self._check_open()
        (n,) = self._con.execute("SELECT COUNT(*) FROM convoys").fetchone()
        return n

    def bbox_of(self, convoy):
        self._check_open()
        row = self._con.execute(
            "SELECT min_x, min_y, max_x, max_y FROM convoys"
            " WHERE identity = ?",
            (convoy_identity(convoy),),
        ).fetchone()
        if row is None or row[0] is None:
            return None
        return BoundingBox(*row)

    # -- lifecycle ---------------------------------------------------

    def rollback(self):
        """Abandon any open explicit transaction (idempotent; safe on a
        closed store).  Covers the error paths the happy-path writers
        cannot: a :meth:`batch` abandoned without ``__exit__``, or a
        caller unwinding past a raised commit — either would otherwise
        leave the WAL transaction open, blocking every later writer
        until the connection died."""
        if self._closed:
            return
        self._in_batch = False
        if self._con.in_transaction:
            self._con.execute("ROLLBACK")

    def close(self):
        if not self._closed:
            # Never leave a WAL transaction dangling: anything still
            # open at close time is an abandoned error-path batch.
            self.rollback()
            self._closed = True
            self._con.close()

    def _check_open(self):
        if self._closed:
            raise RuntimeError(f"convoy store {self.path!r} is closed")


class _Batch:
    """One explicit transaction around many :meth:`add` calls."""

    def __init__(self, store):
        self._store = store

    def __enter__(self):
        store = self._store
        store._check_open()
        if store._in_batch:
            raise RuntimeError("convoy store batches do not nest")
        store._con.execute("BEGIN IMMEDIATE")
        store._in_batch = True
        return store

    def __exit__(self, exc_type, exc_value, traceback):
        store = self._store
        store._in_batch = False
        if exc_type is None:
            store._con.execute("COMMIT")
        else:
            store._con.execute("ROLLBACK")
        return False


def open_store(path, **kwargs):
    """Open (creating if needed) the SQLite convoy store at ``path``.

    The seam a PostgreSQL backend plugs into later: callers that accept
    a *path or store* (the miner, the CLI) funnel through here, so a
    connection-URL dispatch lands in exactly one place.
    """
    return SQLiteConvoyStore(path, **kwargs)


# Re-exported for callers that already hold a rank ordering and want to
# verify it (the differential suite does).
__all__ = [
    "DEFAULT_SEGMENT_LENGTH",
    "SCHEMA_VERSION",
    "SQLiteConvoyStore",
    "open_store",
    "rank_key",
]
