"""Persistent convoy storage with indexed time-window queries.

Mined convoys stop being an in-memory list here: a pluggable
:class:`~repro.store.base.ConvoyStore` (PostgreSQL-shaped interface,
SQLite backend first) persists every closed convoy into an
interval-indexed accelerator table and answers the questions a serving
layer needs from indexes instead of scans —

* :meth:`~repro.store.base.ConvoyStore.alive_in` — which convoys were
  alive in ``[t1, t2]`` (bounded-extent interval narrowing);
* :meth:`~repro.store.base.ConvoyStore.containing` — which convoys an
  object belongs to (membership index);
* :meth:`~repro.store.base.ConvoyStore.intersecting` — which convoys'
  bounding boxes intersect a query box;
* :meth:`~repro.store.base.ConvoyStore.top_k` — the k largest /
  longest-lived convoys, enumerated lazily by a ranked-enumeration
  heap merge over per-segment rank indexes (no materialize-then-sort).

The streaming engine writes through as it mines
(``StreamingConvoyMiner(store=...)`` → :class:`~repro.store.sink.StoreSink`:
one transaction per tick, WAL-crash-safe, idempotent on convoy identity
so a restarted stream resumes without duplicates), and the ``query``
CLI subcommand serves the stored answers back.
"""

from repro.store.base import (
    TOP_K_KEYS,
    ConvoyStore,
    convoy_identity,
    decode_object_id,
    encode_members,
    encode_object_id,
    rank_key,
)
from repro.store.sink import StoreSink
from repro.store.sqlite import (
    DEFAULT_SEGMENT_LENGTH,
    SCHEMA_VERSION,
    SQLiteConvoyStore,
    open_store,
)

__all__ = [
    "DEFAULT_SEGMENT_LENGTH",
    "SCHEMA_VERSION",
    "TOP_K_KEYS",
    "ConvoyStore",
    "StoreSink",
    "SQLiteConvoyStore",
    "convoy_identity",
    "decode_object_id",
    "encode_members",
    "encode_object_id",
    "open_store",
    "rank_key",
]
