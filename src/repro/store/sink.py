"""Write-through persistence sink for the streaming emit stage.

:class:`StoreSink` sits inside the pipeline's
:class:`~repro.streaming.pipeline.EmitStage` and persists every closed
convoy into a :class:`~repro.store.base.ConvoyStore` *as it is mined*:

* writes are **batched one transaction per tick** — the pipeline calls
  :meth:`commit` once per in-order tick, so the database always holds a
  clean tick-prefix of the stream and a killed process loses at most
  the tick in flight;
* persistence is **idempotent** — the store upserts on convoy identity,
  so a restarted stream replaying from the beginning converges on
  exactly the rows a single uninterrupted run would have written, with
  no duplicates;
* each convoy is stored with its **bounding box** over the positions
  its members actually reported during the convoy's interval, computed
  from a position log the sink maintains as snapshots flow past
  (:meth:`observe`) and prunes below the oldest live chain — the same
  retention the tracker's own window histories already impose, so the
  sink changes the engine's memory class by nothing.

The sink never alters what the pipeline emits: the differential suite
holds a mined-with-store run bit-for-bit equal to the plain in-memory
run, with the store's read-back equal to both.
"""

from __future__ import annotations

from repro.geometry.bbox import BoundingBox


class StoreSink:
    """Persist closed convoys into a store, one transaction per tick.

    Args:
        store: the :class:`~repro.store.base.ConvoyStore` to write into.
        counters: optional dict receiving ``stored_convoys`` (rows newly
            written) and ``replayed_convoys`` (identity collisions — the
            idempotent-resume path) totals.
        owns_store: close the store when the sink is closed (True when
            the engine opened the store from a path on the caller's
            behalf; False when the caller handed in a live store).
    """

    def __init__(self, store, counters=None, owns_store=False):
        self.store = store
        self.counters = counters if counters is not None else {}
        self.counters.setdefault("stored_convoys", 0)
        self.counters.setdefault("replayed_convoys", 0)
        self._owns_store = owns_store
        self._positions = {}  # t -> {object_id: (x, y)}
        self._pending = []  # convoys closed since the last commit
        self._closed = False

    def observe(self, t, snapshot):
        """Record one tick's positions (for bounding-box computation)."""
        self._positions[t] = dict(snapshot)

    def write(self, convoys):
        """Buffer closed convoys for the next :meth:`commit`."""
        self._pending.extend(convoys)

    def commit(self, oldest_live_start=None):
        """Flush the buffered convoys as one transaction.

        Args:
            oldest_live_start: earliest ``t_start`` among the tracker's
                still-live chains, or None when no chain is live.  The
                position log is pruned below it — ticks older than every
                live chain can never appear in a future closure's
                interval.
        """
        if self._pending:
            # The buffer empties only once the batch is durably in the
            # store: a commit that raises keeps its convoys pending, so
            # a later retry (or the close-time final commit) still
            # persists them instead of silently dropping the tick.
            stored = self.store.add_batch(
                self._pending,
                bboxes=[self._bbox_for(c) for c in self._pending],
            )
            self.counters["stored_convoys"] += stored
            self.counters["replayed_convoys"] += len(self._pending) - stored
            self._pending = []
        if self._positions:
            if oldest_live_start is None:
                self._positions.clear()
            else:
                for t in [t for t in self._positions
                          if t < oldest_live_start]:
                    del self._positions[t]

    def _bbox_for(self, convoy):
        """Bounding box of the convoy's members over its interval, from
        the position log (None if no logged tick covers the interval —
        a store fed through :meth:`write` alone, without observation).

        Positions are gathered into flat coordinate lists and reduced
        with C-level ``min``/``max`` — this runs once per closed convoy
        inside the mining loop, so per-point Python comparisons would
        show up directly as write-through overhead."""
        xs, ys = [], []
        positions_get = self._positions.get
        members = convoy.objects
        for t in range(convoy.t_start, convoy.t_end + 1):
            snapshot = positions_get(t)
            if not snapshot:
                continue
            snapshot_get = snapshot.get
            for object_id in members:
                position = snapshot_get(object_id)
                if position is not None:
                    xs.append(position[0])
                    ys.append(position[1])
        if not xs:
            return None
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    def close(self):
        """Commit anything still buffered, then release the store if
        this sink owns it.

        Idempotent and exception-safe: a second call is a no-op, and
        when the final commit fails (typically re-raising whatever
        already failed mid-tick) the store's open transaction is rolled
        back — never left dangling in the WAL — before the error
        propagates from this first close.  The store is released either
        way when this sink owns it.
        """
        if self._closed:
            return
        self._closed = True
        try:
            try:
                self.commit()
            except BaseException:
                # add_batch rolls its own transaction back, but a store
                # handed in mid-batch (or a non-SQLite backend) may not:
                # make the no-dangling-transaction guarantee locally.
                self.store.rollback()
                raise
        finally:
            self._positions.clear()
            self._pending = []
            if self._owns_store:
                self.store.close()
