"""The pluggable convoy-store interface and its canonical encodings.

Mined convoys used to exist only as an in-memory list: nothing survived
the process, and "which convoys were alive in ``[t1, t2]``?" was a full
scan.  A :class:`ConvoyStore` persists every closed
:class:`~repro.core.convoy.Convoy` and answers the time-window,
membership, spatial, and top-k questions a serving layer needs — from
indexes, not scans.

The interface is deliberately **PostgreSQL-shaped**: every method maps
onto plain relational operations (two tables, B-tree indexes, one
metadata map, ``INSERT ... ON CONFLICT DO NOTHING``), so a PostgreSQL
backend is a dialect port of :class:`~repro.store.sqlite.SQLiteConvoyStore`,
not a redesign.  Nothing in the contract leans on SQLite-only features.

Canonical encodings
-------------------

Object ids cross the storage boundary, and the differential proof
requires the read-back convoys to be *bit for bit* the mined ones — the
id's Python type included.  :func:`encode_object_id` therefore maps ids
through JSON (``5`` and ``"5"`` stay distinct) and rejects types JSON
cannot round-trip exactly, instead of silently stringifying them.

A convoy's *identity* — the idempotent-upsert key that makes a restarted
stream resume without duplicates — is the canonical text of everything a
:class:`~repro.core.convoy.Convoy` compares by: interval plus the sorted
encoded member ids.  Two emissions of the same convoy (a crash-replayed
prefix, a re-fed tick) collide on it and collapse to one stored row.
"""

from __future__ import annotations

import json

from repro.core.convoy import Convoy

#: Ranking dimensions ``top_k`` accepts.
TOP_K_KEYS = ("size", "duration")


def encode_object_id(object_id):
    """Encode one object id as canonical text, preserving its type.

    Only types JSON round-trips exactly are accepted (``str`` and
    ``int`` — what the CSV loader and the synthetic sources produce);
    anything else raises ``TypeError`` so a lossy stringification can
    never masquerade as persistence.
    """
    if isinstance(object_id, bool) or not isinstance(object_id, (str, int)):
        raise TypeError(
            "convoy store object ids must be str or int (JSON round-trips "
            f"them exactly), got {type(object_id).__name__}: {object_id!r}"
        )
    return json.dumps(object_id)


def decode_object_id(text):
    """Invert :func:`encode_object_id`."""
    return json.loads(text)


def encode_members(objects):
    """The member set as one canonical JSON-array text.

    Elements are the :func:`encode_object_id` encodings in sorted order,
    so the text is deterministic, unambiguous (encoded ids may themselves
    contain commas), and decodes with one ``json.loads``.
    """
    return "[" + ",".join(sorted(encode_object_id(o) for o in objects)) + "]"


def convoy_identity(convoy):
    """The convoy's canonical identity text (the idempotent-upsert key).

    Deterministic in everything :class:`~repro.core.convoy.Convoy`
    compares by: the closed interval and the member set.  Member ids are
    sorted by their *encoded* text so mixed ``str``/``int`` id sets
    still order deterministically.
    """
    return f"{convoy.t_start}:{convoy.t_end}:{encode_members(convoy.objects)}"


def rank_key(convoy, by):
    """The deterministic ``top_k`` ordering key (ascending sort).

    Primary dimension descending (``size`` ties broken by duration and
    vice versa), then the canonical interval/identity ascending — the
    exact order every backend's ``top_k`` must stream in, so ranked
    enumeration is comparable across backends and against an in-memory
    sort in the differential suite.
    """
    if by not in TOP_K_KEYS:
        raise ValueError(f"top_k ranks by one of {TOP_K_KEYS}, got {by!r}")
    if by == "size":
        primary = (-convoy.size, -convoy.lifetime)
    else:
        primary = (-convoy.lifetime, -convoy.size)
    return primary + (convoy.t_start, convoy.t_end, convoy_identity(convoy))


class ConvoyStore:
    """Abstract persistent store of mined convoys.

    Writing:

    * :meth:`add` — persist one convoy (idempotent on its identity);
    * :meth:`add_batch` — persist many in one transaction (the
      write-through sink calls this once per tick, so a crash leaves a
      clean tick-prefix of the stream);

    Reading (all from indexes, never a scan):

    * :meth:`alive_in` — convoys whose closed interval intersects
      ``[t1, t2]``;
    * :meth:`containing` — convoys a given object is a member of;
    * :meth:`intersecting` — convoys whose bounding box intersects a
      query :class:`~repro.geometry.bbox.BoundingBox`;
    * :meth:`top_k` — lazily enumerate the k highest-ranked convoys by
      size or duration (ranked-enumeration heap merge: results stream
      without materializing the full sort);
    * :meth:`all_convoys`, :meth:`count` — whole-store views for
      verification and monitoring.

    List-returning queries yield :class:`~repro.core.convoy.Convoy` in
    the canonical ``(t_start, t_end, identity)`` order; ``top_k`` yields
    in :func:`rank_key` order.
    """

    def add(self, convoy, bbox=None):
        """Persist one convoy; return True if newly stored, False if its
        identity was already present (the idempotent replay path)."""
        raise NotImplementedError

    def add_batch(self, convoys, bboxes=None):
        """Persist many convoys in one transaction; return the number
        newly stored.  ``bboxes``, when given, is a parallel iterable of
        per-convoy :class:`~repro.geometry.bbox.BoundingBox` (or None)."""
        raise NotImplementedError

    def alive_in(self, t1, t2):
        """Convoys whose interval intersects the closed ``[t1, t2]``."""
        raise NotImplementedError

    def containing(self, object_id):
        """Convoys that ``object_id`` is a member of."""
        raise NotImplementedError

    def intersecting(self, bbox):
        """Convoys whose stored bounding box intersects ``bbox``
        (convoys stored without a box never match)."""
        raise NotImplementedError

    def top_k(self, by="size", k=None, alive=None):
        """Lazily yield the top-``k`` convoys by ``by`` (``k=None``
        enumerates all), optionally restricted to those alive in the
        closed window ``alive=(t1, t2)``."""
        raise NotImplementedError

    def all_convoys(self):
        """Every stored convoy, in canonical order."""
        raise NotImplementedError

    def count(self):
        """Number of stored convoys (O(1)-ish; for monitoring)."""
        raise NotImplementedError

    def bbox_of(self, convoy):
        """The stored bounding box of ``convoy`` (None when it was
        stored without one, or is not stored at all)."""
        raise NotImplementedError

    def rollback(self):
        """Abandon any open explicit transaction (idempotent; a no-op
        when nothing is open or the store is closed).  The error-path
        escape hatch: a failed mid-tick commit must never leave the
        backend's transaction dangling.  Backends without explicit
        transactions may keep the default no-op."""
        return None

    def close(self):
        """Release the backend's resources (idempotent), rolling back
        any transaction still open."""
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False


def row_to_convoy(t_start, t_end, members_json):
    """Rebuild a :class:`~repro.core.convoy.Convoy` from stored fields.

    ``members_json`` is the JSON-array text of :func:`encode_members` —
    backends store it alongside the per-member index rows so read-back
    needs no join.
    """
    return Convoy(json.loads(members_json), t_start, t_end)
