"""Snapshot sources for the streaming engine.

Every source is an iterator of ``(t, {object_id: (x, y)})`` ticks in
strictly increasing time order — the only contract
:class:`~repro.streaming.engine.StreamingConvoyMiner.feed` requires.  Three
adapters cover the workloads:

* :func:`replay_database` — replay a materialized
  :class:`~repro.trajectory.TrajectoryDatabase` tick by tick, with virtual
  (interpolated) points exactly as CMC's ``O_t`` requires; this is the
  bridge the offline-vs-streaming equivalence tests are stated over.
* :func:`replay_csv` — the same, straight from an ``object_id,t,x,y`` CSV.
* :func:`synthetic_stream` — a seeded generator producing snapshots on the
  fly in O(objects) memory, with planted co-travelling groups; this is how
  the throughput bench feeds million-point streams without materializing a
  database.
* :func:`churn_stream` — a seeded generator with a *controllable churn
  rate*: only a chosen fraction of objects moves (or arrives/departs) per
  tick, the rest stand perfectly still.  This is the GPS-fleet regime the
  incremental clusterer targets, and the workload knob of
  ``benchmarks/bench_incremental_clustering.py``.
* :func:`hotspot_drift_stream` (and its cluster-labelled twin
  :func:`hotspot_drift_scenario`) — a seeded generator where most objects
  ride in rigid packs around hotspot centers that *drift* across the
  world, bouncing off its walls.  Every pack is a persistent dense
  cluster with a large, stable membership — the dense-candidate regime
  of ``benchmarks/bench_match_kernel.py`` and the first slice of the
  million-object scenario harness (ROADMAP item 5).

Both generators additionally accept ``jitter=``: a seeded bounded shuffle
(:func:`jitter_ticks`) that emits the same ticks realistically out of
order — every tick lags the emitted maximum by strictly less than
``jitter`` time units — which is exactly the disorder a
:class:`~repro.streaming.reorder.ReorderBuffer` with
``allowed_lateness >= jitter`` restores losslessly.
"""

from __future__ import annotations

import math
import random

from repro.io.csv_io import load_trajectories_csv


def replay_database(database, time_range=None):
    """Yield ``(t, snapshot)`` for every time point of a database's domain.

    Snapshots contain every object whose trajectory interval covers ``t``,
    interpolating a virtual point where no real sample exists (Section 4's
    ``O_t``).  Time points where *no* object is alive yield an empty
    snapshot rather than being skipped, so replaying into the engine is
    step-for-step identical to the offline sweep.

    Args:
        database: the :class:`~repro.trajectory.TrajectoryDatabase`.
        time_range: optional ``(t_lo, t_hi)`` restriction; defaults to the
            database's full time domain.

    Yields:
        ``(t, {object_id: (x, y)})`` tuples in increasing ``t`` order.
    """
    if len(database) == 0:
        return
    if time_range is None:
        t_lo, t_hi = database.min_time, database.max_time
    else:
        t_lo, t_hi = time_range
        if t_hi < t_lo:
            raise ValueError(f"time_range reversed: [{t_lo}, {t_hi}]")
    # Same sorted-activation sweep as the offline driver: each tick only
    # touches trajectories whose interval can cover it.
    trajectories = sorted(database, key=lambda tr: tr.start_time)
    active = []
    next_idx = 0
    for t in range(t_lo, t_hi + 1):
        while (next_idx < len(trajectories)
               and trajectories[next_idx].start_time <= t):
            active.append(trajectories[next_idx])
            next_idx += 1
        if active:
            active = [tr for tr in active if tr.end_time >= t]
        yield t, {tr.object_id: tr.location_at(t) for tr in active}


def replay_csv(path, time_range=None):
    """Replay an ``object_id,t,x,y`` CSV file as a snapshot stream.

    Loads the file through :func:`repro.io.csv_io.load_trajectories_csv`
    (so malformed rows fail loudly up front) and delegates to
    :func:`replay_database`.
    """
    yield from replay_database(load_trajectories_csv(path), time_range)


def jitter_ticks(ticks, jitter, seed=0):
    """Shuffle a tick stream within a bounded event-time displacement.

    Emits exactly the ticks of ``ticks`` (same ``(t, snapshot)`` pairs),
    but out of order: each arrival is held in a small pool from which a
    random element is emitted, except that a pending tick is force-emitted
    (oldest first) before any tick ``jitter`` or more time units newer
    enters the pool.  The guarantee that makes the shuffle *recoverable*:
    when a tick at time ``u`` is emitted, every previously emitted tick's
    time is below ``u + jitter`` — so lateness relative to the emitted
    maximum stays strictly below ``jitter``, and a
    :class:`~repro.streaming.reorder.ReorderBuffer` with
    ``allowed_lateness >= jitter`` restores the original order with no
    late arrivals.  ``jitter=0`` yields the stream unchanged.

    The shuffle is a pure function of ``(ticks, jitter, seed)``; its RNG
    is independent of the RNG that generated the ticks themselves, so
    ``synthetic_stream(..., jitter=j)`` emits exactly the snapshots of
    the unjittered stream, permuted.

    Args:
        ticks: iterable of ``(t, snapshot)`` in increasing time order.
        jitter: maximum displacement in time units (``>= 0``).
        seed: RNG seed for the shuffle.

    Yields:
        The same ``(t, snapshot)`` ticks, reordered within the bound.
    """
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    if jitter == 0:
        yield from ticks
        return
    rng = random.Random(seed)
    pending = []  # (t, snapshot); event-time spread stays below `jitter`
    for t, snapshot in ticks:
        # Anything `jitter` or more behind the new arrival leaves first
        # (oldest first), so nothing newer is ever emitted ahead of it;
        # the pool's time spread therefore stays strictly below `jitter`.
        pending.sort(key=lambda entry: entry[0])
        while pending and t - pending[0][0] >= jitter:
            yield pending.pop(0)
        pending.append((t, snapshot))
        # A coin-flip run of random emissions keeps the pool small while
        # leaving the emission order genuinely shuffled.
        while len(pending) > 1 and rng.random() < 0.5:
            yield pending.pop(rng.randrange(len(pending)))
    # The tail's spread is below `jitter` too, so a fully random drain
    # still respects the lateness bound.
    while pending:
        yield pending.pop(rng.randrange(len(pending)))


class _Walker:
    """Incremental random-waypoint state: one position, one target."""

    __slots__ = ("x", "y", "tx", "ty")

    def __init__(self, rng, area):
        self.x = rng.uniform(0.0, area)
        self.y = rng.uniform(0.0, area)
        self.tx = rng.uniform(0.0, area)
        self.ty = rng.uniform(0.0, area)

    def step(self, rng, area, speed):
        """Advance one tick toward the target, re-rolling it on arrival."""
        dx = self.tx - self.x
        dy = self.ty - self.y
        dist = math.hypot(dx, dy)
        if dist < speed:
            self.tx = rng.uniform(0.0, area)
            self.ty = rng.uniform(0.0, area)
            dx = self.tx - self.x
            dy = self.ty - self.y
            dist = math.hypot(dx, dy) or 1.0
        scale = min(speed, dist) / dist
        self.x = min(max(self.x + dx * scale, 0.0), area)
        self.y = min(max(self.y + dy * scale, 0.0), area)


def synthetic_stream(n_objects, n_snapshots, seed=0, *, eps=10.0,
                     group_count=4, group_size=5, area=None, speed=None,
                     t_start=0, jitter=0, jitter_seed=None):
    """Generate a seeded snapshot stream with planted co-travelling groups.

    The first ``group_count * group_size`` objects are partitioned into
    groups; each group follows its own random-waypoint leader with fixed
    member offsets inside ``eps / 4``, so every group is density-connected
    at every tick (a convoy for any ``m <= group_size``, living the whole
    stream).  Remaining objects walk independently.  State is advanced
    incrementally, so memory is O(n_objects) regardless of stream length —
    ``n_objects * n_snapshots`` points can exceed RAM-sized databases.

    The stream is a pure function of its arguments: the same seed yields
    identical snapshots across runs (the determinism tests guard this).

    Args:
        n_objects: objects per snapshot.
        n_snapshots: number of ticks to yield.
        seed: RNG seed.
        eps: the distance threshold the planted groups are tuned for.
        group_count, group_size: planted-group layout; clipped so the
            groups never exceed ``n_objects``.
        area: world side length (default ``40 * eps``).
        speed: movement per tick (default ``eps / 2``).
        t_start: time of the first snapshot.
        jitter: emit the ticks out of order through :func:`jitter_ticks`
            with this displacement bound (0, the default, keeps strict
            time order; the snapshots themselves are identical either
            way).
        jitter_seed: seed of the shuffle RNG (defaults to ``seed``; kept
            separate so the same trajectory data can be replayed under
            many different arrival orders).

    Yields:
        ``(t, {object_id: (x, y)})`` with ids ``"o0" .. "o{n-1}"``.
    """
    if n_objects < 1:
        raise ValueError(f"n_objects must be >= 1, got {n_objects}")
    if n_snapshots < 1:
        raise ValueError(f"n_snapshots must be >= 1, got {n_snapshots}")
    if group_count < 0:
        raise ValueError(f"group_count must be >= 0, got {group_count}")
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if jitter:
        yield from jitter_ticks(
            synthetic_stream(
                n_objects, n_snapshots, seed, eps=eps,
                group_count=group_count, group_size=group_size, area=area,
                speed=speed, t_start=t_start,
            ),
            jitter,
            seed=jitter_seed if jitter_seed is not None else seed,
        )
        return
    rng = random.Random(seed)
    if area is None:
        area = 40.0 * eps
    if speed is None:
        speed = eps / 2.0
    while group_count > 0 and group_count * group_size > n_objects:
        group_count -= 1
    leaders = [_Walker(rng, area) for _ in range(group_count)]
    offsets = []  # parallel to the first group_count * group_size objects
    tight = eps / 4.0
    for group in range(group_count):
        spacing = 2.0 * math.pi / group_size
        base_angle = rng.uniform(0.0, 2.0 * math.pi)
        for slot in range(group_size):
            angle = base_angle + slot * spacing
            radius = rng.uniform(0.5, 1.0) * tight
            offsets.append((radius * math.cos(angle),
                            radius * math.sin(angle)))
    grouped = group_count * group_size
    loners = [_Walker(rng, area) for _ in range(n_objects - grouped)]
    ids = [f"o{i}" for i in range(n_objects)]
    for tick in range(n_snapshots):
        if tick:
            for walker in leaders:
                walker.step(rng, area, speed)
            for walker in loners:
                walker.step(rng, area, speed)
        snapshot = {}
        for i in range(grouped):
            leader = leaders[i // group_size]
            ox, oy = offsets[i]
            snapshot[ids[i]] = (leader.x + ox, leader.y + oy)
        for i, walker in enumerate(loners):
            snapshot[ids[grouped + i]] = (walker.x, walker.y)
        yield t_start + tick, snapshot


def hotspot_drift_scenario(n_objects, n_snapshots, seed=0, *, eps=10.0,
                           hotspots=8, background=0.2, drift=None,
                           area=None, t_start=0):
    """Generate a hotspot-drift stream *with* its planted cluster labels.

    Most objects ride in rigid packs: each pack's members sit at fixed
    offsets within ``eps / 4`` of a hotspot center, so the pack is
    density-connected at every tick, and the center drifts with a
    constant-speed velocity that reflects off the world's walls.  The
    remaining ``background`` fraction are independent random-waypoint
    walkers.  Pack membership never changes, which is what makes this the
    dense-candidate regime: every tick joins the same large candidate
    sets against the same large clusters, so the per-pair intersection
    cost — not clustering or churn bookkeeping — dominates.

    This is the first slice of the million-object scenario harness
    (ROADMAP item 5): state is advanced incrementally in O(n_objects)
    memory, and the stream is a pure function of its arguments.  The
    labelled form exists so benches can replay the planted packs as the
    per-tick clustering and measure the candidate-match kernels alone;
    :func:`hotspot_drift_stream` yields the plain ``(t, snapshot)`` view.

    Args:
        n_objects: objects per snapshot.
        n_snapshots: number of ticks to yield.
        seed: RNG seed.
        eps: the distance threshold the packs are tuned for (pack radius
            ``eps / 4``, so any two members sit within ``eps``).
        hotspots: number of drifting pack centers (``>= 1``).
        background: fraction of objects walking independently, in
            ``[0, 1]``; the rest split round-robin across the packs.
        drift: center speed per tick (default ``eps / 4``).
        area: world side length (default ``40 * eps``).
        t_start: time of the first snapshot.

    Yields:
        ``(t, {object_id: (x, y)}, groups)`` with ids ``"h0" ...`` and
        ``groups`` a tuple of frozensets — the non-empty packs, fixed for
        the whole stream (background walkers belong to no group).
    """
    if n_objects < 1:
        raise ValueError(f"n_objects must be >= 1, got {n_objects}")
    if n_snapshots < 1:
        raise ValueError(f"n_snapshots must be >= 1, got {n_snapshots}")
    if int(hotspots) < 1:
        raise ValueError(f"hotspots must be >= 1, got {hotspots}")
    if not 0.0 <= background <= 1.0:
        raise ValueError(f"background must be in [0, 1], got {background}")
    rng = random.Random(seed)
    hotspots = int(hotspots)
    if area is None:
        area = 40.0 * eps
    if drift is None:
        drift = eps / 4.0
    packed = n_objects - round(background * n_objects)
    ids = [f"h{i}" for i in range(n_objects)]
    # Centers spawn away from the walls so a tight pack never starts
    # clipped; velocities reflect off the walls, so they stay legal.
    margin = min(eps, area / 2.0)
    centers = []  # [x, y, vx, vy] per hotspot
    for _ in range(hotspots):
        angle = rng.uniform(0.0, 2.0 * math.pi)
        centers.append([
            rng.uniform(margin, area - margin),
            rng.uniform(margin, area - margin),
            drift * math.cos(angle),
            drift * math.sin(angle),
        ])
    tight = eps / 4.0
    offsets = []  # parallel to ids[:packed]
    members = [[] for _ in range(hotspots)]
    for i in range(packed):
        angle = rng.uniform(0.0, 2.0 * math.pi)
        radius = math.sqrt(rng.random()) * tight
        offsets.append((radius * math.cos(angle),
                        radius * math.sin(angle)))
        members[i % hotspots].append(ids[i])
    groups = tuple(frozenset(pack) for pack in members if pack)
    walkers = [_Walker(rng, area) for _ in range(n_objects - packed)]
    for tick in range(n_snapshots):
        if tick:
            for center in centers:
                for axis in (0, 1):
                    center[axis] += center[axis + 2]
                    # Reflect drift off the walls: fold the overshoot
                    # back inside and reverse that axis's velocity.
                    if center[axis] < 0.0:
                        center[axis] = -center[axis]
                        center[axis + 2] = -center[axis + 2]
                    elif center[axis] > area:
                        center[axis] = 2.0 * area - center[axis]
                        center[axis + 2] = -center[axis + 2]
            for walker in walkers:
                walker.step(rng, area, drift)
        snapshot = {}
        for i in range(packed):
            center = centers[i % hotspots]
            ox, oy = offsets[i]
            snapshot[ids[i]] = (center[0] + ox, center[1] + oy)
        for i, walker in enumerate(walkers):
            snapshot[ids[packed + i]] = (walker.x, walker.y)
        yield t_start + tick, snapshot, groups


def hotspot_drift_stream(n_objects, n_snapshots, seed=0, *, eps=10.0,
                         hotspots=8, background=0.2, drift=None, area=None,
                         t_start=0, jitter=0, jitter_seed=None):
    """Generate a seeded hotspot-drift snapshot stream.

    The plain ``(t, snapshot)`` view of :func:`hotspot_drift_scenario`
    (see there for the workload's shape and arguments); additionally
    accepts ``jitter`` / ``jitter_seed`` to emit the same ticks out of
    order through :func:`jitter_ticks`, exactly like the other
    generators here.

    Yields:
        ``(t, {object_id: (x, y)})`` with ids ``"h0" .. "h{n-1}"``.
    """
    if jitter:
        yield from jitter_ticks(
            hotspot_drift_stream(
                n_objects, n_snapshots, seed, eps=eps, hotspots=hotspots,
                background=background, drift=drift, area=area,
                t_start=t_start,
            ),
            jitter,
            seed=jitter_seed if jitter_seed is not None else seed,
        )
        return
    for t, snapshot, _groups in hotspot_drift_scenario(
            n_objects, n_snapshots, seed, eps=eps, hotspots=hotspots,
            background=background, drift=drift, area=area, t_start=t_start):
        yield t, snapshot


def churn_stream(n_objects, n_snapshots, seed=0, *, eps=10.0, churn=0.1,
                 turnover=0.0, area=None, max_hop=None, t_start=0,
                 jitter=0, jitter_seed=None, hotspots=None):
    """Generate a seeded snapshot stream with a controllable churn rate.

    Unlike :func:`synthetic_stream` (where *every* object advances every
    tick), this source moves only ``round(churn * n)`` objects per tick —
    each by a hop of at least ``eps / 2`` — and leaves the rest exactly in
    place, optionally retiring a ``turnover`` fraction of objects in favour
    of fresh ids.  That is the mostly-parked fleet regime where cross-tick
    incremental clustering pays off; the equivalence and benchmark suites
    sweep ``churn`` to chart the crossover against the full pass.

    The stream is a pure function of its arguments: the same seed yields
    identical snapshots across runs.  Snapshot dicts are freshly built each
    tick with stable relative key order (new ids append at the end).

    Args:
        n_objects: objects per snapshot (held constant; each departure is
            matched by an arrival).
        n_snapshots: number of ticks to yield.
        seed: RNG seed.
        churn: fraction of objects that moves per tick, in [0, 1].
        turnover: fraction of objects replaced (one id out, a fresh id in)
            per tick, in [0, 1].
        eps: distance scale; hops are drawn from ``[eps / 2, max_hop]``.
        area: world side length (default ``40 * eps``).
        max_hop: largest per-tick hop (default ``3 * eps``).
        t_start: time of the first snapshot.
        jitter: emit the ticks out of order through :func:`jitter_ticks`
            with this displacement bound (0, the default, keeps strict
            time order; the snapshots themselves are identical either
            way).
        jitter_seed: seed of the shuffle RNG (defaults to ``seed``).
        hotspots: optional skew knob (int ``>= 1``): confine *all*
            movement to a fixed seeded **hot pool** of
            ``min(n, max(1, round(2 * churn * n)))`` objects, placed at
            tick 0 in tight packs (radius ``2 * eps``) around
            ``hotspots`` seeded centers.  Per tick the usual
            ``round(churn * n)`` movers are sampled from the hot pool
            only (capped at its size), so roughly the same objects —
            and therefore the same few clusters — churn every tick
            while the rest of the world stands perfectly still.  This
            is the unbalanced-load regime for the sharded tracker: the
            dirty candidates concentrate on the hot clusters' shards.
            Deterministic for fixed arguments like everything else
            here; ``turnover`` may retire hot ids (replacements are
            cold), thinning the pool over time.  ``None`` (default)
            keeps the uniform mover sampling.

    Yields:
        ``(t, {object_id: (x, y)})`` with ids ``"c0", "c1", ...``.
    """
    if n_objects < 1:
        raise ValueError(f"n_objects must be >= 1, got {n_objects}")
    if n_snapshots < 1:
        raise ValueError(f"n_snapshots must be >= 1, got {n_snapshots}")
    if not 0.0 <= churn <= 1.0:
        raise ValueError(f"churn must be in [0, 1], got {churn}")
    if not 0.0 <= turnover <= 1.0:
        raise ValueError(f"turnover must be in [0, 1], got {turnover}")
    if hotspots is not None and int(hotspots) < 1:
        raise ValueError(f"hotspots must be >= 1, got {hotspots}")
    if jitter:
        yield from jitter_ticks(
            churn_stream(
                n_objects, n_snapshots, seed, eps=eps, churn=churn,
                turnover=turnover, area=area, max_hop=max_hop,
                t_start=t_start, hotspots=hotspots,
            ),
            jitter,
            seed=jitter_seed if jitter_seed is not None else seed,
        )
        return
    rng = random.Random(seed)
    if area is None:
        area = 40.0 * eps
    if max_hop is None:
        max_hop = 3.0 * eps
    if max_hop < eps / 2.0:
        raise ValueError(f"max_hop must be >= eps/2, got {max_hop}")
    if area < 2.0 * max_hop:
        # Any smaller and hops could not reliably stay inside the world
        # (the re-draw loop below would exhaust and overshoot the bounds).
        raise ValueError(
            f"area must be >= 2 * max_hop = {2.0 * max_hop:g}, got {area}"
        )
    positions = {
        f"c{i}": (rng.uniform(0.0, area), rng.uniform(0.0, area))
        for i in range(n_objects)
    }
    hot_pool = None
    if hotspots is not None:
        hotspots = int(hotspots)
        # The hot pool is twice the per-tick mover count, so the same
        # objects churn nearly every tick; packing the pool around the
        # hotspot centers puts that churn into a handful of clusters.
        pool_size = min(n_objects, max(1, round(2 * churn * n_objects)))
        margin = min(max_hop, area / 2.0)
        centers = [
            (rng.uniform(margin, area - margin),
             rng.uniform(margin, area - margin))
            for _ in range(hotspots)
        ]
        pack = 2.0 * eps
        hot_ids = [f"c{i}" for i in range(pool_size)]
        for slot, o in enumerate(hot_ids):
            cx, cy = centers[slot % hotspots]
            positions[o] = (
                min(max(cx + rng.uniform(-pack, pack), 0.0), area),
                min(max(cy + rng.uniform(-pack, pack), 0.0), area),
            )
        hot_pool = frozenset(hot_ids)
    next_id = n_objects
    for tick in range(n_snapshots):
        if tick:
            ids = list(positions)
            if hot_pool is None:
                movers = rng.sample(ids, round(churn * len(ids)))
            else:
                alive_hot = [o for o in ids if o in hot_pool]
                movers = rng.sample(
                    alive_hot,
                    min(round(churn * len(ids)), len(alive_hot)),
                )
            for o in movers:
                x, y = positions[o]
                # Re-draw the direction until the hop lands inside the
                # world — clamping instead would shorten boundary hops
                # below the promised eps/2 (possibly to zero).
                for _attempt in range(64):
                    angle = rng.uniform(0.0, 2.0 * math.pi)
                    hop = rng.uniform(eps / 2.0, max_hop)
                    nx = x + hop * math.cos(angle)
                    ny = y + hop * math.sin(angle)
                    if 0.0 <= nx <= area and 0.0 <= ny <= area:
                        break
                else:
                    # Vanishingly unlikely (even a corner point keeps a
                    # quarter of all directions in bounds); head for the
                    # centre, which is always a legal full-length hop.
                    angle = math.atan2(area / 2.0 - y, area / 2.0 - x)
                    hop = rng.uniform(eps / 2.0, max_hop)
                    nx = x + hop * math.cos(angle)
                    ny = y + hop * math.sin(angle)
                positions[o] = (nx, ny)
            for o in rng.sample(ids, round(turnover * len(ids))):
                del positions[o]
                positions[f"c{next_id}"] = (
                    rng.uniform(0.0, area), rng.uniform(0.0, area)
                )
                next_id += 1
        yield t_start + tick, dict(positions)
