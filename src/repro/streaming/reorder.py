"""Watermarked reorder buffer: out-of-order snapshot tolerance for `feed`.

Algorithm 1 — and therefore
:meth:`repro.streaming.engine.StreamingConvoyMiner.feed` — consumes
snapshots in strictly increasing time order; a violation raises a
documented ValueError.  Real GPS feeds are not so polite: fixes traverse
independent network paths, devices buffer while offline, and collectors
multiplex several uplinks, so ticks arrive shuffled within some bounded
skew and occasionally split (two partial reports for the same timestamp).

:class:`ReorderBuffer` restores the contract in front of the engine with
the classic watermark construction from stream processing: pending
``(time, snapshot)`` entries wait in a min-heap, and the *watermark* —
the largest timestamp seen so far minus ``allowed_lateness`` — is the
point in event time the stream promises never to revisit.  A snapshot is
released to the consumer exactly when the watermark reaches it, so any
snapshot whose timestamp lags the head of the feed by at most
``allowed_lateness`` slots into place and the released sequence is
strictly increasing.  The buffered latency is bounded by construction
(``allowed_lateness`` time units, and optionally ``max_pending``
snapshots of memory), which is the delay-conscious trade the paper's
streaming reading needs: buffer just enough to restore order, emit as
soon as the watermark permits.

Duplicate timestamps *merge*: a second push for a still-pending time
updates the pending snapshot dict in place (later fixes win per object),
so split reports reassemble before release.  Arrivals at or below the
last released timestamp are *late* beyond the watermark's promise; the
``late_policy`` decides:

* ``"raise"`` (default) — fail loudly, naming the timestamp, the last
  release, and the watermark.  The strict contract, now with slack.
* ``"drop"`` — count the snapshot in ``late_dropped`` and discard it.
  The in-order equivalence guarantee then covers exactly the non-late
  part of the feed.
* ``"amend"`` — within the lateness horizon (the late timestamp is less
  than ``allowed_lateness`` behind the last release), fold the stale
  fixes into the *earliest still-pending* snapshot for every object that
  has no fresher reading there (counted in ``late_amended``); beyond the
  horizon, drop and count.  This trades exactness for completeness —
  objects whose only report ran late still appear instead of vanishing
  for a tick — so it deliberately breaks bit-for-bit equivalence with
  the in-order run; the differential suite pins the exact policies
  (``raise``/``drop``) and the unit tests pin this one.

The buffer is engine-agnostic (it yields ticks; it never imports the
miner).  :meth:`ReorderBuffer.push` returns the ticks the arrival
released, :meth:`ReorderBuffer.drain` flushes the tail at end of stream,
and :func:`reorder_ticks` wraps any ``(t, snapshot)`` iterable into an
in-order one.  :class:`~repro.streaming.engine.StreamingConvoyMiner`
accepts a buffer (or its kwargs) via ``reorder=`` and routes ``feed`` /
``flush`` through it, sharing its counters dict so ingestion and
reordering report in one place.

Sharded ingestion merges through a :class:`WatermarkFrontier`: one
ReorderBuffer per input partition (uplink, region, ingestion shard),
each restoring local order under its own watermark, plus a global merge
that emits a timestamp only once *every* partition's released sequence
has passed it — the minimum of the per-shard frontiers is the global
emission frontier, so the merged output is strictly increasing and any
within-lateness disorder inside a partition keeps the same guarantees
globally.
"""

from __future__ import annotations

import heapq
import math

#: Late-arrival policies accepted by :class:`ReorderBuffer`.
LATE_POLICIES = ("raise", "drop", "amend")

#: Counter keys a buffer maintains in its ``counters`` dict.
COUNTER_KEYS = (
    "reordered_snapshots",
    "merged_snapshots",
    "late_dropped",
    "late_amended",
    "peak_pending",
)


class ReorderBuffer:
    """Bounded reordering of ``(t, snapshot)`` ticks behind a watermark.

    Args:
        allowed_lateness: watermark slack in time units (``>= 0``).  A
            pending snapshot at time ``t`` is released once a snapshot at
            time ``>= t + allowed_lateness`` has been seen, so any
            arrival lagging the feed's head by at most this much is
            reordered into place.  ``0`` passes an in-order feed straight
            through (and releases an out-of-order arrival immediately,
            which makes any *second* report for that time late).  May be
            None when ``max_pending`` is given: the watermark then never
            advances and only capacity pressure or :meth:`drain` release.
        max_pending: optional cap on buffered snapshots.  When an arrival
            would leave more than this many pending, the oldest pending
            snapshots are force-released (oldest first) regardless of the
            watermark — bounding memory at the price of declaring their
            timestamps closed early.
        late_policy: what to do with arrivals at or below the last
            released timestamp — ``"raise"``, ``"drop"``, or ``"amend"``
            (see the module docstring).
        counters: optional dict receiving bookkeeping totals (the
            ``COUNTER_KEYS``); a fresh dict is created when omitted and
            is always available as :attr:`counters`.
    """

    def __init__(self, allowed_lateness=None, max_pending=None,
                 late_policy="raise", counters=None):
        if allowed_lateness is None and max_pending is None:
            raise ValueError(
                "a ReorderBuffer needs at least one release trigger: "
                "allowed_lateness and/or max_pending"
            )
        if allowed_lateness is not None:
            allowed_lateness = int(allowed_lateness)
            if allowed_lateness < 0:
                raise ValueError(
                    f"allowed_lateness must be >= 0, got {allowed_lateness}"
                )
        if max_pending is not None:
            max_pending = int(max_pending)
            if max_pending < 1:
                raise ValueError(
                    f"max_pending must be >= 1, got {max_pending}"
                )
        if late_policy not in LATE_POLICIES:
            raise ValueError(
                f"late_policy must be one of {LATE_POLICIES}, "
                f"got {late_policy!r}"
            )
        if late_policy == "amend" and allowed_lateness is None:
            # The amend horizon is defined in terms of allowed_lateness; a
            # capacity-only buffer would silently degrade every amend to a
            # drop, so refuse the combination outright.
            raise ValueError(
                "late_policy='amend' requires allowed_lateness (the amend "
                "horizon); with max_pending only, use 'drop' or 'raise'"
            )
        self._lateness = allowed_lateness
        self._max_pending = max_pending
        self._late_policy = late_policy
        self.counters = counters if counters is not None else {}
        for key in COUNTER_KEYS:
            self.counters.setdefault(key, 0)
        self._pending = {}   # t -> snapshot dict (mutable until released)
        self._heap = []      # min-heap over pending times
        self._max_seen = None
        self._last_released = None

    def __len__(self):
        """Number of snapshots currently buffered."""
        return len(self._pending)

    @property
    def last_released(self):
        """Timestamp of the most recently released snapshot (or None)."""
        return self._last_released

    @property
    def watermark(self):
        """The event-time frontier ``max_seen - allowed_lateness``: every
        pending snapshot at or below it has been released, and new
        arrivals are expected to land strictly above it (``-inf`` before
        the first push or when no lateness bound was configured)."""
        if self._max_seen is None or self._lateness is None:
            return -math.inf
        return self._max_seen - self._lateness

    def push(self, t, snapshot):
        """Accept one arrival; return the ticks it released, in order.

        Args:
            t: the arrival's integer timestamp (any order, subject to the
                late policy).
            snapshot: mapping ``{object_id: (x, y)}``.  Merged into the
                pending snapshot when ``t`` is already buffered.

        Returns:
            List of ``(t, snapshot)`` ticks now past the watermark (or
            squeezed out by ``max_pending``), in strictly increasing time
            order — possibly empty.
        """
        t = int(t)
        if self._last_released is not None and t <= self._last_released:
            return self._handle_late(t, snapshot)
        if t in self._pending:
            # Split report: later fixes win per object, the union rides.
            self._pending[t].update(snapshot)
            self.counters["merged_snapshots"] += 1
        else:
            self._pending[t] = dict(snapshot)
            heapq.heappush(self._heap, t)
            if self._max_seen is not None and t < self._max_seen:
                self.counters["reordered_snapshots"] += 1
        if self._max_seen is None or t > self._max_seen:
            self._max_seen = t
        if len(self._pending) > self.counters["peak_pending"]:
            self.counters["peak_pending"] = len(self._pending)
        return self._release()

    def drain(self):
        """End of stream: release every pending snapshot, in time order."""
        return self.release_all()

    def release_all(self):
        """Release every pending snapshot *now*, in time order.

        The idle-drain seam: a capacity-only buffer (``max_pending``
        without ``allowed_lateness``) has no watermark, so only arrival
        pressure forces releases — on a quiescent feed its last
        ``< max_pending`` snapshots would sit buffered forever.  A
        caller that knows the feed has gone idle (the multi-tenant
        service's dispatcher, a session-timeout sweep) calls this to
        push the tail through; the buffer stays usable afterwards, with
        the released timestamps now closed — a later arrival at or
        below them falls to the ``late_policy`` like any other late
        snapshot.  :meth:`drain` is exactly this release at end of
        stream.
        """
        released = []
        while self._heap:
            released.append(self._pop())
        return released

    # -- internals ---------------------------------------------------------

    def _handle_late(self, t, snapshot):
        if self._late_policy == "raise":
            raise ValueError(
                f"late snapshot beyond the watermark: t={t} arrived after "
                f"t={self._last_released} was already released "
                f"(watermark {self.watermark}, allowed_lateness="
                f"{self._lateness}); use late_policy='drop' (or 'amend', "
                f"with allowed_lateness set) to tolerate it"
            )
        if (
            self._late_policy == "amend"
            and self._lateness is not None
            and self._last_released - t < self._lateness
            and self._heap
        ):
            # Fold the stale fixes into the earliest pending snapshot,
            # never overriding a fresher reading for the same object.
            target = self._pending[self._heap[0]]
            for obj, xy in snapshot.items():
                target.setdefault(obj, xy)
            self.counters["late_amended"] += 1
        else:
            self.counters["late_dropped"] += 1
        return []

    def _release(self):
        released = []
        if self._lateness is not None:
            horizon = self._max_seen - self._lateness
            while self._heap and self._heap[0] <= horizon:
                released.append(self._pop())
        if self._max_pending is not None:
            while len(self._pending) > self._max_pending:
                released.append(self._pop())
        return released

    def _pop(self):
        t = heapq.heappop(self._heap)
        self._last_released = t
        return t, self._pending.pop(t)


class WatermarkFrontier:
    """Merge per-shard :class:`ReorderBuffer`\\ s into one global release.

    Each of ``shards`` input partitions pushes its arrivals into its own
    watermarked buffer; buffer releases are *staged* rather than emitted,
    and a staged timestamp leaves the frontier only when the **global
    emission frontier** — the minimum over all shards of the last
    timestamp that shard released — has reached it.  Because every
    buffer's released sequence is strictly increasing and arrivals at or
    below a shard's last release fall to its late policy, no shard can
    ever release a timestamp at or below the frontier again: the merged
    output is strictly increasing, complete (same-timestamp pieces from
    different shards are merged into one snapshot before emission), and
    each shard independently keeps the single-buffer lateness guarantee.

    The construction is the classic minimum-watermark merge of stream
    processors, with the same caveat: an *idle* shard (no pushes yet)
    pins the frontier at minus infinity, holding every other shard's
    releases staged until it speaks or :meth:`drain` runs — feed
    heartbeats (empty snapshots) through quiet shards to keep the
    frontier moving.

    Args:
        shards: number of input partitions (``>= 1``).
        allowed_lateness, max_pending, late_policy: per-shard buffer
            configuration, as for :class:`ReorderBuffer`.
        counters: optional shared dict; all per-shard buffers report into
            it, so ``reordered_snapshots`` etc. are global totals and
            ``peak_pending`` is the largest single-shard backlog.  The
            frontier adds ``frontier_staged_peak`` — the most snapshots
            ever staged behind the global frontier.
    """

    def __init__(self, shards, allowed_lateness=None, max_pending=None,
                 late_policy="raise", counters=None):
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if allowed_lateness is None and max_pending is None:
            # Name the frontier's own kwargs rather than letting the
            # per-shard buffer construction raise about ReorderBuffer.
            raise ValueError(
                "a WatermarkFrontier needs at least one per-shard release "
                "trigger: allowed_lateness and/or max_pending"
            )
        self.counters = counters if counters is not None else {}
        self.counters.setdefault("frontier_staged_peak", 0)
        self.buffers = tuple(
            ReorderBuffer(
                allowed_lateness=allowed_lateness, max_pending=max_pending,
                late_policy=late_policy, counters=self.counters,
            )
            for _ in range(shards)
        )
        self._staged = {}  # t -> merged snapshot dict
        self._heap = []    # min-heap over staged times
        self._last_emitted = None

    def __len__(self):
        """Snapshots currently held (staged plus pending in any buffer)."""
        return len(self._staged) + sum(len(b) for b in self.buffers)

    @property
    def last_emitted(self):
        """Timestamp of the most recent global emission (or None)."""
        return self._last_emitted

    @property
    def frontier(self):
        """The global emission frontier: the smallest per-shard last
        release, or None while any shard has released nothing."""
        floor = None
        for buffer in self.buffers:
            last = buffer.last_released
            if last is None:
                return None
            if floor is None or last < floor:
                floor = last
        return floor

    @property
    def watermark(self):
        """The merged event-time watermark (minimum over shards)."""
        return min(buffer.watermark for buffer in self.buffers)

    def push(self, shard, t, snapshot):
        """Push one arrival into a shard; return the global emissions.

        Args:
            shard: the partition index in ``[0, shards)``.
            t: the arrival's timestamp (any order the shard's buffer and
                late policy accept).
            snapshot: mapping ``{object_id: (x, y)}`` — typically the
                shard's *piece* of tick ``t`` (pieces merge at emission;
                when shards overlap on an object, later-staged pieces
                win, matching the buffers' merge rule).

        Returns:
            List of ``(t, snapshot)`` now past the global frontier, in
            strictly increasing time order — possibly empty.
        """
        for released_t, released in self.buffers[shard].push(t, snapshot):
            self._stage(released_t, released)
        return self._emit_ready()

    def drain(self):
        """End of stream: drain every shard, emit everything in order."""
        for buffer in self.buffers:
            for released_t, released in buffer.drain():
                self._stage(released_t, released)
        out = []
        while self._heap:
            t = heapq.heappop(self._heap)
            out.append((t, self._staged.pop(t)))
        if out:
            self._last_emitted = out[-1][0]
        return out

    # -- internals ---------------------------------------------------------

    def _stage(self, t, snapshot):
        if t in self._staged:
            self._staged[t].update(snapshot)
        else:
            self._staged[t] = dict(snapshot)
            heapq.heappush(self._heap, t)
            if len(self._staged) > self.counters["frontier_staged_peak"]:
                self.counters["frontier_staged_peak"] = len(self._staged)

    def _emit_ready(self):
        frontier = self.frontier
        if frontier is None:
            return []
        out = []
        while self._heap and self._heap[0] <= frontier:
            t = heapq.heappop(self._heap)
            out.append((t, self._staged.pop(t)))
        if out:
            self._last_emitted = out[-1][0]
        return out


def reorder_ticks(source, allowed_lateness=None, max_pending=None,
                  late_policy="raise", counters=None):
    """Wrap a possibly-shuffled tick iterable into an in-order one.

    Drives a :class:`ReorderBuffer` over ``source`` and yields its
    releases, draining the buffer when the source ends — the functional
    face of the buffer, for pipelines that compose iterators rather than
    push into a miner::

        for t, snapshot in reorder_ticks(jittered_feed, allowed_lateness=5):
            miner.feed(t, snapshot)

    Args / counters: as for :class:`ReorderBuffer`.
    """
    buffer = ReorderBuffer(
        allowed_lateness=allowed_lateness, max_pending=max_pending,
        late_policy=late_policy, counters=counters,
    )
    for t, snapshot in source:
        yield from buffer.push(t, snapshot)
    yield from buffer.drain()
