"""Sharded candidate tracking: fan one tick's matching work across shards.

Algorithm 1's per-tick candidate step is a join — every live candidate
against every cluster — and PR 3 already partitioned it implicitly: a
candidate records the stable id of its *support* cluster, and because
snapshot clusters are disjoint, candidates supported by different
clusters never compete for the same extension.  This module makes that
partition explicit and executes it in parallel:

* live candidates are routed to shards by their support-cluster id
  (memoized rendezvous hashing, so a chain stays on one shard for as
  long as its support survives and adding a shard moves only ``1/n`` of
  the keys); candidates without a support id — the classic
  :meth:`~repro.core.candidates.CandidateTracker.advance` path, and
  chains seeded from appearing or boundary clusters before their first
  delta step — are spread round-robin by live-list position;
* each shard's batch of cluster scans runs as one task on a pluggable
  executor backend (:mod:`repro.streaming.executor`): inline, thread
  pool, or process pool with chunked pickling;
* the per-shard match results merge back through the tracker's ordered
  apply pass, which replays survivors, seeds, and reports strictly in
  live-list order — so the emissions are **bit for bit** the unsharded
  tracker's, proven tick-for-tick by
  ``tests/streaming/test_sharded_equivalence.py``.

What crosses the executor boundary is only the pure matching kernel
(:func:`repro.core.candidates.match_candidates` over cluster member
sets and candidate object sets): splices stay O(1) in the owning
tracker, window histories never leave the parent process, and all state
mutation happens in the deterministic apply pass.  That keeps the
process path's pickling cost proportional to the tick's *working set*
(object ids under scan), not to the accumulated chain histories.

Resident mode
-------------

The stateless fan-out above still re-pickles every scanned candidate's
object set every tick.  With ``resident=True`` the tracker instead keeps
each shard's object sets *inside* a long-lived worker
(:class:`repro.streaming.executor.ResidentShardWorker`, reached over a
resident transport from :mod:`repro.streaming.executor`) and speaks a
three-message protocol:

* ``init`` seeds (or wholesale replaces) one shard's state from the
  parent's authoritative live list — sent whenever the transport reports
  a new worker *generation* (first use, restart, crash recovery), and
  the seam a future rebalancer uses to move a shard;
* ``step`` ships only what changed: the tick's cluster member sets, the
  shard's job *ids* (``(pos, chain_id, scan)`` — no object sets), and
  the put/drop delta the previous apply pass produced.  Workers return
  match *indexes only*; the parent re-derives the winning intersections
  from its own authoritative sets;
* ``snapshot`` drains a shard's state back (rebalance/close, and the
  differential suite's state checks).

Chains get stable ids from the apply-pass provenance the base tracker
records (``_collect_provenance``): a splice or full-member-set extension
continues the chain under its id; narrowed extensions and seeds become
new chains (one ``put`` each); chains that die become ``drop``s.
Support-keyed chains route by the same memoized rendezvous as stateless
mode (a support change migrates the chain: ``drop`` at the old home,
``put`` at the new); support-less chains route by ``chain_id % shards``
— stable, where stateless mode's live-list position round-robin would
thrash residency.  Emissions stay **bit for bit** identical to the
stateless and unsharded trackers; the differential suite proves it
across executors, pipelines, and mid-run worker restarts.
"""

from __future__ import annotations

import hashlib
import pickle
from time import perf_counter

from repro.clustering.numeric import bitset_remap, match_candidates_bitset
from repro.core.candidates import (
    CandidateTracker,
    match_plan_stats,
    resolve_match_kernel,
)
from repro.streaming.executor import (
    resolve_executor,
    resolve_resident_executor,
)

#: Counter keys a sharded tracker adds to its ``counters`` dict.
COUNTER_KEYS = (
    "shard_steps",
    "sharded_candidates",
    "max_shard_batch",
    "route_cache_resets",
    "resident_inits",
)


def _stable_hash(key):
    """A process-stable 64-bit hash (``hash()`` is salted per run)."""
    digest = hashlib.blake2b(
        repr(key).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_shard(key, n_shards):
    """Deterministic highest-random-weight (rendezvous) shard choice.

    Every observer computes the same winner for a key with no shared
    routing table, and resizing from ``n`` to ``n + 1`` shards reassigns
    only the keys the new shard wins (~``1/(n+1)`` of them) — the
    property that will let a future rebalancer grow the shard set
    without reshuffling every live chain.

    Args:
        key: any ``repr``-stable routing key (support-cluster ids here).
        n_shards: number of shards (``>= 1``).

    Returns:
        The winning shard index in ``[0, n_shards)``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return 0
    best_shard = 0
    best_weight = -1
    for shard in range(n_shards):
        weight = _stable_hash((shard, key))
        if weight > best_weight:
            best_shard = shard
            best_weight = weight
    return best_shard


def _match_shard(task):
    """One shard batch: run the pure kernel over this shard's jobs.

    Module-level (hence picklable by reference) so process backends can
    ship it; the payload is one chunk — the step's cluster member sets,
    the shard's candidate jobs, the numeric backend and match-kernel
    *names* (the worker resolves the kernel itself, so the task stays
    plain data), and, for the bitset kernel, the tick's dense id remap
    (built once by the parent so every shard packs rows over the same
    bit positions) — pickled as a single message.
    """
    members, jobs, min_objects, backend, kernel, remap = task
    if kernel == "bitset":
        return match_candidates_bitset(members, jobs, min_objects, remap)
    return resolve_match_kernel(backend, kernel)(members, jobs, min_objects)


class ShardedCandidateTracker(CandidateTracker):
    """A :class:`~repro.core.candidates.CandidateTracker` whose per-tick
    matching work is partitioned across shards and executed on a backend.

    Everything observable — survivor order, reports, window histories,
    the shared counter keys (``advance_steps``, ``delta_steps``,
    ``spliced_candidates``, ``reintersected_candidates``) — is identical
    to the unsharded tracker; the subclass overrides only the
    :meth:`~repro.core.candidates.CandidateTracker._match_live` seam and
    adds the :data:`COUNTER_KEYS` bookkeeping.

    Args:
        min_objects, min_lifetime, paper_semantics, counters, backend,
        match_kernel:
            as for :class:`~repro.core.candidates.CandidateTracker`
            (``backend`` picks the numeric matching kernel the shard
            workers run; ``match_kernel`` pins a fixed kernel or, with
            ``"auto"``, lets the dispatcher pick per tick — the chosen
            kernel *name* ships in the shard tasks, so workers stay
            stateless; identical matches every way).
        shards: number of partitions (``>= 1``; 1 still routes every
            batch through the backend, which is how the scaling bench
            isolates pure layer overhead).
        executor: backend spec forwarded to
            :func:`~repro.streaming.executor.resolve_executor` (or, with
            ``resident=True``, to
            :func:`~repro.streaming.executor.resolve_resident_executor`)
            — ``None``/``"serial"``, ``"thread"``, ``"process"``, or a
            ready-made backend object.
        resident: keep each shard's candidate object-sets inside a
            long-lived worker and ship per-tick deltas instead of full
            shard batches (see the module docstring's protocol).

    Call :meth:`close` (the streaming engine does, on ``flush``) to
    release pooled backends.
    """

    def __init__(self, min_objects, min_lifetime, shards,
                 executor="serial", paper_semantics=False, counters=None,
                 backend="python", resident=False, match_kernel=None):
        super().__init__(
            min_objects, min_lifetime, paper_semantics=paper_semantics,
            counters=counters, backend=backend, match_kernel=match_kernel,
        )
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._n_shards = shards
        self._resident = bool(resident)
        if self._resident:
            self._backend = resolve_resident_executor(executor)
            # The apply-pass narration drives chain-id assignment.
            self._collect_provenance = True
            self._chains = []   # chain id per live position
            self._homes = []    # home shard per live position
            self._next_chain = 0
            self._pending_ops = {}  # shard -> [("put", id, objs)|("drop", id)]
            self._seen_gen = {}     # shard -> last worker generation seeded
        else:
            self._backend = resolve_executor(executor)
        self._route_cache = {}  # support id -> shard (memoized rendezvous)
        self._byte_accounting = False
        for key in COUNTER_KEYS:
            self.counters.setdefault(key, 0)

    @property
    def shards(self):
        """Number of shards the tracker partitions candidates across."""
        return self._n_shards

    @property
    def executor(self):
        """The executor backend running the per-shard batches."""
        return self._backend

    @property
    def resident(self):
        """Whether shard state lives in long-lived workers."""
        return self._resident

    def enable_byte_accounting(self):
        """Count pickled payload bytes crossing the executor boundary.

        Adds ``shipped_bytes`` (requests) and ``result_bytes``
        (responses) to :attr:`counters`, measured as
        ``len(pickle.dumps(payload))`` per tick — the honest IPC metric
        on a 1-core container, and identical in shape for resident and
        stateless mode so the scaling bench can compare them.  Off by
        default: the extra pickling would double the stateless process
        path's serialization work.
        """
        self._byte_accounting = True
        self.counters.setdefault("shipped_bytes", 0)
        self.counters.setdefault("result_bytes", 0)

    def _shard_for(self, pos, support):
        """Route one candidate: support-keyed rendezvous, else round-robin."""
        if support is None:
            return pos % self._n_shards
        shard = self._route_cache.get(support)
        if shard is None:
            if len(self._route_cache) > max(1024, 8 * self.live_count):
                # Support ids are never reused, so dead entries only
                # accumulate — but the sweep must spare the routes live
                # candidates still use: dropping those too would force a
                # rendezvous recompute burst for the whole live set on
                # the very next tick (high-churn thrash).
                live = {c.support for c in self._candidates}
                live.discard(None)
                self._route_cache = {
                    cid: home for cid, home in self._route_cache.items()
                    if cid in live
                }
                self.counters["route_cache_resets"] += 1
            shard = rendezvous_shard(support, self._n_shards)
            self._route_cache[support] = shard
        return shard

    def _choose_kernel(self, members, jobs):
        """Pick this tick's fixed kernel name to ship to the shards.

        Returns ``(kernel name or None, MatchPlanStats or None)`` —
        stats are only computed (and the choice only counted) under
        ``"auto"`` dispatch; the caller feeds the measured tick cost
        back via :meth:`KernelDispatch.observe` when stats are present.
        """
        if self._dispatch is None:
            return self._match_kernel, None
        stats = match_plan_stats(members, jobs)
        name = self._dispatch.choose(stats)
        self.counters[f"dispatch_{name}"] += 1
        return name, stats

    def _match_live(self, members, jobs):
        """Partition the step's scans into shard batches and execute them."""
        if self._resident:
            return self._match_live_resident(members, jobs)
        if not jobs:
            return []
        kernel, stats = self._choose_kernel(members, jobs)
        remap = bitset_remap(jobs) if kernel == "bitset" else None
        candidates = self._candidates
        buckets = [[] for _ in range(self._n_shards)]
        for job in jobs:
            pos = job[0]
            buckets[self._shard_for(pos, candidates[pos].support)].append(job)
        tasks = [
            (members, bucket, self._m, self._numeric_backend, kernel, remap)
            for bucket in buckets if bucket
        ]
        self.counters["shard_steps"] += 1
        self.counters["sharded_candidates"] += len(jobs)
        biggest = max(len(bucket) for bucket in buckets)
        if biggest > self.counters["max_shard_batch"]:
            self.counters["max_shard_batch"] = biggest
        if self._byte_accounting:
            self.counters["shipped_bytes"] += len(
                pickle.dumps(tasks, pickle.HIGHEST_PROTOCOL)
            )
        started = perf_counter()
        raw = self._backend.map(_match_shard, tasks)
        if stats is not None:
            self._dispatch.observe(kernel, stats, perf_counter() - started)
        if self._byte_accounting:
            self.counters["result_bytes"] += len(
                pickle.dumps(raw, pickle.HIGHEST_PROTOCOL)
            )
        results = []
        for part in raw:
            results.extend(part)
        return results

    # ------------------------------------------------------------------
    # Resident mode: chain-id bookkeeping, delta shipping, reconciliation
    # ------------------------------------------------------------------

    def _home_for(self, chain_id, support):
        """A chain's home shard: rendezvous on its support when it has
        one, else stable ``chain_id % shards`` (live-list position would
        shift every tick and thrash worker residency)."""
        if support is None:
            return chain_id % self._n_shards
        return self._shard_for(0, support)

    def _shard_entries(self, shard):
        """The authoritative ``(chain_id, objects)`` state of one shard."""
        return [
            (chain, candidate.objects)
            for chain, home, candidate in zip(
                self._chains, self._homes, self._candidates
            )
            if home == shard
        ]

    def _queue_op(self, shard, op):
        self._pending_ops.setdefault(shard, []).append(op)

    def _shard_messages(self, shard, members=None, jobs=(), kernel=None):
        """Build one shard's message batch, handling (re)seeding.

        When the transport reports a generation the tracker has not
        seeded (first use, restart, crash recovery), pending deltas are
        discarded and a full ``init`` is sent instead — the worker's
        state is gone, so the only sound move is wholesale replacement
        from the parent's authoritative live list.  A per-tick kernel
        name (fixed ``match_kernel`` or the dispatcher's choice) rides
        as a fifth ``step`` element; without one the message keeps its
        four-element legacy shape and the worker falls back to the
        kernel its ``init`` backend implies.
        """
        messages = []
        generation = self._backend.generation(shard)
        if self._seen_gen.get(shard) != generation:
            self._pending_ops.pop(shard, None)
            messages.append(
                ("init", self._m, self._numeric_backend,
                 self._shard_entries(shard))
            )
            self._seen_gen[shard] = generation
            self.counters["resident_inits"] += 1
            ops = ()
        else:
            ops = tuple(self._pending_ops.pop(shard, ()))
        if ops or jobs:
            step = ("step", members or (), ops, tuple(jobs))
            if kernel is not None:
                step += (kernel,)
            messages.append(step)
        return messages

    def _match_live_resident(self, members, jobs):
        """Ship per-shard step messages; reconstruct matches from indexes."""
        kernel, stats = self._choose_kernel(members, jobs) if jobs else (
            None, None
        )
        candidates = self._candidates
        chains = self._chains
        homes = self._homes
        buckets = {}
        for pos, _objects, scan in jobs:
            buckets.setdefault(homes[pos], []).append(
                (pos, chains[pos], scan)
            )
        batches = []
        unmap = {}  # shard -> shipped-index -> global cluster index
        for shard in sorted(set(buckets) | set(self._pending_ops)):
            bucket = buckets.get(shard, ())
            # An ops-only batch (pending puts/drops, no jobs) needs no
            # cluster sets at all; jobs without scan lists need them all.
            shard_members = members if bucket else ()
            if bucket and all(job[2] is not None for job in bucket):
                # Every job names its scan list, so the shard only needs
                # those clusters: ship the subset under compact indexes
                # (the delta path's dirty set is usually a small slice of
                # the tick — this is most of resident mode's byte win).
                used = sorted({
                    index for _pos, _chain, scan in bucket for index in scan
                })
                if len(used) < len(members):
                    remap = {old: new for new, old in enumerate(used)}
                    shard_members = [members[index] for index in used]
                    bucket = [
                        (pos, chain, tuple(remap[i] for i in scan))
                        for pos, chain, scan in bucket
                    ]
                    unmap[shard] = used
            messages = self._shard_messages(
                shard, members=shard_members, jobs=bucket,
                kernel=kernel if bucket else None,
            )
            if messages:
                batches.append((shard, messages))
        self.counters["shard_steps"] += 1
        self.counters["sharded_candidates"] += len(jobs)
        biggest = max(
            (len(bucket) for bucket in buckets.values()), default=0
        )
        if biggest > self.counters["max_shard_batch"]:
            self.counters["max_shard_batch"] = biggest
        if not batches:
            return []
        if self._byte_accounting:
            self.counters["shipped_bytes"] += len(
                pickle.dumps(batches, pickle.HIGHEST_PROTOCOL)
            )
        started = perf_counter()
        responses = self._backend.run(batches)
        if stats is not None:
            self._dispatch.observe(kernel, stats, perf_counter() - started)
        if self._byte_accounting:
            self.counters["result_bytes"] += len(
                pickle.dumps(responses, pickle.HIGHEST_PROTOCOL)
            )
        results = []
        for (shard, messages), shard_responses in zip(batches, responses):
            if messages[-1][0] != "step" or not messages[-1][3]:
                continue  # init/flush-only batch: nothing to merge
            used = unmap.get(shard)
            for pos, indexes in shard_responses[-1]:
                if used is not None:
                    indexes = [used[index] for index in indexes]
                objects = candidates[pos].objects
                # Workers return match *indexes*; the winning
                # intersections are re-derived from the parent's own
                # authoritative sets, so they never cross the boundary.
                results.append(
                    (pos,
                     [(index, objects & members[index]) for index in indexes])
                )
        return results

    def _reconcile(self):
        """Replay the apply pass's provenance into chain ids and deltas.

        Consumes :attr:`last_provenance` (one event per survivor, in the
        new live-list order): splices and full-member-set extensions
        carry their chain id forward (a support change migrates the
        chain — ``drop`` at the old home, ``put`` at the new); narrowed
        extensions and seeds become new chains (``put``); parents with
        no carried survivor died (``drop``).  The resulting per-shard
        ops ship with the *next* step message — the step that ran this
        tick matched against the pre-apply state, which is exactly what
        the workers held.
        """
        provenance = self.last_provenance
        self.last_provenance = None
        old_chains = self._chains
        old_homes = self._homes
        candidates = self._candidates
        new_chains = []
        new_homes = []
        carried = set()
        for position, event in enumerate(provenance):
            candidate = candidates[position]
            kind = event[0]
            if kind == "splice":
                # Unchanged support, unchanged objects: same id, same home.
                parent = event[1]
                chain = old_chains[parent]
                home = old_homes[parent]
                carried.add(parent)
            elif kind == "extend" and event[2] and event[1] not in carried:
                # Full member set preserved: the chain continues under
                # its id (at most one such survivor per parent — the
                # survivor key (objects, t_start) is unique).  A support
                # change moves it to a new home.
                parent = event[1]
                chain = old_chains[parent]
                home = self._home_for(chain, candidate.support)
                carried.add(parent)
                if home != old_homes[parent]:
                    self._queue_op(old_homes[parent], ("drop", chain))
                    self._queue_op(
                        home, ("put", chain, candidate.objects)
                    )
            else:
                # Narrowed extension or fresh seed: a new chain.
                chain = self._next_chain
                self._next_chain += 1
                home = self._home_for(chain, candidate.support)
                self._queue_op(home, ("put", chain, candidate.objects))
            new_chains.append(chain)
            new_homes.append(home)
        for parent, (chain, home) in enumerate(zip(old_chains, old_homes)):
            if parent not in carried:
                self._queue_op(home, ("drop", chain))
        self._chains = new_chains
        self._homes = new_homes

    def _drop_positions(self, keep):
        """Queue drops for every live position not in ``keep`` and shrink
        the chain bookkeeping to the survivors (prune/flush paths)."""
        new_chains = []
        new_homes = []
        for position, (chain, home) in enumerate(
            zip(self._chains, self._homes)
        ):
            if position in keep:
                new_chains.append(chain)
                new_homes.append(home)
            else:
                self._queue_op(home, ("drop", chain))
        self._chains = new_chains
        self._homes = new_homes

    def advance(self, clusters, window_start, window_end):
        closed = super().advance(clusters, window_start, window_end)
        if self._resident and self.last_provenance is not None:
            self._reconcile()
        return closed

    def advance_delta(self, clusters, delta, window_start, window_end):
        # delta=None delegates to self.advance, whose override already
        # reconciled (and consumed the provenance) — hence the guard.
        closed = super().advance_delta(
            clusters, delta, window_start, window_end
        )
        if self._resident and self.last_provenance is not None:
            self._reconcile()
        return closed

    def prune_longer_than(self, max_lifetime):
        if not self._resident:
            return super().prune_longer_than(max_lifetime)
        before = {
            id(candidate): position
            for position, candidate in enumerate(self._candidates)
        }
        closed = super().prune_longer_than(max_lifetime)
        self._drop_positions(
            {before[id(candidate)] for candidate in self._candidates}
        )
        return closed

    def flush(self):
        closed = super().flush()
        if self._resident:
            self._drop_positions(set())
        return closed

    def snapshot_shard(self, shard):
        """Drain one shard's resident state back to the parent.

        Flushes the shard's pending delta first (seeding the worker if
        its generation changed), then returns the worker's
        ``{chain_id: objects}`` dict — the rebalancer's read side, and
        what the differential suite checks against
        :meth:`expected_shard_state`.
        """
        if not self._resident:
            raise RuntimeError("snapshot_shard requires resident=True")
        messages = self._shard_messages(shard)
        messages.append(("snapshot",))
        return self._backend.run([(shard, messages)])[0][-1]

    def expected_shard_state(self, shard):
        """The parent's authoritative view of one shard's state — what
        :meth:`snapshot_shard` must return once pending deltas land."""
        if not self._resident:
            raise RuntimeError("expected_shard_state requires resident=True")
        return dict(self._shard_entries(shard))

    def close(self):
        """Release the executor backend (idempotent)."""
        self._backend.close()
