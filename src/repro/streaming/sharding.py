"""Sharded candidate tracking: fan one tick's matching work across shards.

Algorithm 1's per-tick candidate step is a join — every live candidate
against every cluster — and PR 3 already partitioned it implicitly: a
candidate records the stable id of its *support* cluster, and because
snapshot clusters are disjoint, candidates supported by different
clusters never compete for the same extension.  This module makes that
partition explicit and executes it in parallel:

* live candidates are routed to shards by their support-cluster id
  (memoized rendezvous hashing, so a chain stays on one shard for as
  long as its support survives and adding a shard moves only ``1/n`` of
  the keys); candidates without a support id — the classic
  :meth:`~repro.core.candidates.CandidateTracker.advance` path, and
  chains seeded from appearing or boundary clusters before their first
  delta step — are spread round-robin by live-list position;
* each shard's batch of cluster scans runs as one task on a pluggable
  executor backend (:mod:`repro.streaming.executor`): inline, thread
  pool, or process pool with chunked pickling;
* the per-shard match results merge back through the tracker's ordered
  apply pass, which replays survivors, seeds, and reports strictly in
  live-list order — so the emissions are **bit for bit** the unsharded
  tracker's, proven tick-for-tick by
  ``tests/streaming/test_sharded_equivalence.py``.

What crosses the executor boundary is only the pure matching kernel
(:func:`repro.core.candidates.match_candidates` over cluster member
sets and candidate object sets): splices stay O(1) in the owning
tracker, window histories never leave the parent process, and all state
mutation happens in the deterministic apply pass.  That keeps the
process path's pickling cost proportional to the tick's *working set*
(object ids under scan), not to the accumulated chain histories.
"""

from __future__ import annotations

import hashlib

from repro.core.candidates import CandidateTracker, resolve_match_kernel
from repro.streaming.executor import resolve_executor

#: Counter keys a sharded tracker adds to its ``counters`` dict.
COUNTER_KEYS = (
    "shard_steps",
    "sharded_candidates",
    "max_shard_batch",
)


def _stable_hash(key):
    """A process-stable 64-bit hash (``hash()`` is salted per run)."""
    digest = hashlib.blake2b(
        repr(key).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_shard(key, n_shards):
    """Deterministic highest-random-weight (rendezvous) shard choice.

    Every observer computes the same winner for a key with no shared
    routing table, and resizing from ``n`` to ``n + 1`` shards reassigns
    only the keys the new shard wins (~``1/(n+1)`` of them) — the
    property that will let a future rebalancer grow the shard set
    without reshuffling every live chain.

    Args:
        key: any ``repr``-stable routing key (support-cluster ids here).
        n_shards: number of shards (``>= 1``).

    Returns:
        The winning shard index in ``[0, n_shards)``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return 0
    best_shard = 0
    best_weight = -1
    for shard in range(n_shards):
        weight = _stable_hash((shard, key))
        if weight > best_weight:
            best_shard = shard
            best_weight = weight
    return best_shard


def _match_shard(task):
    """One shard batch: run the pure kernel over this shard's jobs.

    Module-level (hence picklable by reference) so process backends can
    ship it; the payload is one chunk — the step's cluster member sets,
    the shard's candidate jobs, and the numeric backend *name* (the
    worker resolves the kernel itself, so the task stays plain data) —
    pickled as a single message.
    """
    members, jobs, min_objects, backend = task
    return resolve_match_kernel(backend)(members, jobs, min_objects)


class ShardedCandidateTracker(CandidateTracker):
    """A :class:`~repro.core.candidates.CandidateTracker` whose per-tick
    matching work is partitioned across shards and executed on a backend.

    Everything observable — survivor order, reports, window histories,
    the shared counter keys (``advance_steps``, ``delta_steps``,
    ``spliced_candidates``, ``reintersected_candidates``) — is identical
    to the unsharded tracker; the subclass overrides only the
    :meth:`~repro.core.candidates.CandidateTracker._match_live` seam and
    adds the :data:`COUNTER_KEYS` bookkeeping.

    Args:
        min_objects, min_lifetime, paper_semantics, counters, backend:
            as for :class:`~repro.core.candidates.CandidateTracker`
            (``backend`` picks the numeric matching kernel the shard
            workers run; identical matches either way).
        shards: number of partitions (``>= 1``; 1 still routes every
            batch through the backend, which is how the scaling bench
            isolates pure layer overhead).
        executor: backend spec forwarded to
            :func:`~repro.streaming.executor.resolve_executor` —
            ``None``/``"serial"``, ``"thread"``, ``"process"``, or a
            ready-made backend object.

    Call :meth:`close` (the streaming engine does, on ``flush``) to
    release pooled backends.
    """

    def __init__(self, min_objects, min_lifetime, shards,
                 executor="serial", paper_semantics=False, counters=None,
                 backend="python"):
        super().__init__(
            min_objects, min_lifetime, paper_semantics=paper_semantics,
            counters=counters, backend=backend,
        )
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._n_shards = shards
        self._backend = resolve_executor(executor)
        self._route_cache = {}  # support id -> shard (memoized rendezvous)
        for key in COUNTER_KEYS:
            self.counters.setdefault(key, 0)

    @property
    def shards(self):
        """Number of shards the tracker partitions candidates across."""
        return self._n_shards

    @property
    def executor(self):
        """The executor backend running the per-shard batches."""
        return self._backend

    def _shard_for(self, pos, support):
        """Route one candidate: support-keyed rendezvous, else round-robin."""
        if support is None:
            return pos % self._n_shards
        shard = self._route_cache.get(support)
        if shard is None:
            if len(self._route_cache) > max(1024, 8 * self.live_count):
                # Support ids are never reused, so dead entries only
                # accumulate; a full reset is cheap and self-repairing.
                self._route_cache.clear()
            shard = rendezvous_shard(support, self._n_shards)
            self._route_cache[support] = shard
        return shard

    def _match_live(self, members, jobs):
        """Partition the step's scans into shard batches and execute them."""
        if not jobs:
            return []
        candidates = self._candidates
        buckets = [[] for _ in range(self._n_shards)]
        for job in jobs:
            pos = job[0]
            buckets[self._shard_for(pos, candidates[pos].support)].append(job)
        tasks = [
            (members, bucket, self._m, self._numeric_backend)
            for bucket in buckets if bucket
        ]
        self.counters["shard_steps"] += 1
        self.counters["sharded_candidates"] += len(jobs)
        biggest = max(len(bucket) for bucket in buckets)
        if biggest > self.counters["max_shard_batch"]:
            self.counters["max_shard_batch"] = biggest
        results = []
        for part in self._backend.map(_match_shard, tasks):
            results.extend(part)
        return results

    def close(self):
        """Release the executor backend (idempotent)."""
        self._backend.close()
