"""Pluggable executor backends for per-shard candidate advances.

The sharding layer (:mod:`repro.streaming.sharding`) partitions one
tick's candidate-matching work into per-shard batches; *where* those
batches run is this module's job.  Every backend exposes the same
two-method surface — ``map(fn, tasks)`` returning the results in task
order, and ``close()`` releasing whatever the backend holds — so the
tracker neither knows nor cares whether a batch ran inline, on a thread
pool, or in a worker process:

* :class:`SerialExecutor` — run every task inline on the calling thread.
  Zero overhead beyond the function calls; the reference backend the
  scaling bench holds the others against, and the proof that the staged
  refactor itself costs nothing.
* :class:`ThreadExecutor` — a shared ``ThreadPoolExecutor``.  Python's
  GIL serializes the pure-Python set intersections, so this backend buys
  no wall-clock on CPython today; it exists because it exercises the
  full fan-out/merge machinery with zero pickling (the cheapest way to
  test the concurrency seams) and becomes a real speedup on free-threaded
  builds.
* :class:`ProcessExecutor` — a lazily created ``ProcessPoolExecutor``.
  Task payloads cross the process boundary by pickling, so the sharding
  layer ships *chunked* work: one payload per shard batch (clusters +
  that shard's candidate jobs in a single message), submitted through
  ``Executor.map(..., chunksize=)`` so several batches share one IPC
  round trip.  This is the backend that turns shards into actual cores.

Pools are created on first use and must be released with ``close()``
(the streaming engine does so on ``flush``); a closed backend rebuilds
its pool if used again, so a backend instance can be shared across
sequential runs.
"""

from __future__ import annotations

#: Names accepted by :func:`resolve_executor`.
BACKENDS = ("serial", "thread", "process")


class SerialExecutor:
    """Run every task inline, in order, on the calling thread."""

    name = "serial"

    def map(self, fn, tasks):
        """Apply ``fn`` to each task; return the results in task order."""
        return [fn(task) for task in tasks]

    def close(self):
        """Nothing to release."""

    def __repr__(self):
        return "SerialExecutor()"


class ThreadExecutor:
    """Fan tasks out across a shared thread pool.

    Args:
        max_workers: pool size (default: the ``ThreadPoolExecutor``
            default, ``min(32, cpu_count + 4)``).
    """

    name = "thread"

    def __init__(self, max_workers=None):
        self._max_workers = max_workers
        self._pool = None

    def map(self, fn, tasks):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-shard",
            )
        return list(self._pool.map(fn, tasks))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return f"ThreadExecutor(max_workers={self._max_workers!r})"


class ProcessExecutor:
    """Fan tasks out across a lazily created process pool.

    Payloads are pickled per chunk: ``chunksize`` tasks travel in one
    IPC message (the "chunked pickling" of the sharded design — a task
    is already a whole shard batch, so the default of 1 means one
    message per shard; raise it when shards outnumber workers).

    Args:
        max_workers: pool size (default: ``os.cpu_count()``).
        chunksize: tasks pickled per IPC message (``>= 1``).
    """

    name = "process"

    def __init__(self, max_workers=None, chunksize=1):
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self._max_workers = max_workers
        self._chunksize = int(chunksize)
        self._pool = None

    def map(self, fn, tasks):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return list(self._pool.map(fn, tasks, chunksize=self._chunksize))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return (
            f"ProcessExecutor(max_workers={self._max_workers!r}, "
            f"chunksize={self._chunksize})"
        )


def resolve_executor(spec):
    """Turn an executor spec into a backend instance.

    Args:
        spec: ``None`` (serial), one of the :data:`BACKENDS` names, or a
            ready-made backend — any object with ``map(fn, tasks)`` and
            ``close()`` is accepted as-is, so callers can inject a
            custom pool (pinned workers, an async bridge, ...).

    Returns:
        The backend instance.

    Raises:
        ValueError: for unknown names or objects missing the surface.
    """
    if spec is None or spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor()
    if spec == "process":
        return ProcessExecutor()
    if callable(getattr(spec, "map", None)) and callable(
        getattr(spec, "close", None)
    ):
        return spec
    raise ValueError(
        f"executor must be None, one of {BACKENDS}, or an object with "
        f"map()/close() methods, got {spec!r}"
    )
