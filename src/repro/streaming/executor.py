"""Pluggable executor backends for per-shard candidate advances.

The sharding layer (:mod:`repro.streaming.sharding`) partitions one
tick's candidate-matching work into per-shard batches; *where* those
batches run is this module's job.  Every backend exposes the same
two-method surface — ``map(fn, tasks)`` returning the results in task
order, and ``close()`` releasing whatever the backend holds — so the
tracker neither knows nor cares whether a batch ran inline, on a thread
pool, or in a worker process:

* :class:`SerialExecutor` — run every task inline on the calling thread.
  Zero overhead beyond the function calls; the reference backend the
  scaling bench holds the others against, and the proof that the staged
  refactor itself costs nothing.
* :class:`ThreadExecutor` — a shared ``ThreadPoolExecutor``.  Python's
  GIL serializes the pure-Python set intersections, so this backend buys
  no wall-clock on CPython today; it exists because it exercises the
  full fan-out/merge machinery with zero pickling (the cheapest way to
  test the concurrency seams) and becomes a real speedup on free-threaded
  builds.
* :class:`ProcessExecutor` — a lazily created ``ProcessPoolExecutor``.
  Task payloads cross the process boundary by pickling, so the sharding
  layer ships *chunked* work: one payload per shard batch (clusters +
  that shard's candidate jobs in a single message), submitted through
  ``Executor.map(..., chunksize=)`` so several batches share one IPC
  round trip.  This is the backend that turns shards into actual cores.

Pools are created on first use and must be released with ``close()``
(the streaming engine does so on ``flush``); a closed backend rebuilds
its pool if used again, so a backend instance can be shared across
sequential runs.

Resident mode
-------------

The ``map``-shaped backends are stateless: every tick's payload carries
the full shard batch, candidate object-sets included, so the process
path re-pickles state that barely changes between ticks.  The *resident*
transports keep a long-lived :class:`ResidentShardWorker` per shard —
holding that shard's candidate object-sets between ticks — and route
every message for a shard to *its* worker, so the per-tick payload
shrinks to cluster member-sets, job ids, and the put/drop deltas of the
apply pass (see :mod:`repro.streaming.sharding` for the protocol and the
state reconciliation that produces those deltas):

* :class:`ResidentSerialExecutor` — workers held in-process, messages
  handled inline: the reference implementation the differential suite
  holds the others against.
* :class:`ResidentThreadExecutor` — same in-process workers, shard
  batches fanned out on a thread pool.
* :class:`ResidentProcessExecutor` — one single-worker process pool per
  shard (the only way a ``concurrent.futures`` pool can guarantee shard
  affinity), built from an explicit multiprocessing context (``spawn``
  by default, so worker state never depends on fork-inherited
  interpreter state), each worker process named after its shard.

Resident transports expose ``generation(shard)`` — an incarnation
number that changes whenever the shard's worker may have lost its state
(first creation, ``restart``, a crash, ``close``) — so the tracker
knows when to re-seed a worker over the ``init`` message instead of
shipping an incremental delta.  A worker process dying mid-run surfaces
as :class:`ShardWorkerCrashed` (never a hang): the broken pool is torn
down, ``close()`` still succeeds, and the next use rebuilds the pool
under a fresh generation.
"""

from __future__ import annotations

from repro.core.candidates import FIXED_MATCH_KERNELS, resolve_match_kernel

#: Names accepted by :func:`resolve_executor` and
#: :func:`resolve_resident_executor`.
BACKENDS = ("serial", "thread", "process")


class ShardWorkerCrashed(RuntimeError):
    """A resident shard worker process died mid-run.

    Raised (promptly — the pool's futures fail the moment the process
    dies, so a crash can never hang the stream) in place of the raw
    ``BrokenProcessPool``, naming the shard whose worker was lost.  The
    broken pool is already torn down when this propagates: ``close()``
    on the backend still succeeds, and the next run on the same backend
    instance rebuilds the pool under a fresh generation, which makes the
    tracker re-seed the worker's state.
    """

    def __init__(self, shard, detail):
        super().__init__(
            f"resident worker for shard {shard} crashed ({detail}); the "
            f"shard's pool has been torn down — close the miner, or rerun "
            f"on this backend to restart the worker"
        )
        self.shard = shard


class ResidentProtocolError(RuntimeError):
    """A resident worker received a message inconsistent with its state
    (job or drop for an unknown chain, step before init) — always a bug
    in the parent's reconciliation, never recoverable data loss."""


def _name_worker_process(name):
    """Pool initializer: name the worker process for ps/log readability."""
    import multiprocessing

    multiprocessing.current_process().name = name


def _resolve_mp_context(spec):
    """Turn an mp-context spec (name, context object, or None) into a
    multiprocessing context; the default is the platform-independent
    ``spawn``, so worker behavior never depends on fork-inherited
    interpreter state (lazily imported modules, open handles, ...)."""
    import multiprocessing

    if spec is None:
        spec = "spawn"
    if isinstance(spec, str):
        return multiprocessing.get_context(spec)
    return spec


class ResidentShardWorker:
    """One shard's resident state plus its message interpreter.

    The worker holds ``chain id -> candidate object-set`` between ticks
    and answers the three protocol messages (plain picklable tuples):

    * ``("init", min_objects, backend, entries)`` — replace the state
      wholesale with ``entries`` (``(chain_id, objects)`` pairs) and
      resolve the matching kernel from the numeric backend *name*;
      returns ``("ok", population)``.
    * ``("step", members, ops, jobs[, kernel])`` — apply the put/drop
      ``ops`` (the parent's apply-pass delta), then run the match kernel
      over ``jobs`` (``(pos, chain_id, scan)`` triples resolved against
      the resident state) and return ``(pos, match_indexes)`` pairs —
      match *indexes only*; the parent re-derives the few winning
      intersections itself, so cluster-sized sets never travel back.
      The optional fifth element names a fixed kernel for this tick
      (the parent's ``match_kernel`` or its dispatcher's choice);
      without it the worker runs the kernel its ``init`` backend
      implies.
    * ``("snapshot",)`` — return a copy of the resident state, for
      rebalance/close and the differential suite's state checks.

    ``("probe",)`` additionally reports ``(pid, process name, kernel
    name, population)`` as a health check.

    Alongside the object sets the worker maintains one *bitset row* per
    chain — a Python ``int`` bitmask over a worker-local dense id remap
    that grows with first-seen candidate objects — kept patched by the
    very same put/drop deltas.  A ``bitset``-kernel tick then needs no
    per-tick remap shipping and no row rebuild: cluster member sets are
    encoded through the existing remap (ids no resident candidate holds
    cannot intersect anything and are skipped) and each scanned pair is
    one C-speed AND + ``int.bit_count``.
    """

    def __init__(self):
        self._objects = {}
        self._m = None
        self._kernel = None
        self._bit_of = {}  # object id -> bit index (first-seen order)
        self._bits = {}    # chain id -> int bitmask over _bit_of

    def handle(self, message):
        tag = message[0]
        if tag == "step":
            kernel = message[4] if len(message) > 4 else None
            return self._step(message[1], message[2], message[3], kernel)
        if tag == "init":
            return self._init(message[1], message[2], message[3])
        if tag == "snapshot":
            return dict(self._objects)
        if tag == "probe":
            import multiprocessing
            import os

            return (
                os.getpid(),
                multiprocessing.current_process().name,
                None if self._kernel is None else self._kernel.__name__,
                len(self._objects),
            )
        raise ResidentProtocolError(f"unknown resident message {tag!r}")

    def _mask(self, objects):
        """Pack one object set into a bitmask, growing the remap."""
        bit_of = self._bit_of
        mask = 0
        for obj in objects:
            bit = bit_of.get(obj)
            if bit is None:
                bit = bit_of[obj] = len(bit_of)
            mask |= 1 << bit
        return mask

    def bitset_rows(self):
        """Decode the maintained bitset rows back to object sets.

        Diagnostic/testing surface: the decoded rows must always equal
        the authoritative ``chain id -> objects`` state (the property
        suite rebuilds a fresh worker from the current state and holds
        the two decodings equal after arbitrary put/drop sequences).
        """
        name_of = {bit: obj for obj, bit in self._bit_of.items()}
        rows = {}
        for chain_id, mask in self._bits.items():
            objects = set()
            while mask:
                low = mask & -mask
                objects.add(name_of[low.bit_length() - 1])
                mask ^= low
            rows[chain_id] = frozenset(objects)
        return rows

    def _init(self, min_objects, backend, entries):
        self._m = min_objects
        self._kernel = resolve_match_kernel(backend)
        self._objects = {chain_id: objects for chain_id, objects in entries}
        self._bit_of = {}
        self._bits = {
            chain_id: self._mask(objects)
            for chain_id, objects in self._objects.items()
        }
        return ("ok", len(self._objects))

    def _step(self, members, ops, jobs, kernel=None):
        objects = self._objects
        bits = self._bits
        for op in ops:
            if op[0] == "put":
                objects[op[1]] = op[2]
                bits[op[1]] = self._mask(op[2])
            elif op[0] == "drop":
                if objects.pop(op[1], None) is None:
                    raise ResidentProtocolError(
                        f"drop for unknown chain {op[1]}"
                    )
                del bits[op[1]]
            else:
                raise ResidentProtocolError(f"unknown delta op {op[0]!r}")
        if not jobs:
            return ()
        if self._kernel is None:
            raise ResidentProtocolError("step before init: worker has no state")
        if kernel == "bitset":
            return self._step_bitset(members, jobs)
        fn = self._kernel if kernel is None else FIXED_MATCH_KERNELS[kernel]
        try:
            kernel_jobs = [
                (pos, objects[chain_id], scan) for pos, chain_id, scan in jobs
            ]
        except KeyError as exc:
            raise ResidentProtocolError(
                f"job references unknown chain {exc.args[0]}"
            ) from None
        return tuple(
            (pos, tuple(index for index, _common in matches))
            for pos, matches in fn(members, kernel_jobs, self._m)
        )

    def _step_bitset(self, members, jobs):
        """Run a bitset tick straight off the maintained rows."""
        bit_of = self._bit_of
        cluster_masks = []
        for cluster in members:
            mask = 0
            for obj in cluster:
                bit = bit_of.get(obj)
                if bit is not None:
                    mask |= 1 << bit
            cluster_masks.append(mask)
        full_scan = range(len(members))
        min_objects = self._m
        bits = self._bits
        out = []
        for pos, chain_id, scan in jobs:
            row = bits.get(chain_id)
            if row is None:
                raise ResidentProtocolError(
                    f"job references unknown chain {chain_id}"
                )
            out.append((pos, tuple(
                index for index in (full_scan if scan is None else scan)
                if (row & cluster_masks[index]).bit_count() >= min_objects
            )))
        return tuple(out)


class SerialExecutor:
    """Run every task inline, in order, on the calling thread."""

    name = "serial"

    def map(self, fn, tasks):
        """Apply ``fn`` to each task; return the results in task order."""
        return [fn(task) for task in tasks]

    def close(self):
        """Nothing to release."""

    def __repr__(self):
        return "SerialExecutor()"


class ThreadExecutor:
    """Fan tasks out across a shared thread pool.

    Args:
        max_workers: pool size (default: the ``ThreadPoolExecutor``
            default, ``min(32, cpu_count + 4)``).
    """

    name = "thread"

    def __init__(self, max_workers=None):
        self._max_workers = max_workers
        self._pool = None

    def map(self, fn, tasks):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-shard",
            )
        return list(self._pool.map(fn, tasks))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return f"ThreadExecutor(max_workers={self._max_workers!r})"


class ProcessExecutor:
    """Fan tasks out across a lazily created process pool.

    Payloads are pickled per chunk: ``chunksize`` tasks travel in one
    IPC message (the "chunked pickling" of the sharded design — a task
    is already a whole shard batch, so the default of 1 means one
    message per shard; raise it when shards outnumber workers).

    Workers are started from an explicit multiprocessing context —
    ``spawn`` by default, never the platform default: under ``fork`` a
    worker inherits whatever interpreter state the parent accumulated
    (lazily imported numpy, RNG state, open handles), so the same match
    kernel could behave differently per platform.  A spawned worker
    re-imports from scratch and resolves its kernel from the backend
    *name* in the task, which is exactly what a remote worker would do.
    Workers are named ``repro-shard-worker`` for ps/log readability.

    Args:
        max_workers: pool size (default: ``os.cpu_count()``).
        chunksize: tasks pickled per IPC message (``>= 1``).
        mp_context: multiprocessing context or start-method name
            (default ``"spawn"``).
    """

    name = "process"

    def __init__(self, max_workers=None, chunksize=1, mp_context=None):
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self._max_workers = max_workers
        self._chunksize = int(chunksize)
        self._mp_context = mp_context
        self._pool = None

    @property
    def alive(self):
        """Whether a pool is currently held (health-check seam)."""
        return self._pool is not None

    def map(self, fn, tasks):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self._max_workers,
                mp_context=_resolve_mp_context(self._mp_context),
                initializer=_name_worker_process,
                initargs=("repro-shard-worker",),
            )
        return list(self._pool.map(fn, tasks, chunksize=self._chunksize))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return (
            f"ProcessExecutor(max_workers={self._max_workers!r}, "
            f"chunksize={self._chunksize})"
        )


def _run_resident_batch(shard, messages):
    """Handle one shard's messages inside a worker process.

    Module-level (picklable by reference) and backed by a module-global
    worker registry: each :class:`ResidentProcessExecutor` pool serves
    exactly one shard with exactly one process, so the registry in any
    worker process only ever holds that process's own shard — state
    persists across submissions because the process does.
    """
    worker = _PROCESS_RESIDENT_WORKERS.get(shard)
    if worker is None:
        worker = _PROCESS_RESIDENT_WORKERS.setdefault(
            shard, ResidentShardWorker()
        )
    return [worker.handle(message) for message in messages]


#: Per-process registry backing :func:`_run_resident_batch`.
_PROCESS_RESIDENT_WORKERS = {}


class ResidentSerialExecutor:
    """Resident workers held in-process, messages handled inline.

    The reference implementation of the resident transport surface:
    ``run(batches)`` takes ``(shard, messages)`` pairs and returns each
    shard's responses in batch order, ``generation(shard)`` reports the
    worker's incarnation (bumped whenever its state may have been
    lost), ``restart(shard)`` deliberately discards one worker (the
    rebalancer's building block, and the differential suite's
    worker-restart lever), and ``close()`` discards them all.  A closed
    backend rebuilds workers if used again — under fresh generations,
    so the tracker re-seeds them.
    """

    name = "serial"
    #: Marks the resident transport surface (run/generation/restart).
    resident = True

    def __init__(self):
        self._workers = {}
        self._gens = {}

    @property
    def alive(self):
        """Whether any shard worker currently holds state."""
        return bool(self._workers)

    def _worker(self, shard):
        worker = self._workers.get(shard)
        if worker is None:
            worker = self._workers[shard] = ResidentShardWorker()
            self._gens[shard] = self._gens.get(shard, -1) + 1
        return worker

    def generation(self, shard):
        """The shard worker's incarnation number (creates it if absent)."""
        self._worker(shard)
        return self._gens[shard]

    def run(self, batches):
        """Handle each ``(shard, messages)`` batch; responses in order."""
        return [
            [self._worker(shard).handle(message) for message in messages]
            for shard, messages in batches
        ]

    def probe(self, shard):
        """Health check: ``(pid, name, kernel, population)`` for a shard."""
        return self._worker(shard).handle(("probe",))

    def restart(self, shard):
        """Discard one shard's worker; the next use re-creates it under a
        new generation (so the tracker re-seeds its state)."""
        self._workers.pop(shard, None)

    def close(self):
        """Discard every worker (idempotent)."""
        self._workers.clear()

    def __repr__(self):
        return f"{type(self).__name__}()"


class ResidentThreadExecutor(ResidentSerialExecutor):
    """Resident in-process workers with shard batches fanned out on a
    thread pool.  One batch per shard per tick means no two threads ever
    touch the same worker concurrently; like :class:`ThreadExecutor`
    this buys no CPython wall-clock but exercises the concurrency seams
    with zero pickling.

    Args:
        max_workers: pool size (default: the ``ThreadPoolExecutor``
            default).
    """

    name = "thread"

    def __init__(self, max_workers=None):
        super().__init__()
        self._max_workers = max_workers
        self._pool = None

    def run(self, batches):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-resident",
            )
        # Workers are created on the calling thread: the pool threads
        # only ever touch fully constructed, per-shard-exclusive state.
        work = [(self._worker(shard), list(messages))
                for shard, messages in batches]
        futures = [
            self._pool.submit(
                lambda worker, messages: [worker.handle(m) for m in messages],
                worker, messages,
            )
            for worker, messages in work
        ]
        return [future.result() for future in futures]

    def close(self):
        super().close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ResidentProcessExecutor:
    """One single-worker, lazily created process pool per shard.

    A shared ``ProcessPoolExecutor`` cannot route a task to a chosen
    worker, and resident state is only sound if every message for a
    shard reaches the *same* process — so each shard gets its own
    one-process pool, started from an explicit multiprocessing context
    (``spawn`` by default) with the worker process named
    ``repro-resident-shard-N``.

    A worker process dying mid-run raises :class:`ShardWorkerCrashed`
    (naming the shard) instead of the raw ``BrokenProcessPool``; the
    broken pool is torn down on the spot, so ``close()`` still succeeds
    and the next run rebuilds the shard's pool under a fresh generation.

    Args:
        mp_context: multiprocessing context or start-method name
            (default ``"spawn"``).
    """

    name = "process"
    resident = True

    def __init__(self, mp_context=None):
        self._mp_context = mp_context
        self._pools = {}
        self._gens = {}

    @property
    def alive(self):
        """Whether any shard pool is currently held."""
        return bool(self._pools)

    def _pool(self, shard):
        pool = self._pools.get(shard)
        if pool is None:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(
                max_workers=1,
                mp_context=_resolve_mp_context(self._mp_context),
                initializer=_name_worker_process,
                initargs=(f"repro-resident-shard-{shard}",),
            )
            self._pools[shard] = pool
            self._gens[shard] = self._gens.get(shard, -1) + 1
        return pool

    def generation(self, shard):
        """The shard pool's incarnation number (creates it if absent)."""
        self._pool(shard)
        return self._gens[shard]

    def run(self, batches):
        """Submit each shard's messages to its own pool; gather in order."""
        from concurrent.futures.process import BrokenProcessPool

        futures = [
            (shard, self._pool(shard).submit(
                _run_resident_batch, shard, list(messages)
            ))
            for shard, messages in batches
        ]
        results = []
        for shard, future in futures:
            try:
                results.append(future.result())
            except BrokenProcessPool as exc:
                self._discard(shard)
                raise ShardWorkerCrashed(shard, exc) from exc
        return results

    def probe(self, shard):
        """Health check: ``(pid, name, kernel, population)`` for a shard."""
        return self.run([(shard, [("probe",)])])[0][0]

    def _discard(self, shard):
        pool = self._pools.pop(shard, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def restart(self, shard):
        """Gracefully retire one shard's worker process; the next use
        re-creates the pool under a new generation."""
        pool = self._pools.pop(shard, None)
        if pool is not None:
            pool.shutdown(wait=True)

    def close(self):
        """Shut every shard pool down (idempotent; survives crashes)."""
        for shard in list(self._pools):
            self._discard(shard)

    def __repr__(self):
        return f"ResidentProcessExecutor(mp_context={self._mp_context!r})"


def resolve_executor(spec):
    """Turn an executor spec into a backend instance.

    Args:
        spec: ``None`` (serial), one of the :data:`BACKENDS` names, or a
            ready-made backend — any object with ``map(fn, tasks)`` and
            ``close()`` is accepted as-is, so callers can inject a
            custom pool (pinned workers, an async bridge, ...).

    Returns:
        The backend instance.

    Raises:
        ValueError: for unknown names or objects missing the surface.
    """
    if spec is None or spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor()
    if spec == "process":
        return ProcessExecutor()
    if callable(getattr(spec, "map", None)) and callable(
        getattr(spec, "close", None)
    ):
        return spec
    raise ValueError(
        f"executor must be None, one of {BACKENDS}, or an object with "
        f"map()/close() methods, got {spec!r}"
    )


def resolve_resident_executor(spec):
    """Turn an executor spec into a *resident* transport instance.

    Args:
        spec: ``None`` (serial), one of the :data:`BACKENDS` names, or a
            ready-made resident transport — any object with
            ``run(batches)``, ``generation(shard)``, and ``close()`` is
            accepted as-is.

    Returns:
        The resident transport instance.

    Raises:
        ValueError: for unknown names or objects missing the surface.
    """
    if spec is None or spec == "serial":
        return ResidentSerialExecutor()
    if spec == "thread":
        return ResidentThreadExecutor()
    if spec == "process":
        return ResidentProcessExecutor()
    if (
        callable(getattr(spec, "run", None))
        and callable(getattr(spec, "generation", None))
        and callable(getattr(spec, "close", None))
    ):
        return spec
    raise ValueError(
        f"resident executor must be None, one of {BACKENDS}, or an object "
        f"with run()/generation()/close() methods, got {spec!r}"
    )
