"""The streaming miner as an explicit staged pipeline.

:class:`~repro.streaming.engine.StreamingConvoyMiner` used to be one
monolithic ``feed()``; this module names its four phases as stage
objects behind a small uniform interface and composes them:

::

    arrival ──> IngestStage ──> ClusterStage ──> TrackStage ──> EmitStage
                (reorder,        (DBSCAN /        (candidate      (records ->
                 time order,      incremental      advance,        convoys,
                 gap detect)      + delta)         gaps, prune)    counters)

Each stage is a plain object with a ``name`` and one or two methods; a
:class:`StreamingPipeline` wires them in sequence.  The staging is what
makes the parallel layer a drop-in: the track stage holds *any*
:class:`~repro.core.candidates.CandidateTracker`, so handing it a
:class:`~repro.streaming.sharding.ShardedCandidateTracker` fans the
tick's matching work across executor-backed shards without the other
stages — or the semantics — noticing.  (Yannakakis-style staged
evaluation makes the same move: fix the stage boundaries first, then
parallelize inside a stage.)

Stage contract, per in-order tick:

* ``IngestStage.ingest(t, snapshot)`` accepts one *arrival* (possibly
  out of order when built with a reorder buffer) and returns the ticks
  it released as ``(t, snapshot, gap)`` triples in strictly increasing
  time order, where ``gap`` names the skipped closed interval
  ``[last + 1, t - 1]`` (or None); ``drain()`` flushes the buffer tail.
* ``ClusterStage.cluster(snapshot)`` returns ``(clusters, delta)`` —
  the snapshot's density clusters plus the cross-tick
  :class:`~repro.clustering.incremental.ClusterDelta` when the
  configured clusterer maintains one (below-``m`` snapshots short-circuit
  to no clusters).
* ``TrackStage.step(t, clusters, delta, gap)`` severs chains across the
  gap, advances the candidate tracker (diff-aware when a delta is
  present), applies the bounded-memory window, and returns the closed
  :class:`~repro.core.candidates.ClosedCandidate` records;
  ``flush()`` closes every remaining chain.
* ``EmitStage.emit_tick(records, live_count, oldest_live_start)`` /
  ``emit_flush(records)`` convert records to
  :class:`~repro.core.convoy.Convoy` and keep the engine counters —
  and, when built with a write-through ``sink``
  (:class:`~repro.store.sink.StoreSink`), persist every closed convoy
  into a :class:`~repro.store.base.ConvoyStore` as one transaction per
  tick (``observe`` feeds the sink the tick's positions first, so
  stored convoys carry their bounding boxes).

The engine owns parameter validation and the public API; the pipeline
owns the data path.  Nothing here imports the engine, so stages are
individually constructible and testable.
"""

from __future__ import annotations

from repro.clustering.dbscan import dbscan


class IngestStage:
    """Restore and validate time order; detect gaps between ticks."""

    name = "ingest"

    def __init__(self, reorder=None):
        self.reorder = reorder
        self.last_time = None

    def ingest(self, t, snapshot):
        """Accept one arrival; return released ``(t, snapshot, gap)`` ticks."""
        if self.reorder is not None:
            released = self.reorder.push(t, snapshot)
        else:
            released = ((int(t), snapshot),)
        return [self._order(rt, rs) for rt, rs in released]

    def drain(self):
        """End of stream: release the reorder buffer's pending tail."""
        if self.reorder is None:
            return []
        return [self._order(rt, rs) for rt, rs in self.reorder.drain()]

    def release_all(self):
        """Mid-stream idle drain: force-release everything the reorder
        buffer holds, without ending the stream (no-op when there is no
        buffer — an unbuffered stage never holds snapshots back)."""
        if self.reorder is None:
            return []
        return [self._order(rt, rs) for rt, rs in self.reorder.release_all()]

    def _order(self, t, snapshot):
        if self.last_time is not None and t <= self.last_time:
            raise ValueError(
                f"snapshots must arrive in strictly increasing time order: "
                f"got t={t} after already ingesting t={self.last_time}"
            )
        gap = None
        if self.last_time is not None and t > self.last_time + 1:
            # The skipped points [last+1, t-1] had no data: no cluster can
            # exist there, so every chain's consecutive run ends.
            gap = (self.last_time + 1, t - 1)
        self.last_time = t
        return t, snapshot, gap


class ClusterStage:
    """Density-cluster one snapshot, with the cross-tick delta when
    the configured clusterer maintains one."""

    name = "cluster"

    def __init__(self, clusterer, eps, min_objects, counters,
                 backend="python"):
        self.clusterer = clusterer  # None = fresh DBSCAN per tick
        self._eps = eps
        self._m = min_objects
        self._backend = backend  # numeric backend for the fresh-DBSCAN path
        self.counters = counters

    def cluster(self, snapshot):
        """Return ``(clusters, delta)`` for the snapshot (``(), None`` when
        fewer than ``m`` objects reported — no cluster can exist)."""
        if len(snapshot) < self._m:
            return (), None
        delta = None
        if self.clusterer is None:
            clusters = dbscan(snapshot, self._eps, self._m,
                              backend=self._backend)
        else:
            cluster_with_delta = getattr(
                self.clusterer, "cluster_with_delta", None
            )
            if cluster_with_delta is not None:
                clusters, delta = cluster_with_delta(snapshot)
            else:
                clusters = self.clusterer.cluster(snapshot)
        self.counters["clustering_calls"] += 1
        self.counters["clustered_points"] += len(snapshot)
        return clusters, delta


class TrackStage:
    """Advance the candidate tracker: gap severing, (diff-aware)
    extension, bounded-memory pruning."""

    name = "track"

    def __init__(self, tracker, window=None):
        self.tracker = tracker
        self.window = window

    @property
    def live_count(self):
        return self.tracker.live_count

    @property
    def live_candidates(self):
        return self.tracker.live_candidates

    @property
    def oldest_live_start(self):
        """Earliest ``t_start`` among live chains (None when none live);
        the write-through sink's position-log retention horizon."""
        return self.tracker.oldest_live_start

    def step(self, t, clusters, delta, gap):
        """One in-order tick; returns the ClosedCandidate records."""
        records = []
        if gap is not None:
            records.extend(self.tracker.advance((), gap[0], gap[1]))
        # advance_delta falls back to the classic advance when no delta is
        # available (fresh DBSCAN, custom clusterers, gap ticks).
        records.extend(self.tracker.advance_delta(clusters, delta, t, t))
        if self.window is not None:
            records.extend(self.tracker.prune_longer_than(self.window))
        return records

    def flush(self):
        """Close every remaining chain; release tracker resources."""
        records = self.tracker.flush()
        self.close()
        return records

    def close(self):
        """Release tracker resources without flushing (error paths: the
        miner's ``close``/``__exit__`` reaches this so a failed run never
        leaves an executor pool behind)."""
        close = getattr(self.tracker, "close", None)
        if close is not None:
            close()


class EmitStage:
    """Convert closed records to convoys; maintain the engine counters;
    optionally write every closed convoy through a persistence sink."""

    name = "emit"

    def __init__(self, counters, sink=None):
        self.counters = counters
        #: Optional write-through :class:`~repro.store.sink.StoreSink`.
        self.sink = sink

    def observe(self, t, snapshot):
        """Show the sink one tick's positions before the tick runs (the
        bounding boxes of later closures are computed from these)."""
        if self.sink is not None:
            self.sink.observe(t, snapshot)

    def emit_tick(self, records, live_count, oldest_live_start=None):
        self.counters["snapshots"] += 1
        if live_count > self.counters["peak_candidates"]:
            self.counters["peak_candidates"] = live_count
        self.counters["convoys_emitted"] += len(records)
        convoys = [record.as_convoy() for record in records]
        if self.sink is not None:
            # One transaction per tick: the store always holds a clean
            # tick-prefix of the stream (crash safety's commit unit).
            self.sink.write(convoys)
            self.sink.commit(oldest_live_start)
        return convoys

    def emit_flush(self, records):
        self.counters["convoys_emitted"] += len(records)
        convoys = [record.as_convoy() for record in records]
        if self.sink is not None:
            self.sink.write(convoys)
            self.sink.commit()
        return convoys

    def close(self):
        """Release the sink (commits nothing new after a flush; owns-
        store sinks close their store)."""
        if self.sink is not None:
            self.sink.close()


class StreamingPipeline:
    """Compose the four stages into the miner's data path."""

    def __init__(self, ingest, cluster, track, emit):
        self.ingest = ingest
        self.cluster = cluster
        self.track = track
        self.emit = emit
        #: The stages in data-path order (for introspection and tests).
        self.stages = (ingest, cluster, track, emit)

    def feed(self, t, snapshot):
        """Push one arrival through every stage; return closed convoys."""
        closed = []
        for tick_t, tick_snapshot, gap in self.ingest.ingest(t, snapshot):
            closed.extend(self._run_tick(tick_t, tick_snapshot, gap))
        return closed

    def flush(self):
        """Drain the ingest stage, then close every remaining chain."""
        closed = []
        for tick_t, tick_snapshot, gap in self.ingest.drain():
            closed.extend(self._run_tick(tick_t, tick_snapshot, gap))
        closed.extend(self.emit.emit_flush(self.track.flush()))
        return closed

    def release_pending(self):
        """Idle drain: run every snapshot the ingest stage still holds
        through the remaining stages, without ending the stream."""
        closed = []
        for tick_t, tick_snapshot, gap in self.ingest.release_all():
            closed.extend(self._run_tick(tick_t, tick_snapshot, gap))
        return closed

    def close(self):
        """Release stage resources without flushing (error paths)."""
        self.track.close()
        self.emit.close()

    def _run_tick(self, t, snapshot, gap):
        self.emit.observe(t, snapshot)
        clusters, delta = self.cluster.cluster(snapshot)
        records = self.track.step(t, clusters, delta, gap)
        return self.emit.emit_tick(records, self.track.live_count,
                                   self.track.oldest_live_start)
