"""Streaming convoy discovery — Algorithm 1 restructured as an online engine.

CMC (Section 4, Algorithm 1) is snapshot-sequential by construction:
cluster the objects alive at time ``t``, join the clusters against the live
candidate set, report chains that die after ``k`` points.  Nothing in that
loop needs the *future* of the data, so the same semantics can run online:
:class:`StreamingConvoyMiner` ingests one snapshot per call, pays exactly
one snapshot-clustering pass plus one candidate-intersection step per tick,
and emits a convoy the moment its chain fails to extend — no full-history
recompute, ever.

Internally the miner is a thin composition over the explicit staged
pipeline of :mod:`repro.streaming.pipeline` —

::

    feed(t, snapshot) ──> ingest ──> cluster ──> track ──> emit

— the engine validates parameters, builds the stages, and forwards; the
stages own the data path.  Each stage is independently swappable:

* **ingest** carries the optional watermarked
  :class:`~repro.streaming.reorder.ReorderBuffer` (out-of-order
  tolerance) and the gap rule's bookkeeping;
* **cluster** runs a fresh :func:`~repro.clustering.dbscan.dbscan` per
  tick by default, or the cross-tick delta maintenance of
  :class:`~repro.clustering.incremental.IncrementalSnapshotClusterer`
  (``clusterer="incremental"``), whose
  :class:`~repro.clustering.incremental.ClusterDelta` flows on to the
  tracker so both per-tick costs are proportional to what changed;
* **track** holds the candidate tracker — the classic
  :class:`~repro.core.candidates.CandidateTracker`, or, with
  ``shards=``, a
  :class:`~repro.streaming.sharding.ShardedCandidateTracker` that fans
  the tick's matching work across shards on a pluggable executor
  backend (``executor="serial" | "thread" | "process"``) while keeping
  emissions bit-for-bit identical;
* **emit** converts closed chains to convoys and keeps the counters.

The offline :func:`repro.core.cmc.cmc` delegates its per-snapshot step to
this engine, so the chaining semantics (including the ``paper_semantics``
switch and the gap rule — see :mod:`repro.core.candidates`) exist in one
place with two drivers: the batch sweep over a materialized
:class:`~repro.trajectory.TrajectoryDatabase`, and the push-based streaming
path fed by the adapters in :mod:`repro.streaming.source`.

Snapshots normally must arrive in strictly increasing time order; a
``reorder=`` buffer (:mod:`repro.streaming.reorder`) relaxes that to
bounded out-of-order tolerance — arrivals are held behind a watermark,
merged on duplicate timestamps, and ingested in restored order, with the
configured policy deciding what happens to hopelessly late data.

Memory: with ``window=None`` the engine holds the live candidate chains,
whose per-step history grows with chain age — exact, but unbounded on an
infinite stream with an eternal convoy.  A ``window`` caps every chain at
that many time points: chains reaching the cap are closed (reported when
they qualify) and their objects re-seed fresh chains, so convoys outliving
the window surface as consecutive fragments and memory stays
O(live chains x window).
"""

from __future__ import annotations

from repro.clustering.incremental import IncrementalSnapshotClusterer
from repro.clustering.numeric import validate_backend, validate_match_kernel
from repro.core.candidates import CandidateTracker
from repro.streaming.pipeline import (
    ClusterStage,
    EmitStage,
    IngestStage,
    StreamingPipeline,
    TrackStage,
)
from repro.streaming.reorder import ReorderBuffer
from repro.streaming.sharding import ShardedCandidateTracker
from repro.store.base import ConvoyStore
from repro.store.sink import StoreSink
from repro.store.sqlite import open_store

#: Counter keys a miner maintains in its ``counters`` dict.
COUNTER_KEYS = (
    "snapshots",
    "clustering_calls",
    "clustered_points",
    "convoys_emitted",
    "peak_candidates",
)


class StreamingConvoyMiner:
    """Online convoy discovery over a pushed sequence of snapshots.

    Args:
        m: minimum number of objects per convoy.
        k: minimum lifetime in consecutive time points.
        eps: density distance threshold ``e``.
        paper_semantics: reproduce Algorithm 1's candidate rule verbatim
            instead of the default complete semantics (see
            :mod:`repro.core.candidates`).
        window: optional bounded-memory cap, in time points (``>= k``).
            None (default) is exact; a finite window fragments convoys that
            outlive it (see the module docstring).
        counters: optional dict receiving bookkeeping totals (the
            ``COUNTER_KEYS``); a fresh dict is created when omitted and is
            always available as :attr:`counters`.
        clusterer: snapshot-clustering strategy.  ``None`` or ``"full"``
            (default) runs a fresh :func:`~repro.clustering.dbscan.dbscan`
            pass per tick; ``"incremental"`` maintains the previous tick's
            clustering through an
            :class:`~repro.clustering.incremental.IncrementalSnapshotClusterer`
            (identical clusters, hence identical convoys, but much faster
            when consecutive snapshots overlap heavily); any object with a
            ``cluster(snapshot) -> list[set]`` method is used as-is, and
            one that also exposes ``cluster_with_delta`` (as the
            incremental clusterer does) feeds its cluster diff to the
            candidate tracker's diff-aware
            :meth:`~repro.core.candidates.CandidateTracker.advance_delta`
            step.  The chosen strategy is introspectable as
            :attr:`clusterer` (``None`` for the full pass).
        reorder: optional out-of-order tolerance in front of ``feed``.  A
            :class:`~repro.streaming.reorder.ReorderBuffer` instance, or
            a dict of its keyword arguments (``allowed_lateness``,
            ``max_pending``, ``late_policy``) from which one is built
            sharing this miner's counters dict.  ``feed`` then accepts
            shuffled timestamps within the buffer's watermark: each call
            pushes the arrival into the buffer and ingests whatever the
            watermark released (possibly nothing, possibly several
            snapshots), and ``flush`` drains the buffer before closing
            chains.  The chosen buffer is introspectable as
            :attr:`reorder` (``None`` for the strict in-order contract).
        shards: optional shard count for the candidate tracker.  With
            ``shards=N`` the track stage holds a
            :class:`~repro.streaming.sharding.ShardedCandidateTracker`
            partitioning live candidates by support-cluster id across
            ``N`` shards; emissions stay bit-for-bit identical to the
            unsharded run.  ``None`` (default) keeps the classic tracker
            (``shards=1`` still routes through the sharding layer, which
            is how its overhead is measured).
        executor: executor backend for the per-shard work — ``"serial"``
            (default), ``"thread"``, ``"process"``, or a ready-made
            backend object (see :mod:`repro.streaming.executor`).  Only
            meaningful with ``shards``; pooled backends are released by
            :meth:`flush`.
        resident: keep each shard's candidate state inside long-lived
            workers and ship per-tick deltas instead of full shard
            batches (see :mod:`repro.streaming.sharding`'s resident
            protocol).  Only meaningful with ``shards``; emissions stay
            bit-for-bit identical.
        backend: numeric backend for the per-tick hot kernels —
            ``"python"`` (default) or ``"vector"`` (contiguous-array
            batch kernels, numpy-accelerated when numpy is importable;
            see :mod:`repro.clustering.numeric`).  Threads through the
            snapshot clustering (fresh DBSCAN or, with
            ``clusterer="incremental"``, the incremental clusterer) and
            the candidate tracker's matching kernel; emissions are
            bit-for-bit identical either way.  A pre-built clusterer
            instance keeps whatever backend it was constructed with.
            Introspectable as :attr:`backend`.
        match_kernel: optional match-kernel override for the candidate
            tracker — one of
            :data:`~repro.clustering.numeric.MATCH_KERNELS`.
            ``"scalar"`` / ``"merge"`` / ``"bitset"`` pin that kernel;
            ``"auto"`` lets a
            :class:`~repro.clustering.numeric.KernelDispatch` pick per
            tick from the measured join shape (learning not to batch
            small deltas).  ``None`` (default) follows ``backend``.
            Every kernel produces identical matches, so emissions are
            bit-for-bit the same; introspectable as
            :attr:`match_kernel`.
        store: optional write-through persistence.  A
            :class:`~repro.store.base.ConvoyStore` instance, or a path
            (``str``/``os.PathLike``) from which a SQLite store is
            opened (and closed again when the miner closes).  Every
            closed convoy is persisted the tick it closes — one
            transaction per tick, idempotent on convoy identity, so a
            crashed-and-restarted stream resumes without duplicates —
            together with its bounding box over the positions its
            members reported.  Emissions are untouched; the chosen
            store is introspectable as :attr:`store` (None without
            persistence).  Adds ``stored_convoys`` /
            ``replayed_convoys`` to the counters.

    Usage::

        miner = StreamingConvoyMiner(m=2, k=5, eps=2.0)
        for t, snapshot in source:            # {object_id: (x, y)} per tick
            for convoy in miner.feed(t, snapshot):
                handle(convoy)                # emitted as soon as it closes
        tail = miner.flush()                  # convoys still open at the end

    Snapshots must arrive in strictly increasing time order (a
    ``reorder=`` buffer relaxes this to bounded tolerance).  A skipped
    time point is a point where no object reported — per Definition 3's "k
    *consecutive* time points" no chain may bridge it, so a gap closes every
    live chain (emitting the qualifying ones at the next ``feed``).
    """

    def __init__(self, m, k, eps, paper_semantics=False, window=None,
                 counters=None, clusterer=None, reorder=None, shards=None,
                 executor=None, resident=False, backend=None, store=None,
                 match_kernel=None):
        #: The numeric backend driving the hot kernels ("python"/"vector").
        self.backend = validate_backend(backend)
        #: The match-kernel override (None follows the backend).
        self.match_kernel = validate_match_kernel(match_kernel)
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if window is not None and window < k:
            raise ValueError(f"window must be >= k={k}, got {window}")
        if executor is not None and shards is None:
            raise ValueError(
                "executor requires shards: pass shards=N to fan the "
                "candidate tracker out (executor picks where the shard "
                "batches run)"
            )
        if resident and shards is None:
            raise ValueError(
                "resident requires shards: pass shards=N to give the "
                "long-lived workers a partition to hold"
            )
        self.counters = counters if counters is not None else {}
        for key in COUNTER_KEYS:
            self.counters.setdefault(key, 0)
        if reorder is None:
            self.reorder = None
        elif isinstance(reorder, ReorderBuffer):
            self.reorder = reorder
        elif isinstance(reorder, dict):
            self.reorder = ReorderBuffer(counters=self.counters, **reorder)
        else:
            raise ValueError(
                "reorder must be None, a ReorderBuffer, or a dict of "
                f"ReorderBuffer keyword arguments, got {reorder!r}"
            )
        # The tracker validates m and k, and adds its own counter keys
        # (splice/re-intersection, and shard totals when sharded) to the
        # shared dict.
        if shards is None:
            tracker = CandidateTracker(
                m, k, paper_semantics=paper_semantics,
                counters=self.counters, backend=self.backend,
                match_kernel=self.match_kernel,
            )
        else:
            tracker = ShardedCandidateTracker(
                m, k, shards=shards, executor=executor,
                paper_semantics=paper_semantics, counters=self.counters,
                backend=self.backend, resident=resident,
                match_kernel=self.match_kernel,
            )
        self.shards = None if shards is None else int(shards)
        self._m = m
        self._k = k
        self._eps = eps
        self._window = window
        if clusterer is None or clusterer == "full":
            self.clusterer = None
        elif clusterer == "incremental":
            self.clusterer = IncrementalSnapshotClusterer(
                eps, m, backend=self.backend
            )
        elif callable(getattr(clusterer, "cluster", None)):
            self.clusterer = clusterer
        else:
            raise ValueError(
                "clusterer must be None, 'full', 'incremental', or an "
                f"object with a cluster() method, got {clusterer!r}"
            )
        if store is None:
            self.store = None
            sink = None
        elif isinstance(store, ConvoyStore):
            self.store = store
            sink = StoreSink(store, counters=self.counters)
        else:
            # A path: the miner owns the store it opened, so closing
            # the miner closes the database too.
            self.store = open_store(store)
            sink = StoreSink(self.store, counters=self.counters,
                             owns_store=True)
        #: The staged data path (ingest → cluster → track → emit); see
        #: :mod:`repro.streaming.pipeline`.
        self.pipeline = StreamingPipeline(
            IngestStage(self.reorder),
            ClusterStage(self.clusterer, eps, m, self.counters,
                         backend=self.backend),
            TrackStage(tracker, window),
            EmitStage(self.counters, sink=sink),
        )
        self._flushed = False

    @property
    def last_time(self):
        """Time of the most recently fed snapshot (None before the first)."""
        return self.pipeline.ingest.last_time

    @property
    def live_candidate_count(self):
        """Number of currently open candidate chains."""
        return self.pipeline.track.live_count

    @property
    def live_candidates(self):
        """The open chains as convoy-shaped records (for introspection)."""
        return self.pipeline.track.live_candidates

    def feed(self, t, snapshot):
        """Ingest the snapshot at time ``t``; return the convoys it closed.

        Args:
            t: integer time point, strictly greater than the previous one —
                unless the miner was built with ``reorder=...``, in which
                case any timestamp the buffer's watermark and late policy
                accept is legal, and this call ingests whatever the buffer
                released (so the returned convoys may belong to earlier
                pushes, or the call may buffer silently and return none).
            snapshot: mapping ``{object_id: (x, y)}`` of every object that
                reported at ``t``.  May be empty (which ends every chain).

        Returns:
            List of :class:`~repro.core.convoy.Convoy` whose chains ended at
            this step with lifetime >= k, in discovery order.
        """
        if self._flushed:
            raise RuntimeError("stream already flushed; create a new miner")
        return self.pipeline.feed(t, snapshot)

    def release_pending(self):
        """Force the reorder buffer's pending snapshots through *now*.

        The idle-drain seam for quiescent feeds: a capacity-only
        ``reorder`` buffer (``max_pending`` without ``allowed_lateness``)
        releases only under arrival pressure, so when the feed goes
        quiet its last ``< max_pending`` snapshots would stay buffered
        indefinitely — neither mined nor lost, just stalled.  A caller
        that knows the feed is idle (the multi-tenant service, a
        session-timeout sweep) uses this to ingest the tail without
        ending the stream: the buffered snapshots run through the
        pipeline in time order and the convoys they close are returned.
        The miner stays live — ``feed`` keeps working, though arrivals
        at or below the released timestamps are now late and fall to
        the buffer's ``late_policy``.  A no-op returning ``[]`` for
        miners without a reorder buffer.
        """
        if self._flushed:
            raise RuntimeError("stream already flushed; create a new miner")
        return self.pipeline.release_pending()

    def flush(self):
        """End the stream: close every open chain, return the qualifiers.

        Chains alive at the final snapshot are real convoys when they
        already span >= k points — Algorithm 1 reproductions classically
        drop them because the pseudocode only reports on failed extension.
        With ``reorder=...`` the buffer is drained first — its pending
        snapshots are ingested in time order, so convoys they close (or
        extend to qualification) are part of the returned tail.  Pooled
        executor backends of a sharded tracker are released here.
        After ``flush`` the miner is finished; further ``feed`` calls raise.
        Calling ``flush`` again returns an empty list.
        """
        if self._flushed:
            return []
        closed = self.pipeline.flush()
        self._flushed = True
        return closed

    def close(self):
        """Release pooled resources (idempotent; emits nothing).

        ``flush`` already releases the tracker's executor backend on the
        happy path, but an exception mid-``feed`` (a late-policy
        ``raise`` in the reorder buffer, a crashed shard worker) used to
        leave a live process pool behind.  ``close`` exists for exactly
        that path — and the miner is a context manager so callers get it
        via ``with``::

            with StreamingConvoyMiner(...) as miner:
                ...

        A closed-but-unflushed miner can still ``flush``: pooled
        backends rebuild lazily (resident workers re-seed from the
        parent's authoritative state), so ``close`` never loses chains
        — though a store the miner itself opened from a path is closed
        here and stays closed.
        """
        self.pipeline.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False


def mine_stream(source, m, k, eps, paper_semantics=False, window=None,
                counters=None, clusterer=None, reorder=None, shards=None,
                executor=None, resident=False, backend=None, store=None,
                match_kernel=None):
    """Drive a :class:`StreamingConvoyMiner` over a snapshot source.

    Args:
        source: iterable of ``(t, {object_id: (x, y)})`` ticks in strictly
            increasing time order — any adapter from
            :mod:`repro.streaming.source`, or a plain generator.  With
            ``reorder=`` the order requirement relaxes to whatever the
            buffer's watermark and late policy accept (e.g. the jittered
            feeds of ``synthetic_stream(..., jitter=)``).
        m, k, eps: the convoy-query parameters.
        paper_semantics, window, counters, clusterer, reorder, shards,
            executor, resident, backend, store, match_kernel: forwarded
            to the miner (``store`` persists every convoy as it closes;
            a path opens a SQLite store that is closed again before
            returning).

    Returns:
        List of :class:`~repro.core.convoy.Convoy` in discovery order,
        including the end-of-stream flush.
    """
    miner = StreamingConvoyMiner(
        m, k, eps, paper_semantics=paper_semantics, window=window,
        counters=counters, clusterer=clusterer, reorder=reorder,
        shards=shards, executor=executor, resident=resident,
        backend=backend, store=store, match_kernel=match_kernel,
    )
    convoys = []
    # The context manager releases pooled backends even when the source
    # or a shard worker raises mid-stream (the pool-leak regression).
    with miner:
        for t, snapshot in source:
            convoys.extend(miner.feed(t, snapshot))
        convoys.extend(miner.flush())
    return convoys
