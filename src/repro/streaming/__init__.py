"""Streaming convoy discovery.

Algorithm 1's snapshot loop, restructured as an online engine: snapshots
are pushed in one at a time, each tick costs one DBSCAN pass plus one
candidate-intersection step, and convoys are emitted the moment their
chains fail to extend.  The offline :func:`repro.core.cmc.cmc` drives the
same engine over a materialized database, so both paths share one
implementation of the chaining semantics.

* :class:`~repro.streaming.engine.StreamingConvoyMiner` — the engine;
* :func:`~repro.streaming.engine.mine_stream` — drive a miner over a
  snapshot source and collect the answer;
* :mod:`~repro.streaming.source` — snapshot sources: database replay, CSV
  replay, and seeded synthetic generators for scale runs (with optional
  bounded ``jitter=`` to emulate shuffled GPS feeds);
* :mod:`~repro.streaming.reorder` — the watermarked
  :class:`~repro.streaming.reorder.ReorderBuffer` that restores time
  order in front of ``feed`` (``StreamingConvoyMiner(reorder=...)``).
"""

from repro.streaming.engine import StreamingConvoyMiner, mine_stream
from repro.streaming.reorder import LATE_POLICIES, ReorderBuffer, reorder_ticks
from repro.streaming.source import (
    churn_stream,
    jitter_ticks,
    replay_csv,
    replay_database,
    synthetic_stream,
)

__all__ = [
    "LATE_POLICIES",
    "ReorderBuffer",
    "StreamingConvoyMiner",
    "churn_stream",
    "jitter_ticks",
    "mine_stream",
    "reorder_ticks",
    "replay_csv",
    "replay_database",
    "synthetic_stream",
]
