"""Streaming convoy discovery.

Algorithm 1's snapshot loop, restructured as an online engine and, one
level down, as an explicit staged pipeline — ingest → cluster → track →
emit — whose track stage can fan out across executor-backed shards.
Snapshots are pushed in one at a time, each tick costs one
snapshot-clustering pass plus one candidate-intersection step, and
convoys are emitted the moment their chains fail to extend.  The offline
:func:`repro.core.cmc.cmc` drives the same engine over a materialized
database, so both paths share one implementation of the chaining
semantics.

* :class:`~repro.streaming.engine.StreamingConvoyMiner` — the engine
  (a thin composition of the pipeline stages);
* :func:`~repro.streaming.engine.mine_stream` — drive a miner over a
  snapshot source and collect the answer;
* :mod:`~repro.streaming.pipeline` — the named stages
  (:class:`~repro.streaming.pipeline.IngestStage`,
  :class:`~repro.streaming.pipeline.ClusterStage`,
  :class:`~repro.streaming.pipeline.TrackStage`,
  :class:`~repro.streaming.pipeline.EmitStage`) and the
  :class:`~repro.streaming.pipeline.StreamingPipeline` composing them;
* :mod:`~repro.streaming.sharding` — the
  :class:`~repro.streaming.sharding.ShardedCandidateTracker`
  partitioning live candidates by support-cluster id
  (``StreamingConvoyMiner(shards=N, executor=...)``);
* :mod:`~repro.streaming.executor` — the pluggable backends the shard
  batches run on (serial / thread / process), including the *resident*
  transports (``StreamingConvoyMiner(..., resident=True)``) whose
  long-lived workers hold shard state between ticks so only per-tick
  deltas cross the boundary;
* :mod:`~repro.streaming.source` — snapshot sources: database replay, CSV
  replay, and seeded synthetic generators for scale runs (with optional
  bounded ``jitter=`` to emulate shuffled GPS feeds, and a ``hotspots=``
  skew knob on ``churn_stream`` for unbalanced shard load);
* :mod:`~repro.streaming.reorder` — the watermarked
  :class:`~repro.streaming.reorder.ReorderBuffer` that restores time
  order in front of ``feed`` (``StreamingConvoyMiner(reorder=...)``),
  and the :class:`~repro.streaming.reorder.WatermarkFrontier` merging
  per-shard buffers into one global in-order release.
"""

from repro.streaming.engine import StreamingConvoyMiner, mine_stream
from repro.streaming.executor import (
    BACKENDS,
    ProcessExecutor,
    ResidentProcessExecutor,
    ResidentSerialExecutor,
    ResidentShardWorker,
    ResidentThreadExecutor,
    SerialExecutor,
    ShardWorkerCrashed,
    ThreadExecutor,
    resolve_executor,
    resolve_resident_executor,
)
from repro.streaming.pipeline import (
    ClusterStage,
    EmitStage,
    IngestStage,
    StreamingPipeline,
    TrackStage,
)
from repro.streaming.reorder import (
    LATE_POLICIES,
    ReorderBuffer,
    WatermarkFrontier,
    reorder_ticks,
)
from repro.streaming.sharding import ShardedCandidateTracker, rendezvous_shard
from repro.streaming.source import (
    churn_stream,
    hotspot_drift_scenario,
    hotspot_drift_stream,
    jitter_ticks,
    replay_csv,
    replay_database,
    synthetic_stream,
)

__all__ = [
    "BACKENDS",
    "ClusterStage",
    "EmitStage",
    "IngestStage",
    "LATE_POLICIES",
    "ProcessExecutor",
    "ReorderBuffer",
    "ResidentProcessExecutor",
    "ResidentSerialExecutor",
    "ResidentShardWorker",
    "ResidentThreadExecutor",
    "SerialExecutor",
    "ShardWorkerCrashed",
    "ShardedCandidateTracker",
    "StreamingConvoyMiner",
    "StreamingPipeline",
    "ThreadExecutor",
    "TrackStage",
    "WatermarkFrontier",
    "churn_stream",
    "hotspot_drift_scenario",
    "hotspot_drift_stream",
    "jitter_ticks",
    "mine_stream",
    "rendezvous_shard",
    "reorder_ticks",
    "replay_csv",
    "replay_database",
    "resolve_executor",
    "resolve_resident_executor",
    "synthetic_stream",
]
