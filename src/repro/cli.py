"""Command-line interface for convoy discovery.

Seven subcommands mirror the workflows a practitioner needs:

* ``repro-convoy discover`` — run a convoy query over a CSV of
  ``object_id,t,x,y`` rows with any of the four algorithms;
* ``repro-convoy stream`` — run the same query online, snapshot by
  snapshot, printing each convoy the moment it closes (from a CSV replay
  or a seeded synthetic stream); ``--store convoys.db`` persists every
  convoy into a crash-safe SQLite store as it closes; a mid-stream
  Ctrl-C commits every completed tick and exits 130;
* ``repro-convoy serve`` — run the async multi-tenant ingestion service:
  many independent tenant streams multiplexed over a shared worker
  pool, NDJSON over TCP (see :mod:`repro.service`);
* ``repro-convoy query`` — answer time-window / membership / bbox /
  top-k questions over a persisted convoy store, from its indexes;
* ``repro-convoy stats`` — print a dataset's Table 3-style statistics;
* ``repro-convoy simplify`` — batch line-simplification of a CSV with DP,
  DP+, or DP*, reporting the vertex reduction;
* ``repro-convoy generate`` — write one of the paper-like synthetic
  datasets (truck / cattle / car / taxi) to CSV for experimentation.

All subcommands print human-readable text to stdout; ``discover`` and
``stream`` can also write the answer as CSV, and ``query --json``
prints machine-readable JSON for downstream tooling.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import time

from repro.clustering.incremental import IncrementalSnapshotClusterer
from repro.clustering.numeric import MATCH_KERNELS, NUMERIC_BACKENDS, have_numpy
from repro.core.cmc import cmc
from repro.core.cuts import VARIANTS, cuts
from repro.core.verification import normalize_convoys
from repro.datasets.paperlike import DATASETS
from repro.geometry.bbox import BoundingBox
from repro.io.csv_io import load_trajectories_csv, save_trajectories_csv
from repro.service import DEFAULT_MAX_QUEUE, IngestionServer
from repro.simplification import SIMPLIFIERS, simplification_report
from repro.store import TOP_K_KEYS, convoy_identity, open_store
from repro.streaming import (
    BACKENDS,
    LATE_POLICIES,
    StreamingConvoyMiner,
    replay_csv,
    synthetic_stream,
)


def build_parser():
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-convoy",
        description="Convoy discovery in trajectory databases "
        "(Jeung et al., VLDB 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    discover = sub.add_parser(
        "discover", help="run a convoy query over a trajectory CSV"
    )
    discover.add_argument("csv", help="input file with object_id,t,x,y rows")
    discover.add_argument("-m", type=int, required=True,
                          help="minimum objects per convoy")
    discover.add_argument("-k", type=int, required=True,
                          help="minimum lifetime in consecutive time points")
    discover.add_argument("-e", "--eps", type=float, required=True,
                          help="density distance threshold e")
    discover.add_argument(
        "--algorithm", default="cuts*",
        choices=["cmc"] + sorted(VARIANTS),
        help="discovery algorithm (default: cuts*)",
    )
    discover.add_argument("--delta", type=float, default=None,
                          help="simplification tolerance (default: auto)")
    discover.add_argument("--lam", type=int, default=None,
                          help="time partition length (default: auto)")
    discover.add_argument("--output", default=None,
                          help="also write the answer as CSV to this path")

    stream = sub.add_parser(
        "stream",
        help="run an online convoy query, printing convoys as they close",
    )
    stream.add_argument(
        "csv", nargs="?", default=None,
        help="input file with object_id,t,x,y rows (omit with --synthetic)",
    )
    stream.add_argument("-m", type=int, required=True,
                        help="minimum objects per convoy")
    stream.add_argument("-k", type=int, required=True,
                        help="minimum lifetime in consecutive time points")
    stream.add_argument("-e", "--eps", type=float, required=True,
                        help="density distance threshold e")
    stream.add_argument(
        "--synthetic", metavar="NxT", default=None,
        help="mine a seeded synthetic stream of N objects over T snapshots "
        "instead of a CSV (e.g. 500x200)",
    )
    stream.add_argument("--seed", type=int, default=0,
                        help="synthetic stream seed (default: 0)")
    stream.add_argument(
        "--jitter", type=int, default=0, metavar="J",
        help="with --synthetic: emit the stream out of order, every tick "
        "displaced by < J time units (pair with --allowed-lateness >= J)",
    )
    stream.add_argument(
        "--allowed-lateness", type=int, default=None, metavar="L",
        help="tolerate out-of-order snapshots through a watermarked "
        "reorder buffer: a tick is ingested once the feed has advanced L "
        "time units past it (0 keeps strict order; omit to disable)",
    )
    stream.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="cap the reorder buffer at N pending snapshots (the oldest "
        "are force-released beyond it); usable with or without "
        "--allowed-lateness",
    )
    stream.add_argument(
        "--late-policy", default="raise", choices=sorted(LATE_POLICIES),
        help="what to do with a snapshot arriving after its timestamp was "
        "already released: fail loudly, drop it, or amend the stale fixes "
        "into the next pending snapshot (default: raise)",
    )
    stream.add_argument(
        "--window", type=int, default=None,
        help="bounded-memory cap: close candidate chains after this many "
        "time points (>= k; convoys outliving it are fragmented)",
    )
    stream.add_argument("--paper-semantics", action="store_true",
                        help="use Algorithm 1's published candidate rule")
    stream.add_argument(
        "--incremental", action="store_true",
        help="maintain the previous snapshot's clustering across ticks and "
        "propagate its cluster diff into the candidate tracker (identical "
        "convoys; faster when most objects stand still between snapshots)",
    )
    stream.add_argument(
        "--churn-threshold", default=None, metavar="FRACTION|adaptive",
        help="with --incremental: fall back to a full clustering pass when "
        "more than this fraction of the snapshot changed (default 0.35), "
        "or 'adaptive' to estimate the crossover from measured pass costs",
    )
    stream.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="fan the candidate tracker out across N shards (live "
        "candidates partitioned by support-cluster id; identical convoys)",
    )
    stream.add_argument(
        "--executor", default=None, choices=sorted(BACKENDS),
        help="where the shard batches run (with --shards): inline, a "
        "thread pool, or a process pool (default: serial)",
    )
    stream.add_argument(
        "--resident", action="store_true",
        help="keep each shard's candidate state inside a long-lived "
        "worker and ship per-tick deltas instead of full shard batches "
        "(with --shards; identical convoys)",
    )
    stream.add_argument(
        "--backend", default="python", choices=list(NUMERIC_BACKENDS),
        help="numeric backend for the per-tick hot kernels: pure-Python "
        "dict/set loops, or batched contiguous-array kernels "
        "(numpy-accelerated when available; identical convoys either "
        "way; default: python)",
    )
    stream.add_argument(
        "--match-kernel", default=None, choices=list(MATCH_KERNELS),
        help="candidate-match kernel for the per-tick join: 'auto' learns "
        "per tick from measured costs, or pin 'scalar' (pairwise sets), "
        "'merge' (sorted merge-intersect), or 'bitset' (packed-word "
        "AND+popcount); identical convoys either way (default: follow "
        "--backend)",
    )
    stream.add_argument(
        "--pace", type=float, default=0.0, metavar="SECONDS",
        help="sleep SECONDS before each snapshot — replay a recorded "
        "stream at a live cadence (default: 0, as fast as possible)",
    )
    stream.add_argument("--quiet", action="store_true",
                        help="suppress per-convoy lines; print the summary only")
    stream.add_argument("--output", default=None,
                        help="also write the answer as CSV to this path")
    stream.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the answer as machine-readable JSON (normalized "
        "convoys plus the full counters dict, including reorder and shard "
        "counters) to this path",
    )
    stream.add_argument(
        "--store", default=None, metavar="DB",
        help="persist every convoy into this SQLite store as it closes "
        "(one transaction per tick, crash-safe, idempotent on convoy "
        "identity — re-running the same stream adds nothing); query it "
        "back with the 'query' subcommand",
    )

    serve = sub.add_parser(
        "serve",
        help="run the async multi-tenant ingestion service (NDJSON over "
        "TCP; see repro.service for the protocol)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: 0 — pick a free one and "
                       "print it)")
    serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker threads shared by every tenant's miner steps "
        "(default: 4)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=DEFAULT_MAX_QUEUE, metavar="N",
        help="per-tenant ingestion high-water mark: past N queued "
        "snapshots the service stops reading that tenant's feed until "
        "the dispatcher catches up (credit-based, nothing is dropped; "
        f"default: {DEFAULT_MAX_QUEUE})",
    )

    query = sub.add_parser(
        "query",
        help="answer indexed queries over a persisted convoy store",
    )
    query.add_argument("db", help="SQLite convoy store written by "
                       "'stream --store' (or the ConvoyStore API)")
    query.add_argument(
        "--alive", default=None, metavar="T1:T2",
        help="convoys whose interval intersects the closed window "
        "[T1, T2] (also restricts --top-k)",
    )
    query.add_argument(
        "--containing", default=None, metavar="OBJECT",
        help="convoys the given object is a member of (matched as a "
        "string and, when the text parses, as an integer id too)",
    )
    query.add_argument(
        "--intersecting", default=None, metavar="X1:Y1:X2:Y2",
        help="convoys whose stored bounding box intersects the query box",
    )
    query.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="enumerate only the K highest-ranked convoys (lazy "
        "ranked-enumeration heap merge over the store's rank indexes)",
    )
    query.add_argument(
        "--by", default="size", choices=sorted(TOP_K_KEYS),
        help="ranking dimension for --top-k (default: size)",
    )
    query.add_argument("--json", action="store_true",
                       help="print the answer as JSON instead of text")

    stats = sub.add_parser("stats", help="print dataset statistics")
    stats.add_argument("csv", help="input file with object_id,t,x,y rows")

    simplify = sub.add_parser(
        "simplify", help="line-simplify every trajectory in a CSV"
    )
    simplify.add_argument("csv", help="input file")
    simplify.add_argument("output", help="output CSV for the simplified data")
    simplify.add_argument("--method", default="dp", choices=sorted(SIMPLIFIERS),
                          help="simplifier (default: dp)")
    simplify.add_argument("--delta", type=float, required=True,
                          help="tolerance δ")

    generate = sub.add_parser(
        "generate", help="write a paper-like synthetic dataset to CSV"
    )
    generate.add_argument("dataset", choices=sorted(DATASETS),
                          help="which Table 3 dataset shape to emulate")
    generate.add_argument("output", help="output CSV path")
    generate.add_argument("--scale", type=float, default=0.05,
                          help="time-domain scale factor (default: 0.05)")
    generate.add_argument("--seed", type=int, default=None,
                          help="override the generator seed")
    return parser


def _cmd_discover(args, out):
    db = load_trajectories_csv(args.csv)
    if len(db) == 0:
        print("input contains no trajectories", file=out)
        return 1
    started = time.perf_counter()
    if args.algorithm == "cmc":
        convoys = normalize_convoys(cmc(db, args.m, args.k, args.eps))
    else:
        result = cuts(
            db, args.m, args.k, args.eps,
            delta=args.delta, lam=args.lam, variant=args.algorithm,
        )
        convoys = result.convoys
    elapsed = time.perf_counter() - started
    print(
        f"{len(convoys)} convoy(s) found in {elapsed:.2f}s "
        f"({args.algorithm}, m={args.m}, k={args.k}, e={args.eps:g})",
        file=out,
    )
    for convoy in convoys:
        members = ",".join(str(o) for o in sorted(convoy.objects, key=str))
        print(f"  t=[{convoy.t_start},{convoy.t_end}] objects={members}", file=out)
    if args.output:
        _write_answer_csv(convoys, args.output)
        print(f"answer written to {args.output}", file=out)
    return 0


def _write_answer_csv(convoys, path):
    with open(path, "w") as handle:
        handle.write("t_start,t_end,size,objects\n")
        for convoy in convoys:
            members = ";".join(str(o) for o in sorted(convoy.objects, key=str))
            handle.write(
                f"{convoy.t_start},{convoy.t_end},{convoy.size},{members}\n"
            )


def _parse_synthetic_shape(text):
    """Parse the ``--synthetic NxT`` shape; raises ValueError when malformed."""
    parts = text.lower().split("x")
    if len(parts) != 2:
        raise ValueError(f"expected NxT (e.g. 500x200), got {text!r}")
    n_objects, n_snapshots = int(parts[0]), int(parts[1])
    if n_objects < 1 or n_snapshots < 1:
        raise ValueError(f"synthetic shape must be positive, got {text!r}")
    return n_objects, n_snapshots


def _cmd_stream(args, out):
    if (args.csv is None) == (args.synthetic is None):
        print("stream needs exactly one input: a CSV path or --synthetic NxT",
              file=out)
        return 2
    if args.jitter and args.synthetic is None:
        print("--jitter only applies with --synthetic", file=out)
        return 2
    if args.jitter < 0:
        print(f"bad --jitter value: must be >= 0, got {args.jitter}", file=out)
        return 2
    if args.pace < 0:
        print(f"bad --pace value: must be >= 0, got {args.pace}", file=out)
        return 2
    if args.synthetic is not None:
        try:
            n_objects, n_snapshots = _parse_synthetic_shape(args.synthetic)
        except ValueError as exc:
            print(f"bad --synthetic value: {exc}", file=out)
            return 2
        source = synthetic_stream(
            n_objects, n_snapshots, seed=args.seed, eps=args.eps,
            jitter=args.jitter,
        )
        label = f"synthetic {n_objects}x{n_snapshots} (seed {args.seed}"
        label += f", jitter {args.jitter})" if args.jitter else ")"
    else:
        source = replay_csv(args.csv)
        label = args.csv
    if args.churn_threshold is not None and not args.incremental:
        print("--churn-threshold only applies with --incremental", file=out)
        return 2
    if args.executor is not None and args.shards is None:
        print("--executor only applies with --shards", file=out)
        return 2
    if args.resident and args.shards is None:
        print("--resident only applies with --shards", file=out)
        return 2
    reorder = None
    if args.allowed_lateness is not None or args.max_pending is not None:
        reorder = dict(
            allowed_lateness=args.allowed_lateness,
            max_pending=args.max_pending,
            late_policy=args.late_policy,
        )
    elif args.late_policy != "raise":
        print("--late-policy only applies with --allowed-lateness or "
              "--max-pending", file=out)
        return 2
    elif args.jitter:
        print("--jitter needs a reorder buffer: pass --allowed-lateness "
              f">= {args.jitter} (or --max-pending)", file=out)
        return 2
    try:
        clusterer = None
        if args.incremental:
            if args.churn_threshold is None:
                clusterer = IncrementalSnapshotClusterer(
                    args.eps, args.m, backend=args.backend
                )
            else:
                threshold = args.churn_threshold
                if threshold != "adaptive":
                    try:
                        threshold = float(threshold)
                    except ValueError:
                        print(
                            f"bad --churn-threshold value: expected a "
                            f"fraction or 'adaptive', got {threshold!r}",
                            file=out,
                        )
                        return 2
                clusterer = IncrementalSnapshotClusterer(
                    args.eps, args.m, churn_threshold=threshold,
                    backend=args.backend,
                )
        miner = StreamingConvoyMiner(
            args.m, args.k, args.eps,
            paper_semantics=args.paper_semantics, window=args.window,
            clusterer=clusterer, reorder=reorder, shards=args.shards,
            executor=args.executor, resident=args.resident,
            backend=args.backend, match_kernel=args.match_kernel,
            store=args.store,
        )
    except ValueError as exc:
        print(f"bad query parameters: {exc}", file=out)
        return 2
    convoys = []
    interrupted = False
    started = time.perf_counter()
    # The context manager releases pooled executor backends on every exit
    # path — including the stream-error return below, which used to leak
    # a live process pool.
    with miner:
        try:
            for t, snapshot in source:
                if args.pace:
                    time.sleep(args.pace)
                for convoy in miner.feed(t, snapshot):
                    convoys.append(convoy)
                    if not args.quiet:
                        members = ",".join(
                            str(o) for o in sorted(convoy.objects, key=str)
                        )
                        print(f"  closed at t={t}: t=[{convoy.t_start},"
                              f"{convoy.t_end}] objects={members}", file=out)
        except ValueError as exc:
            # A late snapshot under --late-policy raise (or a disordered
            # feed with no reorder buffer at all) is an input contract
            # violation.
            print(f"stream error: {exc}", file=out)
            return 1
        except KeyboardInterrupt:
            # Ctrl-C mid-stream: stop feeding and skip the flush (open
            # chains are not part of the committed prefix), but fall
            # through the context manager so the miner closes cleanly —
            # the store sink commits every completed tick and rolls any
            # half-open transaction back, instead of the interrupt
            # unwinding past both and losing the tail.
            interrupted = True
        if not interrupted:
            for convoy in miner.flush():
                convoys.append(convoy)
                if not args.quiet:
                    members = ",".join(
                        str(o) for o in sorted(convoy.objects, key=str)
                    )
                    print(f"  open at end of stream: t=[{convoy.t_start},"
                          f"{convoy.t_end}] objects={members}", file=out)
    if interrupted:
        print(
            f"interrupted after {miner.counters['snapshots']} snapshot(s)"
            + (f"; {miner.counters['stored_convoys']} convoy(s) committed "
               f"to {args.store}" if args.store is not None else ""),
            file=out,
        )
        return 130
    elapsed = time.perf_counter() - started
    counters = miner.counters
    snapshots = counters["snapshots"]
    if snapshots == 0:
        print("input contains no snapshots", file=out)
        return 1
    # Tiny runs can finish below the timer's resolution; a rate computed
    # from elapsed == 0 would print as "inf snapshots/s", so the rate is
    # simply omitted when the measurement carries no information.
    rate = snapshots / elapsed if elapsed > 0 else None
    rate_text = f"{rate:.0f} snapshots/s, " if rate is not None else ""
    print(
        f"{len(convoys)} convoy(s) from {snapshots} snapshot(s) in "
        f"{elapsed:.2f}s ({rate_text}peak "
        f"{counters['peak_candidates']} candidate(s); {label}, "
        f"m={args.m}, k={args.k}, e={args.eps:g})",
        file=out,
    )
    if miner.reorder is not None:
        ro = miner.reorder.counters
        print(
            f"reorder buffer: {ro['reordered_snapshots']} snapshot(s) "
            f"reordered, {ro['merged_snapshots']} merged, "
            f"{ro['late_dropped']} late dropped, "
            f"{ro['late_amended']} amended, peak "
            f"{ro['peak_pending']} pending",
            file=out,
        )
    if args.backend == "vector" and not have_numpy():
        print(
            "note: numpy unavailable — the vector backend ran on the "
            "array('d')/memoryview fallback kernels",
            file=out,
        )
    if args.match_kernel == "auto":
        ticks = {
            name: counters.get(f"dispatch_{name}", 0)
            for name in ("scalar", "merge", "bitset")
        }
        print(
            "match kernel dispatch: "
            + ", ".join(f"{n} x{c}" for n, c in ticks.items()),
            file=out,
        )
    if miner.shards is not None:
        mode = "resident " if args.resident else ""
        print(
            f"sharding: {counters['sharded_candidates']} candidate scan(s) "
            f"across {miner.shards} shard(s) on the {mode}"
            f"{args.executor or 'serial'} executor in "
            f"{counters['shard_steps']} sharded step(s), largest batch "
            f"{counters['max_shard_batch']}",
            file=out,
        )
    if args.store is not None:
        print(
            f"store: {counters['stored_convoys']} convoy(s) stored, "
            f"{counters['replayed_convoys']} replayed (idempotent) into "
            f"{args.store}",
            file=out,
        )
    if miner.clusterer is not None:
        inc = miner.clusterer.counters
        print(
            f"incremental clustering: {inc['incremental_passes']} "
            f"incremental + {inc['full_passes']} full pass(es), "
            f"{inc['reclustered_points']}/{inc['clustered_points']} "
            f"points reclustered",
            file=out,
        )
        if counters.get("delta_steps"):
            spliced = counters["spliced_candidates"]
            reintersected = counters["reintersected_candidates"]
            print(
                f"candidate tracking: {spliced} candidate step(s) spliced "
                f"+ {reintersected} re-intersected across "
                f"{counters['delta_steps']} diff-aware step(s)",
                file=out,
            )
    if args.output or args.json:
        # Same normalization as ``discover`` so the artifacts of the two
        # subcommands (and of the CSV/JSON pair) are directly comparable.
        normalized = normalize_convoys(convoys)
        if args.output:
            _write_answer_csv(normalized, args.output)
            print(f"answer written to {args.output}", file=out)
        if args.json:
            _write_answer_json(args, normalized, miner, elapsed)
            print(f"json answer written to {args.json}", file=out)
    return 0


def _write_answer_json(args, convoys, miner, elapsed):
    """Write the stream answer as machine-readable JSON.

    ``convoys`` must already be normalized (the caller shares one pass
    with the CSV artifact); the counters are the miner's full shared
    dict (engine, tracker, reorder, and shard keys all report there),
    plus the clusterer's own dict when an incremental clusterer ran.
    """
    payload = {
        "params": {
            "m": args.m,
            "k": args.k,
            "eps": args.eps,
            "paper_semantics": args.paper_semantics,
            "window": args.window,
            "shards": args.shards,
            "executor": args.executor if args.shards is not None else None,
            "resident": bool(args.resident),
            "backend": args.backend,
            "match_kernel": args.match_kernel,
        },
        "elapsed_seconds": elapsed,
        "convoys": [
            {
                "objects": sorted(str(o) for o in convoy.objects),
                "t_start": convoy.t_start,
                "t_end": convoy.t_end,
            }
            for convoy in convoys
        ],
        "counters": dict(miner.counters),
    }
    if miner.clusterer is not None and hasattr(miner.clusterer, "counters"):
        payload["clusterer_counters"] = dict(miner.clusterer.counters)
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _parse_window(text):
    """Parse ``T1:T2`` into an integer closed time window."""
    parts = text.split(":")
    if len(parts) != 2:
        raise ValueError(f"expected T1:T2, got {text!r}")
    t1, t2 = int(parts[0]), int(parts[1])
    if t2 < t1:
        raise ValueError(f"window reversed: [{t1}, {t2}]")
    return t1, t2


def _parse_box(text):
    """Parse ``X1:Y1:X2:Y2`` into a :class:`BoundingBox` (corners may be
    given in any order)."""
    parts = text.split(":")
    if len(parts) != 4:
        raise ValueError(f"expected X1:Y1:X2:Y2, got {text!r}")
    x1, y1, x2, y2 = (float(p) for p in parts)
    return BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


def _cmd_query(args, out):
    modes = [name for name, value in (
        ("--alive", args.alive),
        ("--containing", args.containing),
        ("--intersecting", args.intersecting),
    ) if value is not None]
    if args.top_k is not None:
        if args.top_k < 1:
            print(f"bad --top-k value: must be >= 1, got {args.top_k}",
                  file=out)
            return 2
        # --top-k ranks the whole store, optionally restricted to an
        # --alive window; the other filters don't compose with ranking.
        extra = [name for name in modes if name != "--alive"]
        if extra:
            print(f"--top-k only composes with --alive, not "
                  f"{' / '.join(extra)}", file=out)
            return 2
    elif not modes:
        print("query needs at least one of --alive / --containing / "
              "--intersecting / --top-k", file=out)
        return 2
    elif len(modes) > 1:
        print(f"pick one of {' / '.join(modes)} (filters do not compose)",
              file=out)
        return 2
    try:
        window = _parse_window(args.alive) if args.alive is not None else None
        box = (_parse_box(args.intersecting)
               if args.intersecting is not None else None)
    except ValueError as exc:
        print(f"bad query window/box: {exc}", file=out)
        return 2
    # Opening a SQLite path creates the file, so a typo'd path would turn
    # into an empty (zero-answer) store; insist the store already exists.
    if not os.path.exists(args.db):
        print(f"no such store: {args.db}", file=out)
        return 2
    with open_store(args.db) as store:
        if args.top_k is not None:
            convoys = list(store.top_k(by=args.by, k=args.top_k,
                                       alive=window))
        elif window is not None:
            convoys = store.alive_in(*window)
        elif box is not None:
            convoys = store.intersecting(box)
        else:
            # Member ids keep their type through the store, so a CLI
            # query (always text) matches both the string id and — when
            # the text parses — the integer id, merged in store order.
            convoys = store.containing(args.containing)
            try:
                as_int = int(args.containing)
            except ValueError:
                pass
            else:
                merged = {convoy_identity(c): c
                          for c in convoys + store.containing(as_int)}
                convoys = sorted(
                    merged.values(),
                    key=lambda c: (c.t_start, c.t_end, convoy_identity(c)),
                )
        bboxes = [store.bbox_of(c) for c in convoys]
        total = store.count()
    if args.json:
        payload = {
            "db": args.db,
            "query": {
                "alive": list(window) if window is not None else None,
                "containing": args.containing,
                "intersecting": ([box.min_x, box.min_y, box.max_x,
                                  box.max_y] if box is not None else None),
                "top_k": args.top_k,
                "by": args.by if args.top_k is not None else None,
            },
            "count": len(convoys),
            "store_count": total,
            "convoys": [
                {
                    "objects": sorted(str(o) for o in convoy.objects),
                    "t_start": convoy.t_start,
                    "t_end": convoy.t_end,
                    "bbox": ([bbox.min_x, bbox.min_y, bbox.max_x,
                              bbox.max_y] if bbox is not None else None),
                }
                for convoy, bbox in zip(convoys, bboxes)
            ],
        }
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        for convoy, bbox in zip(convoys, bboxes):
            members = ",".join(str(o) for o in sorted(convoy.objects,
                                                      key=str))
            box_text = (f" bbox=({bbox.min_x:g},{bbox.min_y:g})..("
                        f"{bbox.max_x:g},{bbox.max_y:g})"
                        if bbox is not None else "")
            print(f"  t=[{convoy.t_start},{convoy.t_end}] "
                  f"objects={members}{box_text}", file=out)
        print(f"{len(convoys)} convoy(s) matched (store holds {total}; "
              f"{args.db})", file=out)
    return 0


def _cmd_stats(args, out):
    db = load_trajectories_csv(args.csv)
    if len(db) == 0:
        print("input contains no trajectories", file=out)
        return 1
    stats = db.statistics()
    print(f"objects (N):            {stats['num_objects']}", file=out)
    print(f"time domain length (T): {stats['time_domain_length']}", file=out)
    print(f"average traj length:    {stats['average_trajectory_length']:.1f}",
          file=out)
    print(f"data size (points):     {stats['total_points']}", file=out)
    return 0


def _cmd_simplify(args, out):
    db = load_trajectories_csv(args.csv)
    if len(db) == 0:
        print("input contains no trajectories", file=out)
        return 1
    simplifier = SIMPLIFIERS[args.method]
    simplified = [simplifier(tr, args.delta) for tr in db]
    report = simplification_report(simplified)
    from repro.trajectory.database import TrajectoryDatabase
    from repro.trajectory.trajectory import Trajectory

    reduced = TrajectoryDatabase(
        Trajectory(s.object_id, s.points) for s in simplified
    )
    save_trajectories_csv(reduced, args.output)
    print(
        f"{report['original_points']} -> {report['kept_points']} points "
        f"({report['vertex_reduction_pct']:.1f}% reduction, "
        f"max actual tolerance {report['max_actual_tolerance']:.3g})",
        file=out,
    )
    print(f"simplified data written to {args.output}", file=out)
    return 0


def _cmd_generate(args, out):
    generator = DATASETS[args.dataset]
    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    spec = generator(**kwargs)
    save_trajectories_csv(spec.database, args.output)
    stats = spec.statistics()
    print(
        f"wrote {args.dataset}-like dataset: {stats['num_objects']} objects, "
        f"T={stats['time_domain_length']}, {stats['total_points']} points",
        file=out,
    )
    print(
        f"suggested query: m={spec.m}, k={spec.k}, e={spec.eps:g} "
        f"({len(spec.planted)} convoys planted)",
        file=out,
    )
    return 0


def _cmd_serve(args, out):
    if args.workers < 1:
        print(f"bad --workers value: must be >= 1, got {args.workers}",
              file=out)
        return 2
    if args.max_queue < 1:
        print(f"bad --max-queue value: must be >= 1, got {args.max_queue}",
              file=out)
        return 2

    async def run():
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        async with IngestionServer(
            args.host, args.port,
            max_workers=args.workers, max_queue=args.max_queue,
        ) as server:
            # The port line is the readiness signal: printed (and
            # flushed) only once the socket is bound, so a supervising
            # process can parse it and connect immediately.
            print(f"serving on {server.host}:{server.port} "
                  f"({args.workers} worker(s), high-water "
                  f"{args.max_queue})", file=out, flush=True)
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
            try:
                await stop.wait()
            finally:
                for signum in (signal.SIGINT, signal.SIGTERM):
                    loop.remove_signal_handler(signum)
            totals = server.aggregate()
        # The server context closed every open session on the way out:
        # miners closed, store transactions committed or rolled back —
        # each tenant's store holds a clean prefix of completed ticks.
        print(
            f"interrupted: served {totals['tenants']} tenant(s), "
            f"{totals['ticks']} snapshot(s), {totals['convoys_closed']} "
            f"convoy(s) closed", file=out, flush=True,
        )
        return 130

    return asyncio.run(run())


COMMANDS = {
    "discover": _cmd_discover,
    "stream": _cmd_stream,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "stats": _cmd_stats,
    "simplify": _cmd_simplify,
    "generate": _cmd_generate,
}


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args, out if out is not None else sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
