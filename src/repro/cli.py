"""Command-line interface for convoy discovery.

Four subcommands mirror the workflows a practitioner needs:

* ``repro-convoy discover`` — run a convoy query over a CSV of
  ``object_id,t,x,y`` rows with any of the four algorithms;
* ``repro-convoy stats`` — print a dataset's Table 3-style statistics;
* ``repro-convoy simplify`` — batch line-simplification of a CSV with DP,
  DP+, or DP*, reporting the vertex reduction;
* ``repro-convoy generate`` — write one of the paper-like synthetic
  datasets (truck / cattle / car / taxi) to CSV for experimentation.

All subcommands print human-readable text to stdout; ``discover`` can
also write the answer as CSV for downstream tooling.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.cmc import cmc
from repro.core.cuts import VARIANTS, cuts
from repro.core.verification import normalize_convoys
from repro.datasets.paperlike import DATASETS
from repro.io.csv_io import load_trajectories_csv, save_trajectories_csv
from repro.simplification import SIMPLIFIERS, simplification_report


def build_parser():
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-convoy",
        description="Convoy discovery in trajectory databases "
        "(Jeung et al., VLDB 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    discover = sub.add_parser(
        "discover", help="run a convoy query over a trajectory CSV"
    )
    discover.add_argument("csv", help="input file with object_id,t,x,y rows")
    discover.add_argument("-m", type=int, required=True,
                          help="minimum objects per convoy")
    discover.add_argument("-k", type=int, required=True,
                          help="minimum lifetime in consecutive time points")
    discover.add_argument("-e", "--eps", type=float, required=True,
                          help="density distance threshold e")
    discover.add_argument(
        "--algorithm", default="cuts*",
        choices=["cmc"] + sorted(VARIANTS),
        help="discovery algorithm (default: cuts*)",
    )
    discover.add_argument("--delta", type=float, default=None,
                          help="simplification tolerance (default: auto)")
    discover.add_argument("--lam", type=int, default=None,
                          help="time partition length (default: auto)")
    discover.add_argument("--output", default=None,
                          help="also write the answer as CSV to this path")

    stats = sub.add_parser("stats", help="print dataset statistics")
    stats.add_argument("csv", help="input file with object_id,t,x,y rows")

    simplify = sub.add_parser(
        "simplify", help="line-simplify every trajectory in a CSV"
    )
    simplify.add_argument("csv", help="input file")
    simplify.add_argument("output", help="output CSV for the simplified data")
    simplify.add_argument("--method", default="dp", choices=sorted(SIMPLIFIERS),
                          help="simplifier (default: dp)")
    simplify.add_argument("--delta", type=float, required=True,
                          help="tolerance δ")

    generate = sub.add_parser(
        "generate", help="write a paper-like synthetic dataset to CSV"
    )
    generate.add_argument("dataset", choices=sorted(DATASETS),
                          help="which Table 3 dataset shape to emulate")
    generate.add_argument("output", help="output CSV path")
    generate.add_argument("--scale", type=float, default=0.05,
                          help="time-domain scale factor (default: 0.05)")
    generate.add_argument("--seed", type=int, default=None,
                          help="override the generator seed")
    return parser


def _cmd_discover(args, out):
    db = load_trajectories_csv(args.csv)
    if len(db) == 0:
        print("input contains no trajectories", file=out)
        return 1
    started = time.perf_counter()
    if args.algorithm == "cmc":
        convoys = normalize_convoys(cmc(db, args.m, args.k, args.eps))
    else:
        result = cuts(
            db, args.m, args.k, args.eps,
            delta=args.delta, lam=args.lam, variant=args.algorithm,
        )
        convoys = result.convoys
    elapsed = time.perf_counter() - started
    print(
        f"{len(convoys)} convoy(s) found in {elapsed:.2f}s "
        f"({args.algorithm}, m={args.m}, k={args.k}, e={args.eps:g})",
        file=out,
    )
    for convoy in convoys:
        members = ",".join(str(o) for o in sorted(convoy.objects, key=str))
        print(f"  t=[{convoy.t_start},{convoy.t_end}] objects={members}", file=out)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("t_start,t_end,size,objects\n")
            for convoy in convoys:
                members = ";".join(str(o) for o in sorted(convoy.objects, key=str))
                handle.write(
                    f"{convoy.t_start},{convoy.t_end},{convoy.size},{members}\n"
                )
        print(f"answer written to {args.output}", file=out)
    return 0


def _cmd_stats(args, out):
    db = load_trajectories_csv(args.csv)
    if len(db) == 0:
        print("input contains no trajectories", file=out)
        return 1
    stats = db.statistics()
    print(f"objects (N):            {stats['num_objects']}", file=out)
    print(f"time domain length (T): {stats['time_domain_length']}", file=out)
    print(f"average traj length:    {stats['average_trajectory_length']:.1f}",
          file=out)
    print(f"data size (points):     {stats['total_points']}", file=out)
    return 0


def _cmd_simplify(args, out):
    db = load_trajectories_csv(args.csv)
    if len(db) == 0:
        print("input contains no trajectories", file=out)
        return 1
    simplifier = SIMPLIFIERS[args.method]
    simplified = [simplifier(tr, args.delta) for tr in db]
    report = simplification_report(simplified)
    from repro.trajectory.database import TrajectoryDatabase
    from repro.trajectory.trajectory import Trajectory

    reduced = TrajectoryDatabase(
        Trajectory(s.object_id, s.points) for s in simplified
    )
    save_trajectories_csv(reduced, args.output)
    print(
        f"{report['original_points']} -> {report['kept_points']} points "
        f"({report['vertex_reduction_pct']:.1f}% reduction, "
        f"max actual tolerance {report['max_actual_tolerance']:.3g})",
        file=out,
    )
    print(f"simplified data written to {args.output}", file=out)
    return 0


def _cmd_generate(args, out):
    generator = DATASETS[args.dataset]
    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    spec = generator(**kwargs)
    save_trajectories_csv(spec.database, args.output)
    stats = spec.statistics()
    print(
        f"wrote {args.dataset}-like dataset: {stats['num_objects']} objects, "
        f"T={stats['time_domain_length']}, {stats['total_points']} points",
        file=out,
    )
    print(
        f"suggested query: m={spec.m}, k={spec.k}, e={spec.eps:g} "
        f"({len(spec.planted)} convoys planted)",
        file=out,
    )
    return 0


COMMANDS = {
    "discover": _cmd_discover,
    "stats": _cmd_stats,
    "simplify": _cmd_simplify,
    "generate": _cmd_generate,
}


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args, out if out is not None else sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
