"""Trajectory data model.

The paper's data model (Section 3): time is the ordered set
``{t1, ..., tT}`` of integer time points; the trajectory of an object ``o``
is a polyline of timestamped locations ``o = <p_a, ..., p_b>`` with time
interval ``o.tau = [t_a, t_b]``.  Trajectories may start and end anywhere in
the time domain and may be sampled irregularly (missing time points between
consecutive samples), which is precisely the situation that forces CMC to
materialize *virtual points* by linear interpolation.

This package provides:

* :class:`TrajectoryPoint` — one timestamped sample ``(x, y, t)``;
* :class:`Trajectory` — an object's polyline with ``o(t)`` lookup and
  interpolation;
* :class:`TimestampedSegment` — one edge of a (simplified) polyline that
  remembers its time interval;
* :class:`TrajectoryDatabase` — the collection queried for convoys.
"""

from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.interpolation import interpolate_position, virtual_point
from repro.trajectory.point import TrajectoryPoint
from repro.trajectory.segment import TimestampedSegment
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "TimestampedSegment",
    "Trajectory",
    "TrajectoryDatabase",
    "TrajectoryPoint",
    "interpolate_position",
    "virtual_point",
]
