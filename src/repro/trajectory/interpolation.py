"""Linear interpolation of missing samples ("virtual points", Section 4).

CMC needs every object's location at every clustered time point, but real
trajectories are sampled irregularly — the paper's Taxi data reports
"every three minutes ... some once in several minutes".  The paper's fix is
linear interpolation between the neighbouring real samples; these helpers
implement it once so CMC, the refinement step, and the dataset generators
all share the same semantics.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.geometry.vec import lerp


def interpolate_position(times, xs, ys, t):
    """Interpolate the ``(x, y)`` position at time ``t``.

    Args:
        times: strictly increasing list of sampled integer time points.
        xs, ys: coordinates parallel to ``times``.
        t: query time; must satisfy ``times[0] <= t <= times[-1]``.

    Returns:
        The sampled position when ``t`` is an actual sample time, else the
        linear interpolation between the two bracketing samples (the
        paper's *virtual point*).

    Raises:
        ValueError: when ``t`` falls outside the trajectory's time interval
            — the paper never extrapolates: an object simply does not exist
            outside ``o.tau``.
    """
    if not times:
        raise ValueError("cannot interpolate an empty trajectory")
    if t < times[0] or t > times[-1]:
        raise ValueError(
            f"time {t} outside trajectory interval [{times[0]}, {times[-1]}]"
        )
    idx = bisect_left(times, t)
    if times[idx] == t:
        return (xs[idx], ys[idx])
    lo = idx - 1
    ratio = (t - times[lo]) / (times[idx] - times[lo])
    return lerp((xs[lo], ys[lo]), (xs[idx], ys[idx]), ratio)


def virtual_point(p_before, p_after, t):
    """Interpolate between two timestamped points ``(x, y, t)``.

    Convenience wrapper over :func:`interpolate_position` for callers that
    already hold the bracketing samples.
    """
    if not (p_before.t <= t <= p_after.t):
        raise ValueError(
            f"time {t} outside bracketing interval [{p_before.t}, {p_after.t}]"
        )
    if p_after.t == p_before.t:
        return (p_before.x, p_before.y)
    ratio = (t - p_before.t) / (p_after.t - p_before.t)
    return lerp((p_before.x, p_before.y), (p_after.x, p_after.y), ratio)
