"""The trajectory database queried for convoys."""

from __future__ import annotations

from repro.trajectory.trajectory import Trajectory


class TrajectoryDatabase:
    """An in-memory collection of :class:`Trajectory` objects.

    This is the ``O`` of Definition 3 — the set of object trajectories a
    convoy query runs against.  Besides storage it provides the snapshot
    accessors the algorithms need:

    * :meth:`objects_alive_at` / :meth:`snapshot` — the ``O_t`` set of
      CMC's per-time clustering, with virtual points for missing samples;
    * the global time domain ``[min_time, max_time]`` and the dataset
      statistics reported in Table 3.

    Args:
        trajectories: iterable of :class:`Trajectory`; object ids must be
            unique.
    """

    def __init__(self, trajectories=()):
        self._trajectories = {}
        for trajectory in trajectories:
            self.add(trajectory)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, trajectory):
        """Insert a trajectory; duplicate object ids are rejected."""
        if not isinstance(trajectory, Trajectory):
            raise TypeError(f"expected Trajectory, got {type(trajectory).__name__}")
        if trajectory.object_id in self._trajectories:
            raise ValueError(f"duplicate object id {trajectory.object_id!r}")
        self._trajectories[trajectory.object_id] = trajectory

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self):
        """Number of objects ``N``."""
        return len(self._trajectories)

    def __iter__(self):
        return iter(self._trajectories.values())

    def __contains__(self, object_id):
        return object_id in self._trajectories

    def __getitem__(self, object_id):
        return self._trajectories[object_id]

    def __repr__(self):
        if not self._trajectories:
            return "TrajectoryDatabase(empty)"
        return (
            f"TrajectoryDatabase({len(self)} objects, "
            f"T=[{self.min_time}, {self.max_time}], "
            f"{self.total_points} points)"
        )

    @property
    def object_ids(self):
        """All object identifiers, in insertion order."""
        return list(self._trajectories.keys())

    # ------------------------------------------------------------------
    # Temporal extent & statistics (Table 3 columns)
    # ------------------------------------------------------------------
    @property
    def min_time(self):
        """Earliest time point covered by any trajectory."""
        self._require_non_empty()
        return min(tr.start_time for tr in self)

    @property
    def max_time(self):
        """Latest time point covered by any trajectory."""
        self._require_non_empty()
        return max(tr.end_time for tr in self)

    @property
    def time_domain_length(self):
        """``T``: the number of time points in the global domain."""
        return self.max_time - self.min_time + 1

    @property
    def total_points(self):
        """Total number of stored samples ("data size" in Table 3)."""
        return sum(len(tr) for tr in self)

    @property
    def average_trajectory_length(self):
        """Mean number of samples per trajectory (Table 3 row)."""
        self._require_non_empty()
        return self.total_points / len(self)

    def statistics(self):
        """Return the Table 3 dataset statistics as a dict."""
        self._require_non_empty()
        return {
            "num_objects": len(self),
            "time_domain_length": self.time_domain_length,
            "average_trajectory_length": self.average_trajectory_length,
            "total_points": self.total_points,
        }

    # ------------------------------------------------------------------
    # Snapshot access (the O_t of Algorithm 1)
    # ------------------------------------------------------------------
    def objects_alive_at(self, t):
        """Return the trajectories whose time interval covers ``t``."""
        return [tr for tr in self if tr.is_alive_at(t)]

    def snapshot(self, t):
        """Return ``O_t``: ``{object_id: (x, y)}`` for every object alive at ``t``.

        Objects without a real sample at ``t`` contribute a virtual
        (interpolated) point, exactly as CMC requires (Section 4).
        """
        return {
            tr.object_id: tr.location_at(t)
            for tr in self
            if tr.is_alive_at(t)
        }

    def restricted(self, object_ids, t_lo, t_hi):
        """Return a sub-database for the refinement step.

        Keeps only the given objects, each sliced to ``[t_lo, t_hi]``;
        objects with no samples in the window are dropped.
        """
        wanted = set(object_ids)
        sliced = []
        for object_id in wanted:
            trajectory = self._trajectories.get(object_id)
            if trajectory is None:
                continue
            piece = trajectory.sliced(t_lo, t_hi)
            if piece is not None:
                sliced.append(piece)
        return TrajectoryDatabase(sliced)

    def _require_non_empty(self):
        if not self._trajectories:
            raise ValueError("operation requires a non-empty database")
