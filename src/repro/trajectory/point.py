"""Timestamped trajectory samples."""

from __future__ import annotations

import math
from typing import NamedTuple


class TrajectoryPoint(NamedTuple):
    """One sample ``p_j = (x_j, y_j, t_j)`` of an object's movement.

    ``t`` is an integer time point from the paper's discrete time domain
    ``{t1, ..., tT}``; ``x`` and ``y`` are planar coordinates in whatever
    unit the dataset uses (the paper's ``e`` thresholds are in the same
    unit).
    """

    x: float
    y: float
    t: int

    @property
    def xy(self):
        """The spatial component ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def distance_to(self, other):
        """Euclidean distance ``D`` between the spatial components."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def validate(self):
        """Raise :class:`ValueError` on NaN/inf coordinates or non-int time."""
        if not isinstance(self.t, int):
            raise ValueError(f"time point must be an integer, got {self.t!r}")
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise ValueError(f"non-finite coordinates ({self.x}, {self.y})")
        return self
