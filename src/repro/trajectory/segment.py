"""Timestamped polyline segments.

A :class:`TimestampedSegment` is one edge ``l'`` of a (possibly simplified)
trajectory.  Unlike a bare geometric segment it remembers its time interval
``l'.tau = [t_start, t_end]`` — the key piece of information that lets the
CuTS filter reason about *when* two segments could have been close (the
``l'q.tau ∩ l'i.tau != ∅`` guards of Lemmas 1-3) and lets CuTS* evaluate the
time-parameterized location ``l'(t)`` of Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.bbox import BoundingBox
from repro.geometry.cpa import cpa_distance, segment_location_at
from repro.geometry.distance import point_segment_distance, segment_distance


@dataclass(frozen=True)
class TimestampedSegment:
    """A line segment ``l'`` travelled from ``start`` at ``t_start`` to ``end`` at ``t_end``.

    Attributes:
        start: ``(x, y)`` location at ``t_start``.
        end: ``(x, y)`` location at ``t_end``.
        t_start: first time point covered by the segment (inclusive).
        t_end: last time point covered by the segment (inclusive);
            ``t_end >= t_start``.
    """

    start: tuple
    end: tuple
    t_start: int
    t_end: int
    _bbox: BoundingBox = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.t_end < self.t_start:
            raise ValueError(
                f"segment time interval reversed: [{self.t_start}, {self.t_end}]"
            )
        object.__setattr__(
            self,
            "_bbox",
            BoundingBox(
                min(self.start[0], self.end[0]),
                min(self.start[1], self.end[1]),
                max(self.start[0], self.end[0]),
                max(self.start[1], self.end[1]),
            ),
        )

    @property
    def tau(self):
        """The closed time interval ``l'.tau`` as a ``(t_start, t_end)`` tuple."""
        return (self.t_start, self.t_end)

    @property
    def duration(self):
        """Number of unit time steps spanned (``t_end - t_start``)."""
        return self.t_end - self.t_start

    @property
    def bbox(self):
        """The minimum bounding box ``B(l')`` of the segment."""
        return self._bbox

    def covers_time(self, t):
        """Return True if ``t`` lies inside ``l'.tau``."""
        return self.t_start <= t <= self.t_end

    def overlaps_interval(self, t_lo, t_hi):
        """Return True if ``l'.tau`` intersects the closed interval ``[t_lo, t_hi]``."""
        return self.t_start <= t_hi and t_lo <= self.t_end

    def location_at(self, t):
        """Return the time-ratio location ``l'(t)`` (Section 6.2).

        The location is the linear interpolation between the endpoints using
        the *time* ratio, i.e. the position of a constant-velocity object.
        """
        return segment_location_at(self.start, self.end, self.t_start, self.t_end, t)

    def spatial_distance_to(self, other):
        """Return ``DLL(self, other)``: the purely spatial segment distance."""
        return segment_distance(self.start, self.end, other.start, other.end)

    def cpa_distance_to(self, other):
        """Return ``D*(self, other)``: distance at the CPA time (Section 6.2).

        ``inf`` when the two segments' time intervals are disjoint.
        """
        return cpa_distance(
            self.start,
            self.end,
            self.t_start,
            self.t_end,
            other.start,
            other.end,
            other.t_start,
            other.t_end,
        )

    def distance_to_point(self, p):
        """Return ``DPL(p, self)`` for a bare ``(x, y)`` point."""
        return point_segment_distance(p, self.start, self.end)
