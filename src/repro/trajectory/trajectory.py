"""The :class:`Trajectory` polyline of one moving object."""

from __future__ import annotations

from bisect import bisect_left

from repro.trajectory.interpolation import interpolate_position
from repro.trajectory.point import TrajectoryPoint


class Trajectory:
    """The recorded movement ``o = <p_a, ..., p_b>`` of a single object.

    A trajectory stores its samples sorted by time and supports the paper's
    model faithfully:

    * it may cover any sub-interval ``o.tau = [t_a, t_b]`` of the global
      time domain (objects appear and disappear);
    * sampling may be irregular — ``o(t)`` for a missing time point inside
      ``o.tau`` is answered with a linearly interpolated *virtual point*;
    * outside ``o.tau`` the object does not exist and lookups raise.

    Args:
        object_id: hashable identifier of the moving object.
        points: iterable of :class:`TrajectoryPoint` (or ``(x, y, t)``
            triples); any order, but duplicate time points are rejected.
    """

    __slots__ = ("object_id", "_times", "_xs", "_ys")

    def __init__(self, object_id, points):
        self.object_id = object_id
        cleaned = []
        for p in points:
            if not isinstance(p, TrajectoryPoint):
                p = TrajectoryPoint(float(p[0]), float(p[1]), p[2])
            cleaned.append(p.validate())
        cleaned.sort(key=lambda p: p.t)
        if not cleaned:
            raise ValueError(f"trajectory {object_id!r} has no points")
        for prev, cur in zip(cleaned, cleaned[1:]):
            if prev.t == cur.t:
                raise ValueError(
                    f"trajectory {object_id!r} has duplicate samples at t={cur.t}"
                )
        self._times = [p.t for p in cleaned]
        self._xs = [p.x for p in cleaned]
        self._ys = [p.y for p in cleaned]

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self):
        """Number of recorded samples ``|o|``."""
        return len(self._times)

    def __iter__(self):
        for t, x, y in zip(self._times, self._xs, self._ys):
            yield TrajectoryPoint(x, y, t)

    def __getitem__(self, index):
        return TrajectoryPoint(self._xs[index], self._ys[index], self._times[index])

    def __repr__(self):
        return (
            f"Trajectory({self.object_id!r}, {len(self)} points, "
            f"tau=[{self.start_time}, {self.end_time}])"
        )

    # ------------------------------------------------------------------
    # Temporal extent
    # ------------------------------------------------------------------
    @property
    def start_time(self):
        """``t_a``: the first sampled time point."""
        return self._times[0]

    @property
    def end_time(self):
        """``t_b``: the last sampled time point."""
        return self._times[-1]

    @property
    def tau(self):
        """The time interval ``o.tau = (t_a, t_b)``."""
        return (self._times[0], self._times[-1])

    @property
    def duration(self):
        """Length of ``o.tau`` in unit time steps (``t_b - t_a``)."""
        return self._times[-1] - self._times[0]

    def is_alive_at(self, t):
        """Return True if ``t`` lies inside ``o.tau``."""
        return self._times[0] <= t <= self._times[-1]

    @property
    def sample_times(self):
        """The sorted list of actually sampled time points (read-only view)."""
        return tuple(self._times)

    def has_sample_at(self, t):
        """Return True if a *real* (non-virtual) sample exists at time ``t``."""
        idx = bisect_left(self._times, t)
        return idx < len(self._times) and self._times[idx] == t

    # ------------------------------------------------------------------
    # Location lookup
    # ------------------------------------------------------------------
    def location_at(self, t):
        """Return ``o(t)`` as an ``(x, y)`` tuple.

        Missing time points inside ``o.tau`` are answered by linear
        interpolation (the paper's virtual points); times outside ``o.tau``
        raise :class:`ValueError`.
        """
        return interpolate_position(self._times, self._xs, self._ys, t)

    def point_at(self, t):
        """Like :func:`location_at` but returns a :class:`TrajectoryPoint`."""
        x, y = self.location_at(t)
        return TrajectoryPoint(x, y, t)

    def coordinates(self):
        """Return the raw parallel arrays ``(times, xs, ys)`` (read-only views).

        The simplifiers consume trajectories through this accessor to avoid
        materializing per-point objects on multi-hundred-thousand-point
        inputs (the Cattle workload).
        """
        return self._times, self._xs, self._ys

    def sliced(self, t_lo, t_hi):
        """Return this trajectory restricted to the window ``[t_lo, t_hi]``.

        The CuTS refinement step runs CMC on each candidate's original
        trajectories *within the candidate's time interval*; slicing avoids
        re-clustering the full histories.

        The slice must answer ``o(t)`` identically to the full trajectory
        for every ``t`` in the window: with irregular sampling the nearest
        real samples can lie *outside* the window, so the slice gains
        synthesized (interpolated) boundary samples at the window edges.
        Dropping those edge times instead would shrink the object's alive
        interval and make refinement miss convoy time points that the
        exact algorithm covers.

        Returns ``None`` when the window is disjoint from ``o.tau``.
        """
        if t_hi < t_lo:
            raise ValueError(f"slice window reversed: [{t_lo}, {t_hi}]")
        lo_t = max(t_lo, self._times[0])
        hi_t = min(t_hi, self._times[-1])
        if lo_t > hi_t:
            return None
        lo = bisect_left(self._times, lo_t)
        hi = bisect_left(self._times, hi_t + 1)
        points = [
            TrajectoryPoint(self._xs[i], self._ys[i], self._times[i])
            for i in range(lo, hi)
        ]
        if not points or points[0].t != lo_t:
            points.insert(0, self.point_at(lo_t))
        if points[-1].t != hi_t:
            points.append(self.point_at(hi_t))
        return Trajectory(self.object_id, points)

    def bounding_box(self):
        """Return the spatial bounding box of all samples."""
        from repro.geometry.bbox import BoundingBox

        return BoundingBox(
            min(self._xs), min(self._ys), max(self._xs), max(self._ys)
        )
