"""Trajectory database serialization."""

from repro.io.csv_io import load_trajectories_csv, save_trajectories_csv

__all__ = ["load_trajectories_csv", "save_trajectories_csv"]
