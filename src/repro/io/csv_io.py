"""CSV import/export in the ``object_id,t,x,y`` convention.

The paper's Truck data came from rtreeportal.org, which distributes
trajectories as flat delimited text with one sample per row.  This module
reads and writes that shape so users can run convoy queries on their own
GPS logs (see ``examples/``).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.point import TrajectoryPoint
from repro.trajectory.trajectory import Trajectory


def save_trajectories_csv(database, path, header=True):
    """Write a database as ``object_id,t,x,y`` rows, sorted by object then time.

    Args:
        database: the :class:`~repro.trajectory.TrajectoryDatabase` to dump.
        path: destination file path.
        header: write a ``object_id,t,x,y`` header row (default True).
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["object_id", "t", "x", "y"])
        for trajectory in sorted(database, key=lambda tr: str(tr.object_id)):
            for point in trajectory:
                writer.writerow([trajectory.object_id, point.t, point.x, point.y])


def load_trajectories_csv(path, has_header="auto"):
    """Load a database from ``object_id,t,x,y`` rows.

    Args:
        path: source file path.
        has_header: True/False, or ``"auto"`` to detect a header by trying
            to parse the first row's ``t`` column as an integer.

    Returns:
        A :class:`~repro.trajectory.TrajectoryDatabase`.

    Raises:
        ValueError: on malformed rows (wrong column count, unparsable
            numbers, duplicate samples) — bad input data should fail loudly
            at load time, not corrupt query answers later.
    """
    path = Path(path)
    samples = {}
    seen = {}  # (object_id, t) -> line that first provided the sample
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = iter(reader)
        first = next(rows, None)
        if first is None:
            return TrajectoryDatabase()
        consume_first = True
        if has_header == "auto":
            try:
                int(first[1])
            except (ValueError, IndexError):
                consume_first = False
        elif has_header:
            consume_first = False
        if consume_first:
            _ingest_row(samples, seen, first, line=1)
        for line, row in enumerate(rows, start=2):
            if row:
                _ingest_row(samples, seen, row, line)
    trajectories = [
        Trajectory(object_id, points) for object_id, points in samples.items()
    ]
    return TrajectoryDatabase(trajectories)


def _ingest_row(samples, seen, row, line):
    if len(row) != 4:
        raise ValueError(f"line {line}: expected 4 columns, got {len(row)}")
    object_id, t_raw, x_raw, y_raw = row
    try:
        point = TrajectoryPoint(float(x_raw), float(y_raw), int(t_raw))
    except ValueError as exc:
        raise ValueError(f"line {line}: {exc}") from None
    # Duplicate (object, t) samples must fail here, with both file lines —
    # left to Trajectory.__init__ the error would surface only after the
    # whole file was read, with no way to say which rows collided.
    key = (object_id, point.t)
    previous = seen.setdefault(key, line)
    if previous != line:
        raise ValueError(
            f"line {line}: duplicate sample for object {object_id!r} at "
            f"t={point.t} (first given on line {previous})"
        )
    samples.setdefault(object_id, []).append(point)
