"""Wall-clock instrumentation for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager


class PhaseTimer:
    """Accumulates named phase durations (Figure 13's stacked bars).

    Usage::

        timer = PhaseTimer()
        with timer.phase("simplification"):
            ...
        with timer.phase("filter"):
            ...
        timer.durations  # {"simplification": ..., "filter": ...}
    """

    def __init__(self):
        self.durations = {}

    @contextmanager
    def phase(self, name):
        """Context manager timing one named phase (durations accumulate)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    @property
    def total(self):
        """Sum of all recorded phase durations."""
        return sum(self.durations.values())


def time_call(fn, *args, **kwargs):
    """Return ``(result, seconds)`` for one call."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started
