"""Benchmark harness: phase timing and paper-style reporting."""

from repro.bench.harness import PhaseTimer, time_call
from repro.bench.reporting import format_series, format_table

__all__ = ["PhaseTimer", "format_series", "format_table", "time_call"]
