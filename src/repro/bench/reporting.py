"""Plain-text tables in the shape of the paper's tables and figure series.

The benches print their results through these helpers so every experiment
produces a readable paper-vs-measured record (collected into
EXPERIMENTS.md).
"""

from __future__ import annotations


def _format_cell(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(title, headers, rows):
    """Render an aligned text table.

    Args:
        title: table caption printed above the grid.
        headers: list of column names.
        rows: list of row value lists (mixed str/int/float).

    Returns:
        The formatted multi-line string.
    """
    text_rows = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title, x_name, x_values, series):
    """Render an x-vs-many-series table (one paper figure panel).

    Args:
        title: figure caption.
        x_name: name of the swept parameter (the figure's x axis).
        x_values: the sweep values.
        series: ``{series_name: [y, ...]}`` with lists parallel to
            ``x_values``.

    Returns:
        The formatted multi-line string.
    """
    headers = [x_name] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(title, headers, rows)
