"""CMC — Coherent Moving Clusters (Section 4, Algorithm 1).

CMC is the exact-but-expensive baseline: densify every trajectory with
virtual points, run snapshot DBSCAN at *every* time point of the domain,
and chain clusters through the shared-objects test ``|c ∩ v| >= m``.  The
CuTS family's refinement step reuses this exact routine on each candidate's
original trajectories, so convoy semantics are defined in one place.

CMC follows the paper's candidate semantics: when a cluster extends an
existing candidate, the candidate narrows to the intersection and the
cluster does not additionally seed a fresh candidate (Algorithm 1 lines
10-23).  Later work observed that this can skip convoys whose object set
grows mid-way; we reproduce the paper's algorithm, and the CuTS-vs-CMC
equivalence tests are stated against these semantics.

The per-snapshot step — cluster, join against live candidates, emit dead
chains — lives in :class:`repro.streaming.StreamingConvoyMiner`; this
module is the batch driver that sweeps a materialized database through it
(the streaming sources in :mod:`repro.streaming.source` are the other
driver), so Algorithm 1's chaining semantics exist exactly once.
"""

from __future__ import annotations

from repro.streaming.engine import StreamingConvoyMiner


def cmc(database, m, k, eps, time_range=None, counters=None,
        paper_semantics=False, allowed_at=None, clusterer=None,
        backend=None, store=None, match_kernel=None):
    """Run the CMC convoy-discovery algorithm.

    Args:
        database: a :class:`repro.trajectory.TrajectoryDatabase`.
        m: minimum number of objects per convoy.
        k: minimum lifetime in consecutive time points.
        eps: density distance threshold ``e``.
        time_range: optional ``(t_lo, t_hi)`` restriction; defaults to the
            database's full time domain.  The CuTS refinement step passes
            each candidate's interval here.
        counters: optional dict; when given, receives bookkeeping totals
            (``clustering_calls``, ``interpolated_points``,
            ``clustered_points``, plus the engine's ``snapshots`` /
            ``peak_candidates`` / ``convoys_emitted``) used by the
            cost-analysis benches.
        paper_semantics: when True, candidates follow Algorithm 1's
            published seeding rule verbatim, which can miss convoys whose
            membership grows mid-stream; the default complete semantics
            fixes that (see :mod:`repro.core.candidates`).
        allowed_at: optional callable ``t -> container of object ids``;
            when given, the snapshot at time ``t`` only includes the listed
            objects.  The CuTS refinement uses this to re-cluster, at every
            time point, exactly the members of the filter cluster its
            candidate passed through.
        clusterer: snapshot-clustering strategy, forwarded to
            :class:`~repro.streaming.StreamingConvoyMiner` — ``None`` /
            ``"full"`` (default) for a fresh DBSCAN per time point,
            ``"incremental"`` for cross-tick delta maintenance (identical
            answer, faster on slow-moving databases).  The incremental
            clusterer's cluster diff additionally flows into the candidate
            step (``CandidateTracker.advance_delta``), so candidates
            supported by unchanged clusters are spliced through without
            re-intersection; a pre-built ``IncrementalSnapshotClusterer``
            instance (e.g. with an adaptive churn threshold) is accepted
            too.
        backend: numeric backend for the per-snapshot hot kernels,
            forwarded to the miner — ``None``/``"python"`` (default) or
            ``"vector"`` (batched contiguous-array kernels, identical
            answer; see :mod:`repro.clustering.numeric`).
        store: optional write-through persistence, forwarded to the
            miner — a :class:`~repro.store.base.ConvoyStore` or a path
            to a SQLite store; every convoy is persisted (with its
            bounding box) as the batch sweep closes it, idempotent on
            convoy identity, so re-running a batch over the same data
            adds nothing.  The returned list is unchanged.
        match_kernel: optional match-kernel override for the candidate
            step, forwarded to the miner — one of
            :data:`~repro.clustering.numeric.MATCH_KERNELS`
            (``"auto"`` / ``"scalar"`` / ``"merge"`` / ``"bitset"``);
            ``None`` (default) follows ``backend``.  Identical answer
            either way, only the per-snapshot matching cost moves.

    Returns:
        List of :class:`repro.core.convoy.Convoy`, in discovery order.
        Convoys whose group splits and later re-forms are reported once per
        maximal run, per Definition 3.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if len(database) == 0:
        return []
    if time_range is None:
        t_lo, t_hi = database.min_time, database.max_time
    else:
        t_lo, t_hi = time_range
        if t_hi < t_lo:
            raise ValueError(f"time_range reversed: [{t_lo}, {t_hi}]")

    if counters is not None:
        counters.setdefault("interpolated_points", 0)

    # Sort trajectories once by start time so each step only examines
    # objects whose interval can cover the current time point.
    trajectories = sorted(database, key=lambda tr: tr.start_time)
    active = []  # trajectories whose tau covers the current t (maintained)
    next_idx = 0

    miner = StreamingConvoyMiner(
        m, k, eps, paper_semantics=paper_semantics, counters=counters,
        clusterer=clusterer, backend=backend, store=store,
        match_kernel=match_kernel,
    )
    results = []
    # The context manager releases a path-opened store (and any pooled
    # tracker resources) even when a snapshot raises mid-sweep.
    with miner:
        for t in range(t_lo, t_hi + 1):
            while next_idx < len(trajectories) and trajectories[next_idx].start_time <= t:
                active.append(trajectories[next_idx])
                next_idx += 1
            if active:
                active = [tr for tr in active if tr.end_time >= t]
            allowed = allowed_at(t) if allowed_at is not None else None
            snapshot = {}
            interpolated = 0
            for tr in active:
                if allowed is not None and tr.object_id not in allowed:
                    continue
                snapshot[tr.object_id] = tr.location_at(t)
                if not tr.has_sample_at(t):
                    interpolated += 1
            if counters is not None and len(snapshot) >= m:
                counters["interpolated_points"] += interpolated
            results.extend(miner.feed(t, snapshot))
        results.extend(miner.flush())
    return results
