"""Result verification, normalization, and quality metrics.

Three jobs:

* **Validity** (:func:`is_valid_convoy`) — check a reported convoy against
  Definition 3 directly on the database: at every time point of its
  interval the member objects must lie in one density-connected cluster,
  and the size/lifetime thresholds must hold.  This is the ground-truth
  oracle the tests and the Appendix B.1 experiment use.
* **Normalization** (:func:`normalize_convoys`) — the CuTS refinement can
  emit the same true convoy from several overlapping candidates, possibly
  as time- or member-fragments of one another; normalization removes exact
  duplicates and dominated fragments so result sets compare cleanly.
* **Quality rates** (:func:`false_positive_rate`,
  :func:`false_negative_rate`) — the Figure 19 metrics comparing a
  baseline's answer set ``Rm`` against the exact set ``Rc``.
"""

from __future__ import annotations

from repro.clustering.dbscan import dbscan


def is_valid_convoy(database, convoy, m, k, eps):
    """Check a convoy against Definition 3 by direct re-clustering.

    Args:
        database: the full trajectory database the query ran on.
        convoy: the :class:`~repro.core.convoy.Convoy` to validate.
        m, k, eps: the query parameters.

    Returns:
        True iff the convoy has at least ``m`` members, lives at least
        ``k`` time points, every member is alive throughout the interval,
        and at every time point of the interval all members belong to one
        density-connected cluster of the *full* snapshot.
    """
    if convoy.size < m:
        return False
    if convoy.lifetime < k:
        return False
    for t in range(convoy.t_start, convoy.t_end + 1):
        snapshot = database.snapshot(t)
        if not convoy.objects <= snapshot.keys():
            return False
        clusters = dbscan(snapshot, eps, m)
        if not any(convoy.objects <= cluster for cluster in clusters):
            return False
    return True


def normalize_convoys(convoys):
    """Return a deduplicated, dominance-pruned, deterministically-ordered list.

    A convoy is dropped when another reported convoy *dominates* it — same
    or larger object set over a same-or-larger interval — because the
    dominated one is a fragment carrying no extra information.  Two
    identical convoys collapse to one.
    """
    unique = list(dict.fromkeys(convoys))
    unique.sort(key=lambda c: (-c.lifetime, -c.size))
    kept = []
    for convoy in unique:
        if any(other.dominates(convoy) for other in kept):
            continue
        kept.append(convoy)
    kept.sort(key=lambda c: c.sort_key())
    return kept


def convoy_sets_equal(left, right):
    """Return True if two result lists are equal after normalization."""
    return normalize_convoys(left) == normalize_convoys(right)


def _covered_by(convoy, reference_set):
    """True if some reference convoy dominates ``convoy``."""
    return any(ref.dominates(convoy) for ref in reference_set)


def false_positive_rate(reported, database, m, k, eps):
    """Fraction of reported convoys that are not valid convoys (Fig 19(a)).

    The paper measures ``|Rm − Rc| / |Rm|`` — the share of the baseline's
    answers that do not "satisfy the query condition with respect to m, k,
    and e".  We check the condition directly with
    :func:`is_valid_convoy` rather than by matching against the exact
    result list, which is the same criterion without tying the metric to
    CMC's particular fragmentation of the answer.

    Returns a percentage in [0, 100]; 0 for an empty report.
    """
    if not reported:
        return 0.0
    invalid = sum(
        1 for convoy in reported
        if not is_valid_convoy(database, convoy, m, k, eps)
    )
    return 100.0 * invalid / len(reported)


def false_negative_rate(reported, exact):
    """Fraction of exact convoys the baseline missed (Fig 19(b)).

    The paper measures ``|Rc − Rm| / |Rc|``.  An exact convoy counts as
    *found* when some reported convoy dominates it (covers all its objects
    over all its interval); anything less means the baseline failed to
    recognize that group travelling together for that long.

    Returns a percentage in [0, 100]; 0 when there are no exact convoys.
    """
    if not exact:
        return 0.0
    reported_list = list(reported)
    missed = sum(
        1 for convoy in exact if not _covered_by(convoy, reported_list)
    )
    return 100.0 * missed / len(exact)
