"""Convenience queries over convoy result sets.

The discovery algorithms return flat convoy lists; applications usually
want derived views — the longest-lasting groups, everything a particular
object took part in, pairwise co-travel totals for carpool matching, or a
one-line summary for dashboards.  These helpers are pure functions over
:class:`~repro.core.convoy.Convoy` lists, so they compose with any of the
discovery algorithms (and with baseline outputs shaped as convoys).
"""

from __future__ import annotations

from collections import Counter, defaultdict


def top_convoys(convoys, limit=10, by="duration"):
    """Return the ``limit`` highest-ranked convoys.

    Args:
        convoys: iterable of convoys.
        limit: maximum number to return.
        by: ranking key — ``"duration"`` (lifetime), ``"size"`` (member
            count), or ``"mass"`` (lifetime × size, the total object-time
            the convoy represents).

    Ties break deterministically via the convoy sort key.
    """
    rankers = {
        "duration": lambda c: c.lifetime,
        "size": lambda c: c.size,
        "mass": lambda c: c.lifetime * c.size,
    }
    if by not in rankers:
        raise ValueError(f"unknown ranking {by!r}; expected {sorted(rankers)}")
    ranker = rankers[by]
    return sorted(
        convoys, key=lambda c: (-ranker(c),) + c.sort_key()
    )[:max(0, limit)]


def longest_convoy(convoys):
    """Return the longest-lifetime convoy, or None for an empty input.

    The paper notes that finding the *longest-duration flock* is NP-hard;
    for convoys the discovery algorithms already enumerate maximal runs,
    so the longest is a simple scan.
    """
    best = top_convoys(convoys, limit=1, by="duration")
    return best[0] if best else None


def convoys_of_object(convoys, object_id):
    """Return every convoy containing ``object_id``, in time order."""
    found = [c for c in convoys if object_id in c.objects]
    found.sort(key=lambda c: c.sort_key())
    return found


def convoys_during(convoys, t_lo, t_hi):
    """Return every convoy whose interval intersects ``[t_lo, t_hi]``."""
    if t_hi < t_lo:
        raise ValueError(f"window reversed: [{t_lo}, {t_hi}]")
    found = [c for c in convoys if c.t_start <= t_hi and t_lo <= c.t_end]
    found.sort(key=lambda c: c.sort_key())
    return found


def co_travel_totals(convoys):
    """Return total co-travel time per object pair.

    For every unordered pair of objects, sums the lifetimes of the convoys
    containing both — the affinity score a carpool/ride-sharing matcher
    ranks by.  Overlapping convoys both count (they represent the same
    physical co-travel seen through different maximal groups), so treat
    the totals as a ranking signal rather than exact seconds.

    Returns:
        ``Counter`` mapping ``frozenset({a, b})`` to total time points.
    """
    totals = Counter()
    for convoy in convoys:
        members = sorted(convoy.objects, key=repr)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                totals[frozenset((a, b))] += convoy.lifetime
    return totals


def participation_totals(convoys):
    """Return per-object total convoy time (the 'most social object' view)."""
    totals = Counter()
    for convoy in convoys:
        for obj in convoy.objects:
            totals[obj] += convoy.lifetime
    return totals


def convoy_timeline(convoys, t_lo=None, t_hi=None):
    """Return ``{t: number of convoys active at t}`` over the window.

    Useful for plotting congestion/co-movement intensity over time.  The
    window defaults to the convoys' full extent.
    """
    convoys = list(convoys)
    if not convoys:
        return {}
    if t_lo is None:
        t_lo = min(c.t_start for c in convoys)
    if t_hi is None:
        t_hi = max(c.t_end for c in convoys)
    deltas = defaultdict(int)
    for convoy in convoys:
        lo = max(t_lo, convoy.t_start)
        hi = min(t_hi, convoy.t_end)
        if lo > hi:
            continue
        deltas[lo] += 1
        deltas[hi + 1] -= 1
    timeline = {}
    active = 0
    for t in range(t_lo, t_hi + 1):
        active += deltas.get(t, 0)
        timeline[t] = active
    return timeline


def summarize(convoys):
    """Return a one-glance summary dict of a result set.

    Keys: ``count``, ``objects`` (distinct members), ``max_size``,
    ``max_lifetime``, ``mean_size``, ``mean_lifetime``, ``total_mass``
    (Σ size × lifetime).  Zeros for an empty input.
    """
    convoys = list(convoys)
    if not convoys:
        return {
            "count": 0,
            "objects": 0,
            "max_size": 0,
            "max_lifetime": 0,
            "mean_size": 0.0,
            "mean_lifetime": 0.0,
            "total_mass": 0,
        }
    members = set()
    for convoy in convoys:
        members |= convoy.objects
    return {
        "count": len(convoys),
        "objects": len(members),
        "max_size": max(c.size for c in convoys),
        "max_lifetime": max(c.lifetime for c in convoys),
        "mean_size": sum(c.size for c in convoys) / len(convoys),
        "mean_lifetime": sum(c.lifetime for c in convoys) / len(convoys),
        "total_mass": sum(c.size * c.lifetime for c in convoys),
    }
