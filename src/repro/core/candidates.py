"""Convoy-candidate bookkeeping shared by CMC and the CuTS filter.

Both Algorithm 1 (CMC, one step per time point) and Algorithm 2 (CuTS
filter, one step per λ-length time partition) run the same loop around
their clustering call:

* every live candidate ``v`` is joined with every new cluster ``c``; when
  ``|c ∩ v| >= m`` the candidate survives as ``c ∩ v`` with its end time
  advanced;
* candidates no cluster extends die — and are *reported* if they lasted at
  least ``k`` time points;
* clusters seed new candidates.

:class:`CandidateTracker` implements that loop once.  Lifetimes are tracked
as closed time intervals (``end - start + 1``), which coincides with
Algorithm 1's per-step counter and with Algorithm 2's ``+= λ`` counter
because extension steps are always temporally contiguous.

Three deliberate deviations from the published pseudocode, the first and
third governed by ``paper_semantics``:

1. **Complete seeding (default).**  Algorithm 1 line 20 seeds a cluster as
   a new candidate only when it extended *no* existing candidate.  That
   rule loses convoys: when a cluster ``c`` extends a candidate ``v`` the
   chain narrows to ``c ∩ v``, and a convoy formed by ``c``'s *full*
   membership starting at the current step is never tracked (later convoy
   literature documents this incompleteness of CMC, e.g. Aung & Tan's
   "valid convoy" line of work).  The default semantics seeds every
   cluster as a fresh candidate **unless some surviving candidate already
   has exactly the cluster's object set** — an equal-set survivor evolves
   identically ever after, so the suppressed seed could only ever report a
   time-dominated fragment of what the survivor reports.  This keeps the
   candidate count linear on stable groups while restoring completeness.
   ``paper_semantics=True`` reproduces the published rule verbatim (the
   semantics ablation bench compares the two).

2. **Gap handling.**  When a step has no clusters (fewer than ``m``
   objects alive, or none close together), Algorithm 1 lines 5-6 "skip
   the iteration" leaving ``V`` intact, which would let a candidate bridge
   a time point where its objects were provably not density-connected —
   contradicting Definition 3's "k consecutive time points".  The tracker
   instead closes every live candidate on such steps.  This deviation is
   unconditional: feeding an empty cluster list to :meth:`advance` always
   ends every chain.

3. **Report on narrowing (default).**  Under the published rule a chain
   that *narrows* (every extending cluster drops some of its members) just
   continues with the intersection; the pre-narrowing member set — which
   was density-connected at every step since the chain's start, a maximal
   run per Definition 3 — is silently forgotten.  The default semantics
   closes that run (reporting it when it lived >= k) whenever no extension
   preserves the full member set, while the narrowed children continue.
   Besides completeness, this is what makes the CuTS refinement's answer
   *equal* to CMC's: a refinement window necessarily cuts chains at the
   candidate boundary, and the window-end flush of a still-narrowing chain
   only matches a run the global algorithm actually reports if narrowing
   runs are reported globally too.

The tracker also records, per candidate, the **cluster the chain passed
through in every time window**.  The CuTS refinement step needs it: the
intersection alone can drop "bridge" objects that connected the convoy's
members at individual time points, and re-clustering without the bridges
would break density connections that exist in the full database.  (Any
snapshot cluster containing the chain's objects at a covered time is a
subset of the chain's window cluster there, because density clusters are
disjoint and the window cluster contains the chain's objects.)  Window
histories are kept as shared-prefix cons lists so a long chain costs O(1)
per step, and are only materialized when a chain closes.

Diff-aware stepping
-------------------

:meth:`CandidateTracker.advance` re-intersects every live candidate
against every cluster, even when the clustering barely changed since the
previous step.  :meth:`CandidateTracker.advance_delta` accepts the
:class:`~repro.clustering.incremental.ClusterDelta` the incremental
clusterer produces anyway and exploits two facts:

* snapshot clusters are disjoint, and every live candidate's object set is
  contained in the cluster that last extended (or seeded) it — its
  *support* cluster;
* therefore a candidate whose support cluster is ``unchanged`` this step
  (same member set) can only be extended by that same cluster, and the
  extension preserves its full member set.

Such candidates are *spliced* straight through — ``t_end`` advanced and
the window history extended in O(1), no set intersection — while
candidates whose support is dirty (changed, rebuilt under a fresh id, or
vanished) are re-intersected against the dirty clusters only (an
unchanged cluster is disjoint from every candidate it does not support).
Candidates carrying no support id (the previous step ran the classic
:meth:`advance`) are re-intersected against everything.  The survivor
*order*, the reports, and the window histories are bit-for-bit what
:meth:`advance` would produce; the differential suite in
``tests/streaming/test_delta_equivalence.py`` holds the two paths equal
tick for tick.

The shard seam
--------------

Both stepping methods are factored as *plan → match → apply*: a first
pass over the live list decides, per candidate, whether it splices
through (unchanged support) or needs a cluster scan; the scans are then
executed in bulk by the pure kernel :func:`match_candidates` behind the
:meth:`CandidateTracker._match_live` hook; finally one ordered apply
pass replays the classic survivor/seed/report logic from the match
results.  Because the kernel is a pure function of ``(clusters, object
sets, scan lists)`` and the apply pass runs strictly in live-list order,
the matching work can be executed anywhere — in particular fanned out
across shards and executor backends by
:class:`repro.streaming.sharding.ShardedCandidateTracker`, which
overrides only ``_match_live`` — without moving a single report or
survivor out of the classic deterministic order.  Splices and closes
never leave the owning tracker: they are O(1) bookkeeping, and keeping
them local is what makes the fan-out transparent.

The apply pass can additionally narrate itself: with
``_collect_provenance`` enabled the tracker records, per step, one event
per *surviving* chain in exactly the new live-list order —
``("splice", old_pos)`` for an O(1) splice-through,
``("extend", old_pos, preserved)`` for a survivor born from a cluster
scan (``preserved`` when the extension kept the parent's full member
set, i.e. the chain continued rather than narrowed), and ``("seed",)``
for a freshly seeded cluster.  Resident-mode sharding
(:class:`repro.streaming.sharding.ShardedCandidateTracker` with a
resident transport) replays that narration to assign stable chain ids
and derive the put/drop deltas it ships to long-lived shard workers.
The flag is off by default so the unsharded hot path records nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.clustering.incremental import UNCHANGED
from repro.clustering.numeric import (
    KernelDispatch,
    MatchPlanStats,
    match_candidates_bitset,
    match_candidates_merge,
    match_candidates_vector,
    validate_backend,
    validate_match_kernel,
)
from repro.core.convoy import Convoy

#: Counter keys a tracker maintains in its ``counters`` dict.
COUNTER_KEYS = (
    "advance_steps",
    "delta_steps",
    "spliced_candidates",
    "reintersected_candidates",
)


def match_candidates(members, jobs, min_objects):
    """Pure matching kernel shared by the serial path and shard workers.

    Stateless and picklable by construction: this is the unit of work the
    sharded tracker ships to executor backends (one call per shard batch),
    and exactly what the unsharded tracker runs inline.

    Args:
        members: list of cluster member ``frozenset``s for this step.
        jobs: list of ``(pos, objects, scan)`` triples — a candidate's
            position in the live list, its object set, and the cluster
            indexes to scan (``None`` scans every cluster).
        min_objects: the convoy query's ``m``.

    Returns:
        List of ``(pos, matches)`` pairs in job order, where ``matches``
        lists the ``(cluster_index, intersection)`` pairs with
        ``len(intersection) >= min_objects``, in scan order.
    """
    out = []
    full_scan = range(len(members))
    for pos, objects, scan in jobs:
        matches = []
        for index in (full_scan if scan is None else scan):
            common = objects & members[index]
            if len(common) >= min_objects:
                matches.append((index, common))
        out.append((pos, matches))
    return out


#: The fixed (per-tick-stateless) match kernels by name; ``auto`` is
#: deliberately absent — it is a per-tick *policy* over these three,
#: resolved by the tracker's :class:`~repro.clustering.numeric.
#: KernelDispatch` before any kernel name ships to a shard.
FIXED_MATCH_KERNELS = {
    "scalar": match_candidates,
    "merge": match_candidates_merge,
    "bitset": match_candidates_bitset,
}


def resolve_match_kernel(backend, kernel=None):
    """Map a numeric backend (plus optional kernel name) to its kernel.

    Module-level (hence picklable by reference): shard workers resolve
    the kernel from the backend and kernel *names* shipped in their
    task, so the task payload stays a plain data tuple.  With ``kernel``
    None the backend decides (``"python"`` → the scalar kernel,
    ``"vector"`` → the owner-join batch kernel); a fixed kernel name
    (``"scalar"`` / ``"merge"`` / ``"bitset"``) overrides the backend.
    Unknown names raise a :class:`ValueError` listing the valid choices
    — never a bare :class:`KeyError` — and ``"auto"`` is rejected here
    because dispatch is stateful and resolves per tick in the tracker.
    """
    kernel = validate_match_kernel(kernel)
    if kernel == "auto":
        raise ValueError(
            "auto dispatch resolves per tick inside the tracker; "
            "resolve_match_kernel accepts only the fixed kernels "
            f"{tuple(FIXED_MATCH_KERNELS)} or None"
        )
    if kernel is not None:
        return FIXED_MATCH_KERNELS[kernel]
    if validate_backend(backend) == "vector":
        return match_candidates_vector
    return match_candidates


def match_plan_stats(members, jobs):
    """Measure one tick's match-join shape for the kernel dispatcher.

    Computed by the plan pass (over the very jobs list it just built)
    before any kernel runs: job/cluster/pair counts, total candidate and
    member id volume, per-scan candidate-id volume, and the candidate
    population bound.  Deliberately O(jobs + clusters) — only ``len()``
    arithmetic, no per-object work — so the measuring pass costs nothing
    next to even the cheapest kernel on a tiny tick.  ``population`` is
    therefore the *total* job id count, an upper bound on the bitset
    remap width that is exact when candidates are disjoint; the
    dispatcher's cost fit only needs the feature to scale consistently.
    See :class:`~repro.clustering.numeric.MatchPlanStats`.
    """
    n_clusters = len(members)
    member_ids = sum(len(cluster) for cluster in members)
    pairs = job_ids = scan_ids = 0
    for _pos, objects, scan in jobs:
        size = len(objects)
        fan = n_clusters if scan is None else len(scan)
        pairs += fan
        job_ids += size
        scan_ids += fan * size
    return MatchPlanStats(
        jobs=len(jobs), clusters=n_clusters, pairs=pairs, job_ids=job_ids,
        member_ids=member_ids, scan_ids=scan_ids, population=job_ids,
    )


@dataclass(frozen=True)
class ClosedCandidate:
    """A candidate chain that ended with lifetime >= k.

    Attributes:
        objects: the chain's running intersection — the convoy's member
            set under the intersection semantics of Algorithms 1/2.
        t_start, t_end: the closed time interval the chain covered.
        windows: tuple of ``(window_start, window_end, members)`` — the
            cluster the chain passed through in each step window, in time
            order.  Refinement re-clusters exactly these objects at the
            covered times.
    """

    objects: frozenset
    t_start: int
    t_end: int
    windows: tuple

    @property
    def lifetime(self):
        """Number of time points covered (``t_end - t_start + 1``)."""
        return self.t_end - self.t_start + 1

    @property
    def union(self):
        """Every object appearing in any window cluster along the chain."""
        merged = set()
        for _ws, _we, members in self.windows:
            merged |= members
        return frozenset(merged)

    def as_convoy(self):
        """The chain's answer as a :class:`~repro.core.convoy.Convoy`."""
        return Convoy(self.objects, self.t_start, self.t_end)

    def as_candidate_convoy(self):
        """The chain's *union* as a convoy-shaped summary of the candidate."""
        return Convoy(self.union, self.t_start, self.t_end)


class _Live:
    """One live candidate chain (mutable while tracked).

    ``history`` is a cons node ``(parent_node, ws, we, members)`` sharing
    its prefix with the parent chain's node.  ``support`` is the stable id
    (per :class:`~repro.clustering.incremental.ClusterDelta`) of the
    cluster that extended or seeded the chain at the last step — the
    chain's objects are a subset of that cluster — or None when the last
    step ran without cluster ids.
    """

    __slots__ = ("objects", "t_start", "t_end", "history", "support")

    def __init__(self, objects, t_start, t_end, history, support=None):
        self.objects = objects
        self.t_start = t_start
        self.t_end = t_end
        self.history = history
        self.support = support

    @property
    def lifetime(self):
        return self.t_end - self.t_start + 1

    def close(self):
        windows = []
        node = self.history
        while node is not None:
            parent, ws, we, members = node
            windows.append((ws, we, members))
            node = parent
        windows.reverse()
        return ClosedCandidate(
            self.objects, self.t_start, self.t_end, tuple(windows)
        )


class CandidateTracker:
    """Incremental candidate maintenance for CMC / the CuTS filter.

    Args:
        min_objects: the convoy query's ``m``.
        min_lifetime: the convoy query's ``k`` (in time points).
        paper_semantics: reproduce Algorithm 1's seeding rule verbatim
            (False by default — see the module docstring).
        counters: optional dict receiving bookkeeping totals (the
            ``COUNTER_KEYS``); a fresh dict is created when omitted and is
            always available as :attr:`counters`.
        backend: numeric backend for the matching kernel — ``"python"``
            (default) runs :func:`match_candidates`'s pairwise set
            intersections; ``"vector"`` runs the batch join of
            :func:`~repro.clustering.numeric.match_candidates_vector`.
            Both produce identical matches, so the tracker's output is
            bit-for-bit the same either way.
        match_kernel: optional match-kernel override — one of
            :data:`~repro.clustering.numeric.MATCH_KERNELS`.  A fixed
            name (``"scalar"`` / ``"merge"`` / ``"bitset"``) pins that
            kernel regardless of backend; ``"auto"`` lets a
            :class:`~repro.clustering.numeric.KernelDispatch` pick per
            tick from the plan pass's measured join shape (and counts
            its choices in ``dispatch_scalar`` / ``dispatch_merge`` /
            ``dispatch_bitset``).  Every kernel produces identical
            matches, so this knob only moves time, never output.

    Usage: call :meth:`advance` (or, with cluster diffs available,
    :meth:`advance_delta`) once per time step (or partition) with the
    clusters found there; collect the :class:`ClosedCandidate` records it
    reports; call :meth:`flush` after the last step.
    """

    def __init__(self, min_objects, min_lifetime, paper_semantics=False,
                 counters=None, backend="python", match_kernel=None):
        self._numeric_backend = validate_backend(backend)
        self._match_kernel = validate_match_kernel(match_kernel)
        if self._match_kernel == "auto":
            self._dispatch = KernelDispatch()
            self._kernel = None
        else:
            self._dispatch = None
            self._kernel = resolve_match_kernel(
                self._numeric_backend, self._match_kernel
            )
        if min_objects < 1:
            raise ValueError(f"m must be >= 1, got {min_objects}")
        if min_lifetime < 1:
            raise ValueError(f"k must be >= 1, got {min_lifetime}")
        self._m = min_objects
        self._k = min_lifetime
        self._paper_semantics = paper_semantics
        self._candidates = []
        self._last_end = None
        # Apply-pass narration (see module docstring): when enabled, every
        # advance leaves one event per survivor, in new-live-list order,
        # in `last_provenance`; the resident sharding layer consumes it.
        self._collect_provenance = False
        self.last_provenance = None
        self.counters = counters if counters is not None else {}
        for key in COUNTER_KEYS:
            self.counters.setdefault(key, 0)
        if self._dispatch is not None:
            for name in KernelDispatch.KERNELS:
                self.counters.setdefault(f"dispatch_{name}", 0)

    def _begin_step(self, window_start, window_end):
        """Validate one step's window against the step-ordering contract."""
        if window_end < window_start:
            raise ValueError(
                f"window reversed: [{window_start}, {window_end}]"
            )
        if self._last_end is not None and window_start <= self._last_end:
            raise ValueError(
                f"steps must advance in time: window [{window_start}, "
                f"{window_end}] does not start after the previous end "
                f"{self._last_end}"
            )
        self._last_end = window_end
        self.counters["advance_steps"] += 1

    @property
    def live_candidates(self):
        """Snapshot of the live candidate set (for introspection/tests)."""
        return [
            Convoy(c.objects, c.t_start, c.t_end) for c in self._candidates
        ]

    @property
    def live_count(self):
        """Number of live candidate chains (O(1), for monitoring)."""
        return len(self._candidates)

    @property
    def oldest_live_start(self):
        """Earliest ``t_start`` among live chains (None when none live).

        Every convoy this tracker can still close starts at or after
        this time — the retention horizon for anything buffering
        per-tick context alongside the tracker (the persistence sink's
        position log prunes below it)."""
        if not self._candidates:
            return None
        return min(candidate.t_start for candidate in self._candidates)

    def _match_live(self, members, jobs):
        """Execute the step's cluster scans; the shard fan-out hook.

        The base tracker runs the kernel inline.
        :class:`repro.streaming.sharding.ShardedCandidateTracker`
        overrides this one method to partition ``jobs`` across shards and
        executor backends; result order is irrelevant (the caller keys by
        position), so any merge of the per-shard outputs is legal.
        """
        if self._dispatch is None:
            return self._kernel(members, jobs, self._m)
        stats = match_plan_stats(members, jobs)
        name = self._dispatch.choose(stats)
        self.counters[f"dispatch_{name}"] += 1
        started = perf_counter()
        out = FIXED_MATCH_KERNELS[name](members, jobs, self._m)
        self._dispatch.observe(name, stats, perf_counter() - started)
        return out

    def advance(self, clusters, window_start, window_end):
        """Process one time step covering ``[window_start, window_end]``.

        Args:
            clusters: iterable of object-id sets found by this step's
                density clustering.  Clusters smaller than ``m`` are
                ignored (DBSCAN with ``min_pts = m`` never produces them,
                but the tracker does not rely on that).
            window_start, window_end: closed time interval the step covers.
                CMC passes ``t, t``; the CuTS filter passes the partition
                bounds.  Steps must be fed in ascending, non-overlapping
                time order.

        Returns:
            List of :class:`ClosedCandidate` — chains that died at this
            step after living at least ``k`` time points.
        """
        self._begin_step(window_start, window_end)
        usable = [frozenset(c) for c in clusters if len(c) >= self._m]
        if usable:
            # Clusterless steps (gaps, below-m snapshots) close every chain
            # without a single set intersection; counting them would
            # attribute classic-path work to steps that did none.
            self.counters["reintersected_candidates"] += len(self._candidates)
        matched = {}
        if usable and self._candidates:
            jobs = [(pos, candidate.objects, None)
                    for pos, candidate in enumerate(self._candidates)]
            matched = dict(self._match_live(usable, jobs))
        closed = []
        survivors = {}  # (objects, t_start) -> _Live
        extended = [False] * len(usable)
        prov = [] if self._collect_provenance else None
        for pos, candidate in enumerate(self._candidates):
            assigned = False
            preserved = False  # some extension kept the full member set
            for index, common in matched.get(pos, ()):
                assigned = True
                extended[index] = True
                if len(common) == len(candidate.objects):
                    preserved = True
                key = (common, candidate.t_start)
                if key not in survivors:
                    # A duplicate key means two parents were extended by
                    # the same cluster into identical chains; either
                    # parent's window history is sound (every historical
                    # window cluster contains the chain's objects), so
                    # the first one is kept.
                    survivors[key] = _Live(
                        common,
                        candidate.t_start,
                        window_end,
                        (candidate.history, window_start, window_end,
                         usable[index]),
                    )
                    if prov is not None:
                        prov.append(
                            ("extend", pos,
                             len(common) == len(candidate.objects))
                        )
            if self._paper_semantics:
                report_run = not assigned
            else:
                report_run = not preserved
            if report_run and candidate.lifetime >= self._k:
                closed.append(candidate.close())
        survivor_objects = {live.objects for live in survivors.values()}
        for index, cluster in enumerate(usable):
            if self._paper_semantics:
                seed = not extended[index]
            else:
                seed = cluster not in survivor_objects
            if seed:
                key = (cluster, window_start)
                if key not in survivors:
                    survivors[key] = _Live(
                        cluster,
                        window_start,
                        window_end,
                        (None, window_start, window_end, cluster),
                    )
                    if prov is not None:
                        prov.append(("seed",))
        self._candidates = list(survivors.values())
        if prov is not None:
            self.last_provenance = prov
        return closed

    def advance_delta(self, clusters, delta, window_start, window_end):
        """Process one time step using a cluster diff (see module docs).

        Produces exactly what ``advance(clusters, ...)`` would — the same
        reports in the same order, the same survivors in the same order,
        the same window histories — but pays per-candidate set
        intersections only around clusters the diff marks dirty.

        Args:
            clusters: this step's cluster list, parallel to ``delta.ids``.
            delta: the :class:`~repro.clustering.incremental.ClusterDelta`
                describing ``clusters`` against the *previous step's*
                clusters.  The diff must be stated against the cluster
                list of this tracker's immediately preceding non-empty
                step (the streaming engine guarantees that by feeding
                every clustering it runs straight to the tracker).  None
                falls back to the classic full re-intersection.
            window_start, window_end: as for :meth:`advance`.

        Returns:
            List of :class:`ClosedCandidate`, exactly as :meth:`advance`.
        """
        if delta is None:
            return self.advance(clusters, window_start, window_end)
        if len(delta.ids) != len(clusters):
            raise ValueError(
                f"delta describes {len(delta.ids)} clusters, got "
                f"{len(clusters)}"
            )
        self._begin_step(window_start, window_end)
        self.counters["delta_steps"] += 1
        usable = []  # (frozenset members, stable id, is_dirty)
        for members, cid, status in zip(clusters, delta.ids, delta.status):
            if len(members) >= self._m:
                usable.append((frozenset(members), cid, status != UNCHANGED))
        unchanged_at = {
            cid: index
            for index, (_members, cid, dirty) in enumerate(usable)
            if not dirty
        }
        dirty_indexes = tuple(
            index for index, (_m, _c, dirty) in enumerate(usable) if dirty
        )
        members = [entry[0] for entry in usable]
        # Plan pass: decide, per candidate, splice vs scan (candidate order
        # is preserved through the job positions, so the apply pass below
        # replays the classic ordering exactly).
        splice_at = {}  # pos -> unchanged cluster index
        jobs = []
        spliced = reintersected = 0
        for pos, candidate in enumerate(self._candidates):
            support = candidate.support
            if support is not None and support in unchanged_at:
                # Sole possible extension, full member-set preservation:
                # splice the chain through in O(1).
                splice_at[pos] = unchanged_at[support]
                spliced += 1
                continue
            # Dirty or unknown support: re-intersect.  A known support
            # confines the candidate inside a dirty (or vanished) previous
            # cluster, so only dirty clusters can reach m shared objects;
            # an unknown support (previous step ran the classic advance)
            # gets the full scan.
            if support is not None:
                scan, scan_size = dirty_indexes, len(dirty_indexes)
            else:
                scan, scan_size = None, len(usable)
            if scan_size:
                # Mirror advance()'s rule: only count candidates that
                # actually enter an intersection scan, so clusterless or
                # all-unchanged steps don't inflate the re-intersection
                # totals the CLI and benches report.
                reintersected += 1
                jobs.append((pos, candidate.objects, scan))
        matched = dict(self._match_live(members, jobs)) if jobs else {}
        closed = []
        survivors = {}  # (objects, t_start) -> _Live, in classic order
        extended = [False] * len(usable)
        prov = [] if self._collect_provenance else None
        for pos, candidate in enumerate(self._candidates):
            unchanged_index = splice_at.get(pos)
            if unchanged_index is not None:
                extended[unchanged_index] = True
                key = (candidate.objects, candidate.t_start)
                if key not in survivors:
                    survivors[key] = _Live(
                        candidate.objects,
                        candidate.t_start,
                        window_end,
                        (candidate.history, window_start, window_end,
                         members[unchanged_index]),
                        support=candidate.support,
                    )
                    if prov is not None:
                        prov.append(("splice", pos))
                continue
            assigned = False
            preserved = False
            for index, common in matched.get(pos, ()):
                assigned = True
                extended[index] = True
                if len(common) == len(candidate.objects):
                    preserved = True
                key = (common, candidate.t_start)
                if key not in survivors:
                    survivors[key] = _Live(
                        common,
                        candidate.t_start,
                        window_end,
                        (candidate.history, window_start, window_end,
                         members[index]),
                        support=usable[index][1],
                    )
                    if prov is not None:
                        prov.append(
                            ("extend", pos,
                             len(common) == len(candidate.objects))
                        )
            if self._paper_semantics:
                report_run = not assigned
            else:
                report_run = not preserved
            if report_run and candidate.lifetime >= self._k:
                closed.append(candidate.close())
        self.counters["spliced_candidates"] += spliced
        self.counters["reintersected_candidates"] += reintersected
        survivor_objects = {live.objects for live in survivors.values()}
        for index, (cluster, cid, _dirty) in enumerate(usable):
            if self._paper_semantics:
                seed = not extended[index]
            else:
                seed = cluster not in survivor_objects
            if seed:
                key = (cluster, window_start)
                if key not in survivors:
                    survivors[key] = _Live(
                        cluster,
                        window_start,
                        window_end,
                        (None, window_start, window_end, cluster),
                        support=cid,
                    )
                    if prov is not None:
                        prov.append(("seed",))
        self._candidates = list(survivors.values())
        if prov is not None:
            self.last_provenance = prov
        return closed

    def prune_longer_than(self, max_lifetime):
        """Force-close every live chain that has lived ``max_lifetime`` points.

        The streaming engine's bounded-memory window: a chain's per-step
        history grows with its age, so capping the age caps memory at
        O(live chains x max_lifetime).  Pruned chains are reported when they
        qualify (lifetime >= k); their objects may immediately re-seed a
        fresh chain from the next step's clusters, so a convoy outliving the
        window is reported as consecutive fragments rather than dropped.

        Args:
            max_lifetime: close chains whose lifetime reached this many time
                points.  Must be >= the tracker's ``k`` or no pruned chain
                could ever be reported.

        Returns:
            List of :class:`ClosedCandidate` for the pruned chains that
            lived at least ``k`` time points.
        """
        if max_lifetime < self._k:
            raise ValueError(
                f"max_lifetime must be >= k={self._k}, got {max_lifetime}"
            )
        kept = []
        closed = []
        for candidate in self._candidates:
            if candidate.lifetime >= max_lifetime:
                # max_lifetime >= k, so every pruned chain qualifies.
                closed.append(candidate.close())
            else:
                kept.append(candidate)
        self._candidates = kept
        return closed

    def flush(self):
        """Close every remaining candidate; return the qualifying records.

        Must be called once after the final :meth:`advance`; the tracker
        can then be discarded.
        """
        closed = [
            candidate.close()
            for candidate in self._candidates
            if candidate.lifetime >= self._k
        ]
        self._candidates = []
        return closed
