"""Convoy discovery — the paper's primary contribution.

Public surface:

* :class:`Convoy` — a query answer: a maximal group of objects density-
  connected at every time point of a closed interval of length >= k;
* :func:`cmc` — the Coherent Moving Clusters algorithm (Section 4), the
  exact baseline every other method is validated against;
* :func:`cuts` — the filter-and-refine CuTS family (Sections 5-6); the
  ``variant`` argument selects CuTS, CuTS+, or CuTS*;
* :func:`compute_delta` / :func:`compute_lambda` — the parameter-selection
  guidelines of Section 7.4;
* :mod:`repro.core.verification` — convoy validity checking, result
  normalization, and the false-positive/negative rates of Appendix B.1.
"""

from repro.core.bounds import (
    lemma1_prunes,
    lemma2_prunes,
    lemma3_prunes,
    omega,
)
from repro.core.cmc import cmc
from repro.core.convoy import Convoy
from repro.core.cuts import CutsResult, cuts, cuts_filter, cuts_refine
from repro.core.params import compute_delta, compute_lambda
from repro.core.partition import TimePartitioner, build_partition_polylines
from repro.core.queries import (
    co_travel_totals,
    convoy_timeline,
    convoys_during,
    convoys_of_object,
    longest_convoy,
    participation_totals,
    summarize,
    top_convoys,
)
from repro.core.verification import (
    convoy_sets_equal,
    false_negative_rate,
    false_positive_rate,
    is_valid_convoy,
    normalize_convoys,
)

__all__ = [
    "Convoy",
    "CutsResult",
    "TimePartitioner",
    "build_partition_polylines",
    "cmc",
    "co_travel_totals",
    "compute_delta",
    "compute_lambda",
    "convoy_sets_equal",
    "convoy_timeline",
    "convoys_during",
    "convoys_of_object",
    "cuts",
    "longest_convoy",
    "participation_totals",
    "summarize",
    "top_convoys",
    "cuts_filter",
    "cuts_refine",
    "false_negative_rate",
    "false_positive_rate",
    "is_valid_convoy",
    "lemma1_prunes",
    "lemma2_prunes",
    "lemma3_prunes",
    "normalize_convoys",
    "omega",
]
