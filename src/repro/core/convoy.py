"""The :class:`Convoy` result type (Definition 3)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Convoy:
    """A convoy query answer ``<objects, [t_start, t_end]>``.

    A convoy is a group of at least ``m`` objects that are density-connected
    with respect to ``e`` at every one of at least ``k`` consecutive time
    points.  The ``m``/``k``/``e`` parameters live with the query, not the
    result; a :class:`Convoy` records *which* objects travelled together and
    *when*.

    Instances are immutable, hashable, and ordered (by start time, end time,
    then object ids) so result sets can be compared across algorithms.
    """

    t_start: int
    t_end: int
    objects: frozenset

    def __init__(self, objects, t_start, t_end):
        if t_end < t_start:
            raise ValueError(f"convoy interval reversed: [{t_start}, {t_end}]")
        frozen = frozenset(objects)
        if not frozen:
            raise ValueError("convoy must contain at least one object")
        object.__setattr__(self, "objects", frozen)
        object.__setattr__(self, "t_start", int(t_start))
        object.__setattr__(self, "t_end", int(t_end))

    def sort_key(self):
        """Deterministic ordering key for reporting and comparison."""
        return (self.t_start, self.t_end, tuple(sorted(map(repr, self.objects))))

    @property
    def size(self):
        """Number of member objects."""
        return len(self.objects)

    @property
    def lifetime(self):
        """Number of consecutive time points covered (``t_end - t_start + 1``)."""
        return self.t_end - self.t_start + 1

    @property
    def interval(self):
        """The closed time interval as a ``(t_start, t_end)`` tuple."""
        return (self.t_start, self.t_end)

    def dominates(self, other):
        """Return True if this convoy subsumes ``other``.

        ``other`` adds no information when its objects are a subset and its
        interval lies inside this convoy's interval.  Used by result
        normalization to drop fragments that the CuTS refinement can emit
        when overlapping candidates contain the same true convoy.
        """
        return (
            other.objects <= self.objects
            and self.t_start <= other.t_start
            and other.t_end <= self.t_end
        )

    def overlaps_time(self, other):
        """Return True if the two convoys' intervals share a time point."""
        return self.t_start <= other.t_end and other.t_start <= self.t_end

    def __repr__(self):
        members = ", ".join(sorted(map(str, self.objects)))
        return f"Convoy([{members}], t=[{self.t_start}, {self.t_end}])"
