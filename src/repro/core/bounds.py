"""The pruning bounds of Lemmas 1-3 and the ω trajectory distance.

These are thin, explicitly-named wrappers over the geometry layer.  The
filter's range search (:mod:`repro.clustering.range_search`) inlines the
same logic for speed; the wrappers exist so the lemmas can be stated — and
property-tested — in the paper's own vocabulary:

* **Lemma 1** — ``DLL(l'q, l'i) > e + δ(l'q) + δ(l'i)`` implies the
  original objects were farther than ``e`` apart at every shared time.
* **Lemma 2** — ``Dmin(B(l'q), B(S)) > e + δ(l'q) + δmax(S)`` lets a whole
  group ``S`` of segments be discarded at once.
* **Lemma 3** — Lemma 1 with the tighter time-parameterized distance
  ``D*`` for DP*-simplified segments.
"""

from __future__ import annotations

from repro.clustering.range_search import polyline_omega
from repro.geometry.bbox import box_min_distance


def lemma1_prunes(seg_q, tol_q, seg_i, tol_i, eps):
    """Return True when Lemma 1 discards the segment pair.

    Args:
        seg_q, seg_i: :class:`repro.trajectory.TimestampedSegment`.
        tol_q, tol_i: the segments' actual tolerances δ(l').
        eps: the convoy distance threshold ``e``.
    """
    return seg_q.spatial_distance_to(seg_i) > eps + tol_q + tol_i


def lemma3_prunes(seg_q, tol_q, seg_i, tol_i, eps):
    """Return True when Lemma 3 discards the segment pair (D* distance).

    Requires DP*-simplified segments: the tolerance must bound the
    *time-ratio* deviation ``D(o(t), l'(t))``, which DP and DP+ do not
    guarantee.
    """
    return seg_q.cpa_distance_to(seg_i) > eps + tol_q + tol_i


def lemma2_prunes(box_q, tol_q, group_box, group_max_tol, eps):
    """Return True when Lemma 2 discards an entire segment group.

    Args:
        box_q: bounding box of the query segment (or polyline).
        tol_q: the query's actual tolerance.
        group_box: ``B(S)``, the bounding box of the group.
        group_max_tol: ``δmax(S)``, the largest tolerance in the group.
        eps: the convoy distance threshold ``e``.
    """
    return box_min_distance(box_q, group_box) > eps + tol_q + group_max_tol


def omega(poly_q, poly_i, mode="dll"):
    """Return ``ω(o'q, o'i)`` (Section 5.2).

    The minimum, over time-overlapping segment pairs, of the segment
    distance minus both actual tolerances; ``inf`` when the trajectories
    never coexist.  ``ω > e`` proves the original objects were never within
    ``e`` of each other, so the pair can never share a convoy.

    Args:
        poly_q, poly_i: :class:`repro.clustering.PartitionPolyline`.
        mode: ``"dll"`` (Lemma 1) or ``"cpa"`` (Lemma 3).
    """
    return polyline_omega(poly_q, poly_i, mode)
