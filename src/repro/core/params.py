"""Automatic selection of the CuTS internal parameters δ and λ (Section 7.4).

Neither parameter affects correctness — only running time — but bad values
can make the filter useless (δ too large) or the clustering too frequent
(λ too small).  The paper gives data-driven guidelines; this module
implements them as :func:`compute_delta` and :func:`compute_lambda`, which
``cuts()`` calls when the caller does not pass explicit values.
"""

from __future__ import annotations

import random

from repro.geometry.distance import point_segment_distance


def _division_tolerances(trajectory):
    """Replay DP with δ = 0, recording each division's split deviation.

    Section 7.4, first step: "we perform the original DP algorithm over a
    trajectory with δ = 0.  In each step of the division process, we store
    the actual tolerance values."  The stored value of a division is the
    deviation of the chosen split point — the tolerance the chord *would*
    have had, had the division stopped there.
    """
    times, xs, ys = trajectory.coordinates()
    n = len(times)
    tolerances = []
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        best_dev = 0.0
        best_index = None
        a = (xs[lo], ys[lo])
        b = (xs[hi], ys[hi])
        for i in range(lo + 1, hi):
            dev = point_segment_distance((xs[i], ys[i]), a, b)
            if dev > best_dev:
                best_dev = dev
                best_index = i
        if best_index is None or best_dev == 0.0:
            continue
        tolerances.append(best_dev)
        stack.append((lo, best_index))
        stack.append((best_index, hi))
    return tolerances


def _largest_gap_choice(tolerances, cap):
    """Pick δs: the lower bound of the largest gap among tolerances < cap.

    Section 7.4, second step: sort the stored tolerances, restrict to those
    below the cap (the paper observed that picks above ``e`` collapse the
    filter's power), find the two adjacent values with the largest
    difference, and select the smaller of the two.
    """
    eligible = sorted(t for t in tolerances if t < cap)
    if not eligible:
        return None
    if len(eligible) == 1:
        return eligible[0]
    best_gap = -1.0
    best_value = eligible[0]
    for lower, upper in zip(eligible, eligible[1:]):
        gap = upper - lower
        if gap > best_gap:
            best_gap = gap
            best_value = lower
    return best_value


def compute_delta(database, eps, sample_fraction=0.1, min_samples=5, seed=0,
                  cap_fraction=0.5):
    """Derive the simplification tolerance δ from the data (Section 7.4).

    Replays zero-tolerance DP on a random sample of trajectories, applies
    the largest-gap selection per trajectory, and averages the picks.

    One deliberate tightening of the published guideline: the paper
    restricts the candidate tolerances to values below ``e``; here they
    are restricted to values below ``cap_fraction * e`` (default ``e/2``).
    Every pairwise filter bound is ``e + δ(l'q) + δ(l'i) <= e + 2δ``, so a
    δ approaching ``e`` triples the effective search radius and — exactly
    as the paper's own Figure 16 shows — collapses the filter's
    selectivity; capping at ``e/2`` keeps the worst-case bound at ``2e``.

    Args:
        database: the trajectory database the query will run on.
        eps: the convoy distance threshold ``e``.
        sample_fraction: fraction of trajectories to sample (the paper
            suggests "a sufficient time (e.g., 10% of N)").
        min_samples: sample at least this many trajectories (all of them
            when the database is smaller).
        seed: RNG seed for the trajectory sample, so parameter selection is
            reproducible.
        cap_fraction: upper bound on δ as a fraction of ``e``; pass 1.0 for
            the guideline exactly as published.

    Returns:
        The averaged δ.  Falls back to ``cap_fraction * eps / 2`` when
        every sampled trajectory is degenerate (straight lines produce no
        division tolerances below the cap).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not (0.0 < cap_fraction <= 1.0):
        raise ValueError(f"cap_fraction must be in (0, 1], got {cap_fraction}")
    trajectories = list(database)
    if not trajectories:
        raise ValueError("cannot derive delta from an empty database")
    rng = random.Random(seed)
    sample_size = max(min_samples, int(len(trajectories) * sample_fraction))
    sample_size = min(sample_size, len(trajectories))
    sample = rng.sample(trajectories, sample_size)
    cap = eps * cap_fraction
    picks = []
    for trajectory in sample:
        choice = _largest_gap_choice(_division_tolerances(trajectory), cap)
        if choice is not None:
            picks.append(choice)
    if not picks:
        return cap / 2.0
    return sum(picks) / len(picks)


def compute_lambda(database, simplified_list, min_lambda=2):
    """Derive the time-partition length λ from the data (Section 7.4).

    For each object the paper estimates λ1 = |o'|/|o| · o.τ — the average
    time span a simplified segment covers — then discounts it by the
    probability that *other* objects have intermediate time points inside
    such a window:

        λ = o.τ · ( |o'|/|o| · (1 − o.τ/T) + 2/T )

    and averages over all objects.  For databases whose trajectories span
    the whole domain the formula degenerates toward its lower bound (the
    discount factor vanishes); the result is clamped to ``min_lambda``.

    Args:
        database: the trajectory database.
        simplified_list: the simplified trajectories (λ depends on the
            reduction ratio actually achieved with the chosen δ).
        min_lambda: lower clamp; λ = 1 would make the filter degenerate
            into per-time-point clustering.

    Returns:
        Integer λ >= ``min_lambda``.
    """
    if len(simplified_list) == 0:
        raise ValueError("cannot derive lambda without simplified trajectories")
    T = database.time_domain_length
    by_id = {s.object_id: s for s in simplified_list}
    values = []
    for trajectory in database:
        simplified = by_id.get(trajectory.object_id)
        if simplified is None:
            continue
        tau = trajectory.duration + 1
        ratio = len(simplified) / len(trajectory)
        values.append(tau * (ratio * (1.0 - tau / T) + 2.0 / T))
    if not values:
        raise ValueError("no simplified trajectory matches a database object")
    lam = int(round(sum(values) / len(values)))
    return max(min_lambda, lam)
