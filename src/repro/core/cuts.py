"""CuTS — Convoy discovery Using Trajectory Simplification (Sections 5-6).

The filter-and-refinement pipeline:

1. **Simplify** every trajectory with tolerance δ (DP for CuTS, DP+ for
   CuTS+, DP* for CuTS*), keeping per-segment actual tolerances.
2. **Filter** (Algorithm 2): partition the time domain into λ-point
   windows; inside each window density-cluster the objects' simplified
   polylines, where "within e" means ω ≤ e under the Lemma 1 bound
   (CuTS/CuTS+) or the Lemma 3 bound (CuTS*); chain window clusters through
   the shared-objects test exactly like CMC chains snapshot clusters.
   Candidates that survive at least k time points become convoy candidates.
3. **Refine** (Algorithm 3): for each candidate, run exact CMC over the
   candidate objects' *original* trajectories restricted to the candidate's
   time interval; the union of these runs, deduplicated, is the answer.

Because the Lemma bounds never under-estimate closeness, every true convoy
survives the filter (no false dismissals); refinement then removes the
false positives, so the family returns exactly CMC's result set.

The three paper variants differ only in configuration:

====== ============ ==================
method simplifier   segment distance
====== ============ ==================
CuTS   DP           ``DLL`` (Lemma 1)
CuTS+  DP+          ``DLL`` (Lemma 1)
CuTS*  DP*          ``D*`` (Lemma 3)
====== ============ ==================
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.clustering.generic_dbscan import density_cluster
from repro.clustering.spatial_join import JoinPolyline, polyline_adjacency
from repro.core.candidates import CandidateTracker
from repro.core.cmc import cmc
from repro.core.params import compute_delta, compute_lambda
from repro.core.partition import TimePartitioner
from repro.core.verification import normalize_convoys
from repro.simplification import SIMPLIFIERS

#: Configuration of the three paper variants (Section 6.2's summary table).
VARIANTS = {
    "cuts": {"simplifier": "dp", "distance_mode": "dll"},
    "cuts+": {"simplifier": "dp+", "distance_mode": "dll"},
    "cuts*": {"simplifier": "dp*", "distance_mode": "cpa"},
}


@dataclass
class CutsResult:
    """Outcome of a CuTS run, with the instrumentation the benches report.

    Attributes:
        convoys: the final convoy list (normalized: exact duplicates and
            dominated fragments from overlapping candidates removed).
        candidates: the convoy candidates the filter produced, as
            :class:`~repro.core.convoy.Convoy` objects (object superset +
            partition-aligned interval).
        durations: ``{"simplification": s, "filter": s, "refinement": s}``
            wall-clock phase costs (Figure 13's stacked bars).
        refinement_unit: Σ over candidates of ``|objects|² × lifetime`` —
            the filter-effectiveness proxy of Section 7.3 (Figures 16/17).
        delta: the simplification tolerance actually used.
        lam: the partition length actually used.
        simplification: the report dict of
            :func:`repro.simplification.simplification_report`.
        filter_stats: pruning counters from the polyline range searcher.
    """

    convoys: list
    candidates: list
    durations: dict
    refinement_unit: float
    delta: float
    lam: int
    simplification: dict = field(default_factory=dict)
    filter_stats: dict = field(default_factory=dict)

    @property
    def total_time(self):
        """Total wall-clock time across the three phases."""
        return sum(self.durations.values())


def refinement_unit(candidates):
    """Return the Section 7.3 refinement-cost proxy over the candidates.

    The paper charges each candidate the index-free clustering cost of its
    member objects at every covered time point ("if a convoy candidate has
    3 objects and its lifetime is 2, the refinement unit is 3² × 2 = 18").
    The members the refinement actually re-clusters vary per window (the
    filter cluster the chain passed through), so the unit is summed
    window-wise: Σ over windows of ``|members|² × window_length``.
    """
    total = 0
    for candidate in candidates:
        for ws, we, members in candidate.windows:
            total += len(members) ** 2 * (we - ws + 1)
    return float(total)


def cuts_filter(
    simplified_list,
    m,
    k,
    eps,
    lam,
    t_lo,
    t_hi,
    distance_mode="dll",
    use_actual_tolerance=True,
    use_lemma2=True,
    filter_stats=None,
    paper_semantics=False,
):
    """Run the CuTS filter step (Algorithm 2) over simplified trajectories.

    Args:
        simplified_list: output of one of the
            :data:`repro.simplification.SIMPLIFIERS` applied to every
            trajectory.
        m, k, eps: the convoy query parameters.
        lam: time-partition length λ.
        t_lo, t_hi: the global time domain to partition.
        distance_mode: ``"dll"`` (Lemma 1 — CuTS/CuTS+) or ``"cpa"``
            (Lemma 3 — CuTS*; only sound on DP* output).
        use_actual_tolerance: use per-segment actual tolerances (True, the
            paper's default) or the global δ everywhere (the degraded
            configuration of Figure 14).
        use_lemma2: enable the box-level group pruning (ablation switch).
        filter_stats: optional dict accumulating range-search counters.
        paper_semantics: candidate-seeding rule; see
            :mod:`repro.core.candidates`.

    Returns:
        List of :class:`~repro.core.candidates.ClosedCandidate` records
        whose filter lifetime is at least ``k``.
    """
    tracker = CandidateTracker(m, k, paper_semantics=paper_semantics)
    partitioner = TimePartitioner(t_lo, t_hi, lam)
    windows = list(partitioner)

    # One pass over all simplified segments, assigning each to every
    # partition its time interval intersects (a boundary-straddling segment
    # lands in both partitions — the l_3^2 rule of Figure 9(b)).
    partition_segments = [{} for _ in windows]
    for simplified in simplified_list:
        delta = simplified.delta
        object_id = simplified.object_id
        for segment, tolerance in zip(simplified.segments, simplified.tolerances):
            seg_lo = max(segment.t_start, t_lo)
            seg_hi = min(segment.t_end, t_hi)
            if seg_lo > seg_hi:
                continue
            tol = tolerance if use_actual_tolerance else delta
            flat = (
                segment.start[0], segment.start[1],
                segment.end[0], segment.end[1],
                float(segment.t_start), float(segment.t_end), tol,
            )
            z_first = (seg_lo - t_lo) // lam
            z_last = (seg_hi - t_lo) // lam
            for z in range(z_first, z_last + 1):
                partition_segments[z].setdefault(object_id, []).append(flat)

    candidates = []
    for (lo, hi), per_object in zip(windows, partition_segments):
        clusters = []
        if len(per_object) >= m:
            polylines = [
                JoinPolyline(object_id, segs)
                for object_id, segs in per_object.items()
            ]
            adjacency = polyline_adjacency(
                polylines,
                eps,
                mode=distance_mode,
                use_sweep=use_lemma2,
                stats=filter_stats,
            )
            for members in density_cluster(
                len(polylines), adjacency.__getitem__, m
            ):
                clusters.append({polylines[i].object_id for i in members})
        candidates.extend(tracker.advance(clusters, lo, hi))
    candidates.extend(tracker.flush())
    return candidates


def cuts_refine(database, candidates, m, k, eps, paper_semantics=False):
    """Run the CuTS refinement step (Algorithm 3, coverage-map form).

    Conceptually, Algorithm 3 re-runs exact CMC per candidate over the
    candidate's objects and time interval.  Doing that literally repeats
    the same snapshot clusterings for every candidate that covers the same
    times, so the refinement instead builds a *coverage map*: for every
    time window, the union of the members of every candidate cluster
    covering that window.  One CMC pass per contiguous covered region,
    with the snapshot at each time restricted to the covered members,
    performs each candidate's re-clustering exactly once.

    Using per-window cluster members (rather than each chain's final
    intersection) is what keeps refinement exact: any snapshot cluster
    containing a convoy's objects at a covered time is a subset of the
    filter cluster the candidate passed through there, so no density
    bridge is lost.
    """
    coverage = {}
    for candidate in candidates:
        for window in candidate.windows:
            ws, we, members = window
            have = coverage.get((ws, we))
            if have is None:
                coverage[(ws, we)] = set(members)
            else:
                have |= members
    if not coverage:
        return []
    windows = sorted(coverage)
    blocks = [[windows[0]]]
    for window in windows[1:]:
        if window[0] == blocks[-1][-1][1] + 1:
            blocks[-1].append(window)
        else:
            blocks.append([window])
    convoys = []
    for block in blocks:
        t_lo = block[0][0]
        t_hi = block[-1][1]
        union = set()
        for window in block:
            union |= coverage[window]
        sub_db = database.restricted(union, t_lo, t_hi)
        if len(sub_db) < m:
            continue
        starts = [window[0] for window in block]
        members = [coverage[window] for window in block]

        def allowed_at(t, starts=starts, members=members):
            return members[bisect_right(starts, t) - 1]

        convoys.extend(
            cmc(
                sub_db,
                m,
                k,
                eps,
                time_range=(t_lo, t_hi),
                paper_semantics=paper_semantics,
                allowed_at=allowed_at,
            )
        )
    return convoys


def cuts(
    database,
    m,
    k,
    eps,
    delta=None,
    lam=None,
    variant="cuts",
    use_actual_tolerance=True,
    use_lemma2=True,
    paper_semantics=False,
):
    """Answer a convoy query with the CuTS family (Sections 5-6).

    Args:
        database: a :class:`repro.trajectory.TrajectoryDatabase`.
        m, k, eps: the convoy query parameters of Definition 3.
        delta: simplification tolerance δ; derived via
            :func:`repro.core.params.compute_delta` when None.
        lam: time-partition length λ; derived via
            :func:`repro.core.params.compute_lambda` when None.
        variant: ``"cuts"``, ``"cuts+"``, or ``"cuts*"``.
        use_actual_tolerance: Figure 14 switch — False replaces every
            actual tolerance with the global δ.
        use_lemma2: ablation switch for the box-level pruning.
        paper_semantics: candidate-seeding rule for both the filter and the
            refinement CMC; see :mod:`repro.core.candidates`.

    Returns:
        A :class:`CutsResult`; ``result.convoys`` equals (after
        normalization) what :func:`repro.core.cmc.cmc` returns.
    """
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {sorted(VARIANTS)}"
        )
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    config = VARIANTS[variant]
    simplifier = SIMPLIFIERS[config["simplifier"]]
    distance_mode = config["distance_mode"]
    if len(database) == 0:
        return CutsResult([], [], {"simplification": 0.0, "filter": 0.0,
                                   "refinement": 0.0}, 0.0, delta or 0.0, lam or 1)

    if delta is None:
        delta = compute_delta(database, eps)

    started = time.perf_counter()
    simplified_list = [simplifier(trajectory, delta) for trajectory in database]
    simplification_seconds = time.perf_counter() - started

    if lam is None:
        lam = compute_lambda(database, simplified_list)

    from repro.simplification import simplification_report

    filter_stats = {}
    started = time.perf_counter()
    candidates = cuts_filter(
        simplified_list,
        m,
        k,
        eps,
        lam,
        database.min_time,
        database.max_time,
        distance_mode=distance_mode,
        use_actual_tolerance=use_actual_tolerance,
        use_lemma2=use_lemma2,
        filter_stats=filter_stats,
        paper_semantics=paper_semantics,
    )
    filter_seconds = time.perf_counter() - started

    started = time.perf_counter()
    raw_convoys = cuts_refine(
        database, candidates, m, k, eps, paper_semantics=paper_semantics
    )
    refinement_seconds = time.perf_counter() - started

    return CutsResult(
        convoys=normalize_convoys(raw_convoys),
        candidates=[c.as_candidate_convoy() for c in candidates],
        durations={
            "simplification": simplification_seconds,
            "filter": filter_seconds,
            "refinement": refinement_seconds,
        },
        refinement_unit=refinement_unit(candidates),
        delta=delta,
        lam=lam,
        simplification=simplification_report(simplified_list),
        filter_stats=filter_stats,
    )
