"""Time partitioning for the CuTS filter (Section 5.3, Figure 9(b)).

The filter divides the time domain into disjoint partitions of λ time
points and clusters, inside each partition, one polyline per object made of
the simplified segments whose time intervals intersect the partition.  A
segment straddling a partition boundary is deliberately inserted into
*both* partitions (the paper's ``l_3^2`` example) so that no cross-boundary
proximity can be missed.
"""

from __future__ import annotations

from repro.clustering.polyline import PartitionPolyline


class TimePartitioner:
    """Splits a closed time domain ``[t_lo, t_hi]`` into λ-length windows.

    The last partition may be shorter when λ does not divide the domain
    length.  Partitions are closed intervals; consecutive partitions do not
    overlap (``[0, 3], [4, 7], ...`` for λ=4).
    """

    def __init__(self, t_lo, t_hi, lam):
        if t_hi < t_lo:
            raise ValueError(f"time domain reversed: [{t_lo}, {t_hi}]")
        if lam < 1:
            raise ValueError(f"lambda must be >= 1, got {lam}")
        self.t_lo = t_lo
        self.t_hi = t_hi
        self.lam = lam

    def __len__(self):
        span = self.t_hi - self.t_lo + 1
        return (span + self.lam - 1) // self.lam

    def __iter__(self):
        lo = self.t_lo
        while lo <= self.t_hi:
            hi = min(lo + self.lam - 1, self.t_hi)
            yield (lo, hi)
            lo = hi + 1

    def partition_of(self, t):
        """Return the ``(lo, hi)`` partition containing time point ``t``."""
        if not (self.t_lo <= t <= self.t_hi):
            raise ValueError(f"time {t} outside domain [{self.t_lo}, {self.t_hi}]")
        index = (t - self.t_lo) // self.lam
        lo = self.t_lo + index * self.lam
        return (lo, min(lo + self.lam - 1, self.t_hi))


def build_partition_polylines(simplified_list, t_lo, t_hi, use_actual_tolerance=True):
    """Collect each object's partition polyline for the window ``[t_lo, t_hi]``.

    This is the ``G`` construction of Algorithm 2 (lines 9-10): for every
    simplified trajectory whose interval meets the partition, gather the
    segments intersecting the partition into one
    :class:`~repro.clustering.polyline.PartitionPolyline`.

    Args:
        simplified_list: iterable of
            :class:`repro.simplification.SimplifiedTrajectory`.
        t_lo, t_hi: the partition's closed time interval.
        use_actual_tolerance: when False, every segment carries the *global*
            tolerance δ instead of its actual tolerance — the degraded
            configuration Figure 14 measures.

    Returns:
        List of polylines for the objects alive in the partition (objects
        with no segment in the window are absent).
    """
    polylines = []
    for simplified in simplified_list:
        if not simplified.overlaps_interval(t_lo, t_hi):
            continue
        pairs = simplified.segments_overlapping(t_lo, t_hi)
        if not pairs:
            continue
        segments = tuple(segment for segment, _tol in pairs)
        if use_actual_tolerance:
            tolerances = tuple(tol for _segment, tol in pairs)
        else:
            tolerances = tuple(simplified.delta for _ in pairs)
        polylines.append(
            PartitionPolyline(simplified.object_id, segments, tolerances)
        )
    return polylines
