"""The newline-delimited-JSON ingestion protocol.

One JSON object per line, UTF-8, ``\\n``-terminated — the same framing
``stream --json`` readers already speak, applied to a live socket.  The
client drives; every server line is a reaction to client input.

Client -> server
----------------

* ``{"type": "hello", "tenant": T, "config": {...}}`` — open tenant
  ``T``'s session.  ``config`` holds the
  :class:`~repro.streaming.engine.StreamingConvoyMiner` keyword
  arguments that are JSON-representable (``m``, ``k``, ``eps``,
  ``paper_semantics``, ``window``, ``clusterer`` as ``"full"`` /
  ``"incremental"``, ``reorder`` as the buffer's kwargs dict,
  ``shards``, ``executor``, ``resident``, ``backend``, and ``store`` as
  a server-side SQLite path) plus two service-level knobs: ``max_queue``
  (this tenant's ingestion high-water mark) and ``tick_delay`` (seconds
  slept per tick inside the worker step — a load-shaping knob for
  benchmarks and tests).
* ``{"type": "feed", "tenant": T, "ticks": [[t, snapshot], ...]}`` — a
  batch of snapshots.  Each snapshot is a list of ``[object_id, x, y]``
  triples: a *list*, not an object, because JSON object keys are always
  strings and the differential proof needs integer object ids to
  round-trip as integers.
* ``{"type": "drain", "tenant": T}`` — force the tenant's reorder
  buffer to release everything pending *now* (the idle-drain seam for
  capacity-only buffers on quiescent feeds); a no-op without a buffer.
* ``{"type": "flush", "tenant": T}`` — end of feed: flush the miner,
  close the session, answer with ``flushed``.
* ``{"type": "bye"}`` — close the connection (sessions still open are
  closed *without* flushing, committing completed ticks only).

Server -> client
----------------

* ``{"type": "ready", "tenant": T}`` — session open.
* ``{"type": "closed", "tenant": T, "t": t, "convoys": [...]}`` — the
  step at time ``t`` closed these convoys (sent only when non-empty).
* ``{"type": "flushed", "tenant": T, "convoys": [...], "counters":
  {...}, "service": {...}}`` — the final answer, shaped like the
  ``stream --json`` artifact: ``convoys`` is the *complete* normalized
  answer (not just the tail), ``counters`` is the miner's counter dict
  bit-for-bit (service bookkeeping never leaks into it), and
  ``service`` is the per-tenant service-side bookkeeping (queue peaks,
  throttle counts, step totals).  ``clusterer_counters`` appears when
  the tenant ran an incremental clusterer, as in the CLI artifact.
* ``{"type": "error", "tenant": T?, "error": "..."}`` — a rejected
  message (unknown tenant, bad config, disordered feed...).  Errors
  scoped to a tenant fail that session; protocol-level errors (a
  non-JSON line) fail the connection.

Convoys travel as ``{"objects": [...], "t_start": a, "t_end": b}`` with
members sorted by their canonical store encoding, so mixed int/str id
sets serialize deterministically and decode to equal
:class:`~repro.core.convoy.Convoy` values.
"""

from __future__ import annotations

import json

from repro.core.convoy import Convoy
from repro.store.base import encode_object_id


class ProtocolError(ValueError):
    """A line or payload that violates the wire contract."""


#: Per-line stream buffer limit (bytes) for both ends of the socket.
#: asyncio's 64 KiB ``readline`` default truncates a single large
#: ``feed`` batch (or a big ``flushed`` reply) and kills the connection
#: with no useful diagnostic; NDJSON frames scale with batch size, so
#: server and client raise the limit together.
STREAM_LIMIT = 2 ** 22

#: Message types a client may send.
CLIENT_TYPES = ("hello", "feed", "drain", "flush", "bye")

#: Message types the server emits.
SERVER_TYPES = ("ready", "closed", "flushed", "error")


def encode(message):
    """One protocol message as a ``\\n``-terminated JSON line (bytes)."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode(line):
    """Invert :func:`encode`; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from None
    if not isinstance(message, dict) or not isinstance(
        message.get("type"), str
    ):
        raise ProtocolError(
            f"protocol messages are objects with a 'type', got {message!r}"
        )
    return message


def encode_snapshot(snapshot):
    """A ``{object_id: (x, y)}`` snapshot as ``[id, x, y]`` triples.

    Triples are ordered by the id's canonical store encoding so the
    wire form is deterministic regardless of dict insertion order.
    """
    return [
        [object_id, position[0], position[1]]
        for object_id, position in sorted(
            snapshot.items(), key=lambda item: encode_object_id(item[0])
        )
    ]


def decode_snapshot(triples):
    """Invert :func:`encode_snapshot` (ids validated as str/int)."""
    if not isinstance(triples, list):
        raise ProtocolError(f"snapshot must be a list, got {triples!r}")
    snapshot = {}
    for triple in triples:
        if not isinstance(triple, list) or len(triple) != 3:
            raise ProtocolError(
                f"snapshot entries are [object_id, x, y], got {triple!r}"
            )
        object_id, x, y = triple
        try:
            encode_object_id(object_id)
        except TypeError as exc:
            raise ProtocolError(str(exc)) from None
        if not isinstance(x, (int, float)) or not isinstance(
            y, (int, float)
        ) or isinstance(x, bool) or isinstance(y, bool):
            raise ProtocolError(
                f"coordinates must be numbers, got {triple!r}"
            )
        snapshot[object_id] = (float(x), float(y))
    if len(snapshot) != len(triples):
        raise ProtocolError("snapshot repeats an object id")
    return snapshot


def encode_convoy(convoy):
    """One convoy as its wire object (members canonically sorted)."""
    return {
        "objects": sorted(convoy.objects, key=encode_object_id),
        "t_start": convoy.t_start,
        "t_end": convoy.t_end,
    }


def decode_convoy(payload):
    """Invert :func:`encode_convoy`."""
    try:
        return Convoy(
            payload["objects"], payload["t_start"], payload["t_end"]
        )
    except (TypeError, KeyError, ValueError) as exc:
        raise ProtocolError(f"bad convoy payload {payload!r}: {exc}") from None
