"""Async multi-tenant ingestion service.

The serving layer over the streaming engine: many independent tenant
feeds — each its own
:class:`~repro.streaming.engine.StreamingConvoyMiner`, any pipeline /
backend / shards / store configuration — multiplexed over one shared,
bounded worker pool.

* :mod:`~repro.service.protocol` — the newline-delimited-JSON wire
  contract (snapshots in, closed convoys + counters out, shaped like
  the ``stream --json`` artifact);
* :class:`~repro.service.session.TenantSession` — one tenant's miner
  behind a credit-based ingestion queue;
* :class:`~repro.service.dispatcher.Dispatcher` — least-recently-served
  scheduling of sync miner steps onto a ``ThreadPoolExecutor`` via
  ``run_in_executor``;
* :class:`~repro.service.server.IngestionServer` — the asyncio socket
  front end (``repro-convoy serve``);
* :class:`~repro.service.client.ServiceClient` — the reference client
  (tests, CI smoke, and the ingestion bench all speak through it).

The service guarantee mirrors every other layer in this repo: for each
tenant, the convoys, counters, and store contents are bit-for-bit what
driving the same miner directly would have produced — concurrency
changes the schedule, never the answer.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.dispatcher import Dispatcher
from repro.service.protocol import (
    ProtocolError,
    decode,
    decode_convoy,
    decode_snapshot,
    encode,
    encode_convoy,
    encode_snapshot,
)
from repro.service.server import DEFAULT_MAX_QUEUE, IngestionServer
from repro.service.session import TenantSession, build_miner

__all__ = [
    "DEFAULT_MAX_QUEUE",
    "Dispatcher",
    "IngestionServer",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "TenantSession",
    "build_miner",
    "decode",
    "decode_convoy",
    "decode_snapshot",
    "encode",
    "encode_convoy",
    "encode_snapshot",
]
