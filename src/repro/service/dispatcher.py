"""Fair scheduling of tenant miner steps onto a bounded worker pool.

The :class:`Dispatcher` is the service's only bridge between asyncio
and the synchronous miners.  It maintains the set of *runnable*
sessions (queued work, no step in flight, not done) and runs one
grant loop:

1. wait until some session is runnable **and** a worker slot is free;
2. grant the slot to the **least-recently-served** runnable session —
   an O(sessions) ``min`` over grant sequence numbers, which is exact
   round-robin fairness under saturation and work-conserving when only
   some tenants have input;
3. run that session's next step on the shared
   ``ThreadPoolExecutor`` via ``run_in_executor``, deliver the
   resulting event to the tenant's connection, then return the slot.

Two invariants carry the differential proof:

* **one in-flight step per session** — a session leaves the runnable
  set while its step runs, so its ticks execute in exact FIFO order
  (the service is, per tenant, the same loop as ``mine_stream``);
* **delivery before re-granting** — a step's event is written to the
  client before the session becomes runnable again, so per-tenant
  output order matches step order even under a slow reader.

A failed step (a disordered feed, a late-policy ``raise``) kills only
its own session: the miner is closed (committing completed ticks), an
``error`` event is delivered, and every other tenant keeps flowing.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor


class Dispatcher:
    """Schedule tenant sessions onto ``max_workers`` miner threads.

    Args:
        max_workers: worker pool size — the number of miner steps (all
            tenants together) that may run concurrently.
    """

    def __init__(self, max_workers=4):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.counters = {"steps": 0, "failed_steps": 0}
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-service",
        )
        self._slots = asyncio.Semaphore(self.max_workers)
        self._runnable = set()
        self._has_runnable = asyncio.Event()
        self._grants = 0
        self._steps = set()
        self._loop_task = None
        self._stopping = False

    def start(self):
        """Start the grant loop (idempotent)."""
        if self._loop_task is None:
            self._loop_task = asyncio.ensure_future(self._grant_loop())

    def notify(self, session):
        """(Re)consider ``session`` for scheduling — call after every
        enqueue and after every completed step."""
        if session.runnable:
            self._runnable.add(session)
            self._has_runnable.set()

    async def _grant_loop(self):
        while not self._stopping:
            await self._has_runnable.wait()
            await self._slots.acquire()
            if self._stopping:
                self._slots.release()
                return
            # Both gates are open; pick the least-recently-served
            # session still runnable (the wait above may have raced a
            # drain, hence the re-check).
            session = None
            if self._runnable:
                session = min(
                    self._runnable, key=lambda s: s.last_served
                )
                self._runnable.discard(session)
            if not self._runnable:
                self._has_runnable.clear()
            if session is None or not session.runnable:
                # The session drained, failed, or was closed between
                # entering the runnable set and winning a slot.
                self._slots.release()
                continue
            session.last_served = self._grants
            self._grants += 1
            session.in_flight = True
            step = asyncio.ensure_future(self._run_step(session))
            self._steps.add(step)
            step.add_done_callback(self._steps.discard)

    async def _run_step(self, session):
        loop = asyncio.get_running_loop()
        kind, t, snapshot = session.pop_step()
        event = None
        error = None
        try:
            started = time.perf_counter()
            try:
                event = await loop.run_in_executor(
                    self._pool, session.step_sync, kind, t, snapshot
                )
            finally:
                self._slots.release()
            if kind == "tick":
                session.latencies.append(time.perf_counter() - started)
            self.counters["steps"] += 1
        except Exception as exc:
            # Broad on purpose: *any* failed step (a disordered feed's
            # ValueError, a store error, a crashed shard worker) must
            # fail its session and tell the client — an unhandled
            # exception here would strand the session in flight and
            # hang its tenant's flush forever.
            self.counters["failed_steps"] += 1
            error = exc
            event = {
                "type": "error",
                "tenant": session.tenant,
                "error": str(exc),
            }
        if event is not None:
            await session.deliver(event)
        if error is not None:
            # The miner may be mid-tick-inconsistent: fail the whole
            # session, committing only completed ticks.
            await loop.run_in_executor(
                None, session.abort_sync, str(error)
            )
        elif kind == "flush":
            session.finish()
        session.in_flight = False
        session.grant_credit()
        self.notify(session)

    async def wait_idle(self, session):
        """Wait until ``session`` has no queued or in-flight step (the
        safe point to close its miner from outside the dispatcher)."""
        while len(session) or session.in_flight:
            await asyncio.sleep(0.005)

    async def stop(self):
        """Stop granting, wait for in-flight steps, release the pool."""
        self._stopping = True
        self._has_runnable.set()
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None
        if self._steps:
            await asyncio.gather(*self._steps, return_exceptions=True)
        self._pool.shutdown(wait=True)
