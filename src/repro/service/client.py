"""A small asyncio client for the ingestion protocol.

:class:`ServiceClient` is the reference speaker of
:mod:`repro.service.protocol`: tests, the CI smoke leg, and the
ingestion bench all drive the server through it, and it doubles as the
executable documentation of the message flow::

    async with ServiceClient("127.0.0.1", port) as client:
        await client.hello("tenant-a", {"m": 2, "k": 3, "eps": 2.0})
        await client.feed("tenant-a", [(0, {"a": (0.0, 0.0)}), ...])
        answer = await client.flush("tenant-a")
        answer["convoys"]   # the stream's full normalized answer
        answer["counters"]  # the miner's counters, bit for bit

The client is sequential on purpose — one connection, one coroutine —
because per-tenant ordering is the thing the tests assert; concurrency
across tenants comes from running many clients (or many tenants'
``feed`` batches interleaved on one client).

``closed`` events arriving between replies are buffered per tenant and
folded into :meth:`flush`'s combined answer, so callers usually only
look at the ``flushed`` payload.
"""

from __future__ import annotations

import asyncio
import collections

from repro.service.protocol import (
    STREAM_LIMIT,
    ProtocolError,
    decode,
    encode,
    encode_snapshot,
)


class ServiceError(RuntimeError):
    """An ``error`` event received from the server."""

    def __init__(self, event):
        super().__init__(event.get("error", "unknown service error"))
        self.event = event


class ServiceClient:
    """Drive one ingestion connection (see the module docstring)."""

    def __init__(self, host, port):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        #: ``closed`` events seen so far, per tenant (inspection seam).
        self.closed_events = collections.defaultdict(list)

    async def connect(self):
        # Match the server's raised line limit — a ``flushed`` reply
        # carries the stream's whole answer in one frame.
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=STREAM_LIMIT
        )
        return self

    async def close(self):
        if self._writer is None:
            return
        try:
            self._writer.write(encode({"type": "bye"}))
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._writer = None
        self._reader = None

    async def __aenter__(self):
        return await self.connect()

    async def __aexit__(self, exc_type, exc_value, traceback):
        await self.close()
        return False

    async def _send(self, message):
        self._writer.write(encode(message))
        await self._writer.drain()

    async def _next_event(self):
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode(line)

    async def _wait_for(self, wanted, tenant):
        """Read events until ``wanted`` arrives for ``tenant``; buffer
        ``closed`` events on the way; raise on ``error``."""
        while True:
            event = await self._next_event()
            kind = event["type"]
            if kind == "closed":
                self.closed_events[event["tenant"]].append(event)
                continue
            if kind == "error":
                raise ServiceError(event)
            if kind == wanted and event.get("tenant") == tenant:
                return event
            raise ProtocolError(
                f"expected {wanted!r} for {tenant!r}, got {event!r}"
            )

    async def hello(self, tenant, config):
        """Open ``tenant`` with the given miner config; await ready."""
        await self._send(
            {"type": "hello", "tenant": tenant, "config": config}
        )
        return await self._wait_for("ready", tenant)

    async def feed(self, tenant, ticks):
        """Send one batch of ``(t, {object_id: (x, y)})`` ticks.

        Returns after the batch is *written*; convoys close
        asynchronously and are collected by :meth:`flush`.
        """
        await self._send({
            "type": "feed",
            "tenant": tenant,
            "ticks": [
                [t, encode_snapshot(snapshot)] for t, snapshot in ticks
            ],
        })

    async def drain(self, tenant):
        """Ask for an idle-drain of the tenant's reorder buffer."""
        await self._send({"type": "drain", "tenant": tenant})

    async def flush(self, tenant):
        """End the tenant's feed; return the ``flushed`` payload."""
        await self._send({"type": "flush", "tenant": tenant})
        return await self._wait_for("flushed", tenant)
