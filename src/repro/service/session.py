"""One tenant's miner behind an asyncio ingestion queue.

A :class:`TenantSession` pairs a
:class:`~repro.streaming.engine.StreamingConvoyMiner` (any pipeline /
backend / shards / store configuration) with the service-side state the
dispatcher schedules on:

* a FIFO **tick queue** with a credit-based high-water mark —
  :meth:`enqueue` *waits* (never drops) once ``max_queue`` ticks are
  pending, which is exactly how the server stops reading a flooded
  tenant's feed while other tenants keep flowing;
* the **fairness bookkeeping** (``last_served`` sequence number) the
  dispatcher's least-recently-served pick reads;
* a **service counter dict** (queue peaks, throttles, step totals, step
  latencies) kept strictly apart from the miner's own ``counters`` —
  the differential proof holds the miner's dict bit-for-bit equal to a
  direct run's, so service bookkeeping must never leak into it.

Miner steps are synchronous on purpose: the dispatcher runs
:meth:`step_sync` on a worker thread via ``run_in_executor``, and the
one-in-flight-step-per-session rule makes the service's per-tenant
ingestion order identical to a plain ``feed`` loop — which is the whole
equivalence argument.
"""

from __future__ import annotations

import asyncio
import collections
import time

from repro.core.verification import normalize_convoys
from repro.streaming.engine import StreamingConvoyMiner

from repro.service.protocol import ProtocolError, encode_convoy

#: Miner keyword arguments a ``hello`` config may carry.
MINER_CONFIG_KEYS = (
    "m", "k", "eps", "paper_semantics", "window", "clusterer", "reorder",
    "shards", "executor", "resident", "backend", "store",
)

#: Service-level knobs a ``hello`` config may carry.
SERVICE_CONFIG_KEYS = ("max_queue", "tick_delay")


def build_miner(config):
    """Construct the tenant's miner from a ``hello`` config dict.

    Returns ``(miner, tick_delay, max_queue)``; raises
    :class:`~repro.service.protocol.ProtocolError` on unknown keys or
    parameters the miner rejects, so a bad ``hello`` fails the session
    before any state exists.
    """
    if not isinstance(config, dict):
        raise ProtocolError(f"hello config must be an object, got {config!r}")
    unknown = sorted(
        key for key in config
        if key not in MINER_CONFIG_KEYS + SERVICE_CONFIG_KEYS
    )
    if unknown:
        raise ProtocolError(f"unknown config key(s): {', '.join(unknown)}")
    for key in ("m", "k", "eps"):
        if key not in config:
            raise ProtocolError(f"config is missing required key {key!r}")
    miner_kwargs = {
        key: config[key] for key in MINER_CONFIG_KEYS if key in config
    }
    tick_delay = config.get("tick_delay", 0.0)
    if not isinstance(tick_delay, (int, float)) or isinstance(
        tick_delay, bool
    ) or tick_delay < 0:
        raise ProtocolError(f"tick_delay must be >= 0, got {tick_delay!r}")
    max_queue = config.get("max_queue")
    if max_queue is not None and (
        not isinstance(max_queue, int) or isinstance(max_queue, bool)
        or max_queue < 1
    ):
        raise ProtocolError(f"max_queue must be >= 1, got {max_queue!r}")
    try:
        miner = StreamingConvoyMiner(**miner_kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad miner config: {exc}") from None
    return miner, float(tick_delay), max_queue


async def _discard_event(event):
    """Default event sink for sessions not attached to a connection."""
    return None


class TenantSession:
    """One tenant's miner plus its ingestion queue and bookkeeping.

    Args:
        tenant: the tenant's wire name.
        miner: the tenant's (not yet started) miner; the session owns
            its lifecycle from here on.
        max_queue: ingestion high-water mark — :meth:`enqueue` waits
            once this many steps are pending.
        tick_delay: seconds slept inside each tick step (load-shaping
            knob for benchmarks; 0 disables).
        latency_window: how many recent per-tick step latencies to keep
            (a bounded deque, so long-lived tenants hold O(1) memory).
    """

    def __init__(self, tenant, miner, *, max_queue=64, tick_delay=0.0,
                 latency_window=4096):
        self.tenant = tenant
        self.miner = miner
        self.max_queue = int(max_queue)
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.tick_delay = float(tick_delay)
        #: Service-side bookkeeping — deliberately a *different* dict
        #: from ``miner.counters`` (see the module docstring).
        self.service_counters = {
            "ticks": 0,
            "convoys_closed": 0,
            "peak_queue": 0,
            "throttled_waits": 0,
            "drains": 0,
        }
        #: Recent per-tick step wall times, seconds (bounded).
        self.latencies = collections.deque(maxlen=latency_window)
        #: Dispatcher fairness stamp: sequence number of the last grant.
        self.last_served = -1
        #: True while a worker thread is inside :meth:`step_sync`.
        self.in_flight = False
        self.done = False
        self.failed = None  # the error text that killed the session
        self._queue = collections.deque()
        self._convoys = []
        self._space = asyncio.Event()
        self._space.set()
        #: Async callable receiving this session's wire events; the
        #: server points it at the owning connection's writer.
        self.deliver = _discard_event

    # ------------------------------------------------------------------
    # Ingestion side (server handler coroutines)

    def __len__(self):
        return len(self._queue)

    async def enqueue(self, t, snapshot):
        """Queue one tick, waiting for credit when the queue is full.

        The wait *is* the backpressure: the caller is the connection's
        read loop, so an over-watermark tenant stops being read until
        the dispatcher drains it below the mark again.  Nothing is ever
        dropped.
        """
        if len(self._queue) >= self.max_queue:
            self.service_counters["throttled_waits"] += 1
            while len(self._queue) >= self.max_queue:
                self._space.clear()
                await self._space.wait()
                self._ensure_alive()
        self._ensure_alive()
        self._push(("tick", t, snapshot))

    def enqueue_drain(self):
        """Queue an idle-drain step (reorder buffer ``release_all``)."""
        self._ensure_alive()
        self._push(("drain", None, None))

    def enqueue_flush(self):
        """Queue the final flush; the session is done once it runs."""
        self._ensure_alive()
        self._push(("flush", None, None))

    def _push(self, item):
        self._queue.append(item)
        if len(self._queue) > self.service_counters["peak_queue"]:
            self.service_counters["peak_queue"] = len(self._queue)

    def _ensure_alive(self):
        if self.done:
            raise ProtocolError(
                f"tenant {self.tenant!r} is already flushed"
                if self.failed is None
                else f"tenant {self.tenant!r} failed: {self.failed}"
            )

    @property
    def runnable(self):
        """True when the dispatcher may grant this session a worker."""
        return bool(self._queue) and not self.in_flight and not self.done

    def pop_step(self):
        """Take the next queued step (dispatcher, under the event loop)."""
        return self._queue.popleft()

    def discard_queued(self):
        """Drop queued steps and wake throttled writers (close path)."""
        self._queue.clear()
        self._space.set()

    def grant_credit(self):
        """Wake a throttled :meth:`enqueue` once below the high-water."""
        if len(self._queue) < self.max_queue:
            self._space.set()

    # ------------------------------------------------------------------
    # Mining side (worker threads)

    def step_sync(self, kind, t, snapshot):
        """Run one queued step against the miner; return the wire event
        to deliver (or None for a silent step).  Called from a worker
        thread — never concurrently for one session."""
        if kind == "tick":
            if self.tick_delay:
                time.sleep(self.tick_delay)
            closed = list(self.miner.feed(t, snapshot))
            self.service_counters["ticks"] += 1
            return self._closed_event(t, closed)
        if kind == "drain":
            closed = list(self.miner.release_pending())
            self.service_counters["drains"] += 1
            return self._closed_event(self.miner.last_time, closed)
        if kind == "flush":
            tail = list(self.miner.flush())
            self._convoys.extend(tail)
            self.service_counters["convoys_closed"] += len(tail)
            self.miner.close()
            return self._flushed_event()
        raise AssertionError(f"unknown step kind {kind!r}")

    def _closed_event(self, t, closed):
        if not closed:
            return None
        self._convoys.extend(closed)
        self.service_counters["convoys_closed"] += len(closed)
        return {
            "type": "closed",
            "tenant": self.tenant,
            "t": t,
            "convoys": [encode_convoy(convoy) for convoy in closed],
        }

    def _flushed_event(self):
        event = {
            "type": "flushed",
            "tenant": self.tenant,
            "convoys": [
                encode_convoy(convoy)
                for convoy in normalize_convoys(self._convoys)
            ],
            "counters": dict(self.miner.counters),
            "service": dict(self.service_counters),
        }
        clusterer = self.miner.clusterer
        if clusterer is not None and hasattr(clusterer, "counters"):
            event["clusterer_counters"] = dict(clusterer.counters)
        return event

    def abort_sync(self, error=None):
        """Close the miner without flushing (connection drop, shutdown,
        failed step).  Completed ticks stay committed — the store holds
        a clean tick-prefix, exactly the SIGINT contract.  Idempotent.
        """
        if self.done and error is None:
            return
        self.done = True
        if error is not None and self.failed is None:
            self.failed = str(error)
        self._queue.clear()
        self._space.set()  # never strand a throttled enqueue
        self.miner.close()

    def finish(self):
        """Mark the session cleanly done (after its flush delivered)."""
        self.done = True
        self._space.set()
