"""The asyncio ingestion server: sockets in, convoys out.

:class:`IngestionServer` accepts NDJSON connections (see
:mod:`repro.service.protocol`), owns the tenant registry, and feeds the
shared :class:`~repro.service.dispatcher.Dispatcher`.  One connection
may multiplex any number of tenants; a tenant name is unique across the
whole server while its session is open.

Backpressure is credit-based and sits in the read loop: ``feed`` ticks
are queued with :meth:`~repro.service.session.TenantSession.enqueue`,
which *waits* once the tenant's queue hits its high-water mark — so the
server simply stops reading that connection until the dispatcher drains
the tenant below the mark.  Nothing is dropped, and the stall is
visible in the tenant's ``throttled_waits`` counter.

Shutdown (``stop``, or SIGINT in the CLI) closes every open session
*without* flushing: miners close, store sinks commit, and each tenant's
store holds a clean prefix of its completed ticks — the same contract a
``stream`` Ctrl-C honours.
"""

from __future__ import annotations

import asyncio

from repro.service.dispatcher import Dispatcher
from repro.service.protocol import (
    STREAM_LIMIT,
    ProtocolError,
    decode,
    decode_snapshot,
    encode,
)
from repro.service.session import TenantSession, build_miner

#: Default per-tenant ingestion high-water mark.
DEFAULT_MAX_QUEUE = 64


class IngestionServer:
    """Serve the ingestion protocol on a TCP socket.

    Args:
        host: bind address (default loopback).
        port: bind port (0 picks a free one; see :attr:`port`).
        max_workers: dispatcher worker-pool size.
        max_queue: default per-tenant high-water mark (a tenant's
            ``hello`` config may override its own).
    """

    def __init__(self, host="127.0.0.1", port=0, *, max_workers=4,
                 max_queue=DEFAULT_MAX_QUEUE):
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.dispatcher = Dispatcher(max_workers=max_workers)
        self.sessions = {}  # tenant -> live TenantSession
        #: Aggregated service counters across *finished* sessions (live
        #: ones are folded in by :meth:`aggregate`).
        self.counters = {
            "tenants": 0,
            "connections": 0,
            "protocol_errors": 0,
            "ticks": 0,
            "convoys_closed": 0,
            "throttled_waits": 0,
            "drains": 0,
            "peak_queue": 0,
        }
        self._server = None
        self._retired = []  # service_counters of closed sessions
        self._connections = set()  # live _handle_connection tasks

    async def start(self):
        """Bind the socket and start dispatching; resolves :attr:`port`."""
        self.dispatcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=STREAM_LIMIT,  # see protocol.STREAM_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        """Stop accepting, close every session (no flush), stop workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel live connections; each handler's cleanup path closes
        # its own sessions (committing completed ticks) before exiting.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        for session in list(self.sessions.values()):
            await self._close_session(session)
        await self.dispatcher.stop()

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback):
        await self.stop()
        return False

    def aggregate(self):
        """Service-wide counter totals: finished sessions plus live
        ones, with ``peak_queue`` as the max across tenants."""
        totals = dict(self.counters)
        live = [s.service_counters for s in self.sessions.values()]
        for service_counters in self._retired + live:
            for key in ("ticks", "convoys_closed", "throttled_waits",
                        "drains"):
                totals[key] += service_counters[key]
            totals["peak_queue"] = max(
                totals["peak_queue"], service_counters["peak_queue"]
            )
        totals["dispatcher_steps"] = self.dispatcher.counters["steps"]
        totals["failed_steps"] = self.dispatcher.counters["failed_steps"]
        return totals

    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        self.counters["connections"] += 1
        self._connections.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        local = {}  # tenants opened by this connection

        async def send(event):
            async with write_lock:
                writer.write(encode(event))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = None
                try:
                    message = decode(line)
                    if message["type"] == "bye":
                        break
                    await self._handle_message(message, local, send)
                except ProtocolError as exc:
                    self.counters["protocol_errors"] += 1
                    event = {"type": "error", "error": str(exc)}
                    if isinstance(message, dict) and "tenant" in message:
                        event["tenant"] = message["tenant"]
                    await send(event)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with the connection still open: swallow
            # the cancellation so the cleanup below runs to completion
            # (sessions must close their miners, committing ticks).
            pass
        finally:
            self._connections.discard(asyncio.current_task())
            for session in local.values():
                await self._close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_message(self, message, local, send):
        kind = message["type"]
        if kind == "hello":
            await self._handle_hello(message, local, send)
        elif kind in ("feed", "drain", "flush"):
            session = local.get(message.get("tenant"))
            if session is None or session.done:
                raise ProtocolError(
                    f"unknown tenant {message.get('tenant')!r}: "
                    "open it with a hello first"
                )
            if kind == "feed":
                await self._handle_feed(message, session)
            elif kind == "drain":
                session.enqueue_drain()
                self.dispatcher.notify(session)
            else:
                session.enqueue_flush()
                self.dispatcher.notify(session)
        else:
            raise ProtocolError(f"unknown message type {kind!r}")

    async def _handle_hello(self, message, local, send):
        tenant = message.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(
                f"tenant must be a non-empty string, got {tenant!r}"
            )
        if tenant in self.sessions:
            raise ProtocolError(f"tenant {tenant!r} is already open")
        miner, tick_delay, max_queue = build_miner(
            message.get("config", {})
        )
        session = TenantSession(
            tenant, miner,
            max_queue=max_queue if max_queue is not None else self.max_queue,
            tick_delay=tick_delay,
        )
        session.deliver = self._make_deliver(session, local, send)
        self.sessions[tenant] = session
        local[tenant] = session
        self.counters["tenants"] += 1
        await send({"type": "ready", "tenant": tenant})

    def _make_deliver(self, session, local, send):
        async def deliver(event):
            if event["type"] in ("flushed", "error"):
                self._retire(session, local)
            try:
                await send(event)
            except (ConnectionResetError, BrokenPipeError):
                pass  # reader gone; the read loop will close us out
        return deliver

    async def _handle_feed(self, message, session):
        ticks = message.get("ticks")
        if not isinstance(ticks, list):
            raise ProtocolError(f"feed ticks must be a list, got {ticks!r}")
        for entry in ticks:
            if not isinstance(entry, list) or len(entry) != 2:
                raise ProtocolError(
                    f"feed entries are [t, snapshot], got {entry!r}"
                )
            t, triples = entry
            if not isinstance(t, int) or isinstance(t, bool):
                raise ProtocolError(f"tick time must be an int, got {t!r}")
            # This await is the backpressure seam: it blocks the read
            # loop (stops reading this feed) while the tenant is over
            # its high-water mark.
            await session.enqueue(t, decode_snapshot(triples))
            self.dispatcher.notify(session)

    def _retire(self, session, local=None):
        if self.sessions.get(session.tenant) is session:
            del self.sessions[session.tenant]
            self._retired.append(session.service_counters)
        if local is not None:
            local.pop(session.tenant, None)

    async def _close_session(self, session):
        """Close one session without flushing (shutdown / disconnect)."""
        if session.done:
            self._retire(session)
            return
        session.done = True  # stop accepting + stop scheduling
        session.discard_queued()
        await self.dispatcher.wait_idle(session)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, session.abort_sync)
        self._retire(session)
