"""Planar geometry substrate for convoy discovery.

This package implements Definition 1 of the paper (the distance functions
``D``, ``DPL``, ``DLL``, and ``Dmin``) plus the temporal extensions used by
CuTS* (time-parameterized segment locations, the Closest Point of Approach
time, and the tightened segment distance ``D*`` of Section 6.2).

Everything here is deliberately dependency-free scalar math: the rest of the
library calls these functions in tight inner loops (range searches inside
DBSCAN), so they avoid any object allocation beyond plain tuples.
"""

from repro.geometry.bbox import BoundingBox, box_min_distance, box_of_points
from repro.geometry.cpa import cpa_distance, cpa_time, segment_location_at
from repro.geometry.distance import (
    point_distance,
    point_segment_distance,
    segment_distance,
    squared_point_distance,
)
from repro.geometry.vec import (
    add,
    dot,
    norm,
    scale,
    squared_norm,
    sub,
)

__all__ = [
    "BoundingBox",
    "add",
    "box_min_distance",
    "box_of_points",
    "cpa_distance",
    "cpa_time",
    "dot",
    "norm",
    "point_distance",
    "point_segment_distance",
    "scale",
    "segment_distance",
    "segment_location_at",
    "squared_norm",
    "squared_point_distance",
    "sub",
]
