"""Closest Point of Approach (CPA) machinery for CuTS* (Section 6.2).

DP*-simplified line segments are *time parameterized*: a segment ``l'`` with
endpoints ``pu`` (at time ``u``) and ``pv`` (at time ``v``) describes an
object moving at constant velocity, and its location at an intermediate time
is

    ``l'(t) = pu + (t - u) / (v - u) * (pv - pu)``.

Given two such segments, the CPA time is the instant at which the two moving
locations are closest; evaluating the distance *there*, restricted to the
common time interval, yields the tightened distance ``D*`` used by Lemma 3.
``D*`` is never smaller than the purely spatial ``DLL`` of the same
segments, which is exactly why the CuTS* filter is tighter than CuTS's.
"""

from __future__ import annotations

import math

from repro.geometry.vec import lerp


def segment_location_at(pu, pv, u, v, t):
    """Return ``l'(t)`` for the time-parameterized segment ``(pu@u, pv@v)``.

    ``t`` must lie inside ``[u, v]``.  A zero-duration segment (``u == v``)
    is a stationary sample and simply returns ``pu``.
    """
    if not (min(u, v) <= t <= max(u, v)):
        raise ValueError(f"time {t} outside segment interval [{u}, {v}]")
    if v == u:
        return pu
    return lerp(pu, pv, (t - u) / (v - u))


def cpa_time(pu, pv, u, v, qw, qx, w, x):
    """Return the CPA time of two time-parameterized segments.

    The first segment runs from ``pu`` at time ``u`` to ``pv`` at time ``v``;
    the second from ``qw`` at ``w`` to ``qx`` at ``x``.  Both are treated as
    constant-velocity motions; the relative motion is linear so the squared
    distance is a quadratic in ``t`` minimized at

        ``t_cpa = -( (p0 - q0) . (vp - vq) ) / |vp - vq|^2``

    measured from the common reference time 0.  The returned time is clamped
    to the *common* time interval ``[max(u, w), min(v, x)]``; the caller is
    expected to have verified that the interval is non-empty.  When the two
    objects have identical velocities every instant is equally close and the
    start of the common interval is returned.
    """
    t_lo = max(u, w)
    t_hi = min(v, x)
    if t_lo > t_hi:
        raise ValueError(
            f"segments have disjoint time intervals [{u},{v}] and [{w},{x}]"
        )
    # Velocities; zero-duration segments are stationary points.
    vel_p = _velocity(pu, pv, u, v)
    vel_q = _velocity(qw, qx, w, x)
    dvx = vel_p[0] - vel_q[0]
    dvy = vel_p[1] - vel_q[1]
    speed2 = dvx * dvx + dvy * dvy
    if speed2 == 0.0:
        return t_lo
    # Positions at t=0 extrapolated backwards along each velocity.
    p0x = pu[0] - vel_p[0] * u
    p0y = pu[1] - vel_p[1] * u
    q0x = qw[0] - vel_q[0] * w
    q0y = qw[1] - vel_q[1] * w
    t = -((p0x - q0x) * dvx + (p0y - q0y) * dvy) / speed2
    if t < t_lo:
        return t_lo
    if t > t_hi:
        return t_hi
    return t


def _velocity(pa, pb, ta, tb):
    if tb == ta:
        return (0.0, 0.0)
    inv = 1.0 / (tb - ta)
    return ((pb[0] - pa[0]) * inv, (pb[1] - pa[1]) * inv)


def cpa_distance(pu, pv, u, v, qw, qx, w, x):
    """Return ``D*(l'1, l'2)``: distance at the CPA time over the common interval.

    Per Section 6.2 the distance is ``inf`` when the two segments' time
    intervals do not intersect — objects that are never co-temporal cannot
    belong to the same convoy and must never be treated as close.
    """
    t_lo = max(u, w)
    t_hi = min(v, x)
    if t_lo > t_hi:
        return math.inf
    t = cpa_time(pu, pv, u, v, qw, qx, w, x)
    loc_p = segment_location_at(pu, pv, u, v, t)
    loc_q = segment_location_at(qw, qx, w, x, t)
    return math.hypot(loc_p[0] - loc_q[0], loc_p[1] - loc_q[1])
