"""Distance functions of Definition 1.

The paper defines four distances; three live here and the box distance
``Dmin`` lives in :mod:`repro.geometry.bbox`:

* ``D(pu, pv)``      — Euclidean distance between two points
                       (:func:`point_distance`);
* ``DPL(p, l)``      — shortest distance between a point and any point on a
                       line segment (:func:`point_segment_distance`);
* ``DLL(lu, lv)``    — shortest distance between any two points on two line
                       segments (:func:`segment_distance`).

Segments are pairs of ``(x, y)`` tuples.  All functions return plain floats.
"""

from __future__ import annotations

import math

from repro.geometry.vec import dot, squared_norm, sub


def point_distance(pu, pv):
    """Return ``D(pu, pv)``: the Euclidean distance between two points."""
    return math.hypot(pu[0] - pv[0], pu[1] - pv[1])


def squared_point_distance(pu, pv):
    """Return ``D(pu, pv)^2`` without the square root.

    Range searches compare against a threshold, so comparing squared
    distances against a squared threshold saves a ``sqrt`` per candidate.
    """
    dx = pu[0] - pv[0]
    dy = pu[1] - pv[1]
    return dx * dx + dy * dy


def _clamp01(value):
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


def point_segment_projection(p, a, b):
    """Return the point on segment ``ab`` closest to ``p``.

    The result is the orthogonal projection of ``p`` onto the supporting
    line of ``ab``, clamped to the segment.  Degenerate segments (``a == b``)
    are handled by returning ``a``.
    """
    ab = sub(b, a)
    denom = squared_norm(ab)
    if denom == 0.0:
        return a
    t = _clamp01(dot(sub(p, a), ab) / denom)
    return (a[0] + ab[0] * t, a[1] + ab[1] * t)


def point_segment_distance(p, a, b):
    """Return ``DPL(p, l)``: shortest distance from point ``p`` to segment ``ab``."""
    q = point_segment_projection(p, a, b)
    return math.hypot(p[0] - q[0], p[1] - q[1])


def point_line_distance(p, a, b):
    """Return the perpendicular distance from ``p`` to the *infinite* line ``ab``.

    The classical Douglas-Peucker algorithm [11] measures deviation with the
    perpendicular distance to the chord's supporting line; we expose it
    separately from :func:`point_segment_distance` because the two differ
    for points whose projection falls outside the chord.

    For a degenerate chord (``a == b``) the distance to the single point is
    returned.
    """
    ab = sub(b, a)
    denom = math.hypot(ab[0], ab[1])
    if denom == 0.0:
        return math.hypot(p[0] - a[0], p[1] - a[1])
    cross = (b[0] - a[0]) * (a[1] - p[1]) - (a[0] - p[0]) * (b[1] - a[1])
    return abs(cross) / denom


def _segments_intersect(a, b, c, d):
    """Return True if closed segments ``ab`` and ``cd`` intersect."""

    def orient(p, q, r):
        value = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
        if value > 0.0:
            return 1
        if value < 0.0:
            return -1
        return 0

    def on_segment(p, q, r):
        return (
            min(p[0], q[0]) <= r[0] <= max(p[0], q[0])
            and min(p[1], q[1]) <= r[1] <= max(p[1], q[1])
        )

    o1 = orient(a, b, c)
    o2 = orient(a, b, d)
    o3 = orient(c, d, a)
    o4 = orient(c, d, b)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(a, b, c):
        return True
    if o2 == 0 and on_segment(a, b, d):
        return True
    if o3 == 0 and on_segment(c, d, a):
        return True
    if o4 == 0 and on_segment(c, d, b):
        return True
    return False


def segment_distance(a, b, c, d):
    """Return ``DLL(lu, lv)``: shortest distance between segments ``ab`` and ``cd``.

    If the segments intersect the distance is zero; otherwise the minimum is
    attained at an endpoint of one segment against the other segment, so we
    take the minimum of the four point-to-segment distances.
    """
    if _segments_intersect(a, b, c, d):
        return 0.0
    return min(
        point_segment_distance(a, c, d),
        point_segment_distance(b, c, d),
        point_segment_distance(c, a, b),
        point_segment_distance(d, a, b),
    )
