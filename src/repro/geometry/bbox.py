"""Axis-aligned bounding boxes and the ``Dmin`` box distance of Definition 1.

Bounding boxes are used exactly where the paper uses them: Lemma 2 groups a
set ``S`` of simplified line segments under one box ``B(S)`` so that an
entire partition bucket can be pruned with a single distance test before any
per-segment work happens (the "multi-step range search" of Section 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self):
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "degenerate bounding box: "
                f"({self.min_x}, {self.min_y}) .. ({self.max_x}, {self.max_y})"
            )

    @property
    def width(self):
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self):
        """Extent along the y axis."""
        return self.max_y - self.min_y

    def contains_point(self, p):
        """Return True if point ``p`` lies inside the closed box."""
        return self.min_x <= p[0] <= self.max_x and self.min_y <= p[1] <= self.max_y

    def expanded(self, margin):
        """Return a copy grown by ``margin`` on every side.

        This implements the "new search space" of Figure 8: a range search
        over simplified trajectories must enlarge the query region by
        ``e + δ(l'q) + δ(l'i)``.
        """
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other):
        """Return the smallest box covering both ``self`` and ``other``."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersects(self, other):
        """Return True if the two closed boxes share at least one point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )


def box_of_points(points):
    """Return the minimum bounding box ``B`` of a non-empty point iterable."""
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("cannot bound an empty point collection") from None
    min_x = max_x = first[0]
    min_y = max_y = first[1]
    for p in iterator:
        if p[0] < min_x:
            min_x = p[0]
        elif p[0] > max_x:
            max_x = p[0]
        if p[1] < min_y:
            min_y = p[1]
        elif p[1] > max_y:
            max_y = p[1]
    return BoundingBox(min_x, min_y, max_x, max_y)


def box_min_distance(bu, bv):
    """Return ``Dmin(Bu, Bv)``: the minimum distance between two boxes.

    Zero when the boxes overlap; otherwise the Euclidean distance between
    the nearest pair of box edges/corners.
    """
    dx = max(bu.min_x - bv.max_x, bv.min_x - bu.max_x, 0.0)
    dy = max(bu.min_y - bv.max_y, bv.min_y - bu.max_y, 0.0)
    return math.hypot(dx, dy)
