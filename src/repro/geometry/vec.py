"""Tiny 2-D vector helpers.

Points and vectors are plain ``(x, y)`` tuples of floats.  The functions are
kept free of validation so they can be used in the innermost loops of the
clustering range searches; all validation happens at the API boundaries
(:mod:`repro.trajectory`).
"""

from __future__ import annotations

import math

Point = tuple  # (x, y) — alias used in type hints throughout the package


def add(u, v):
    """Return the component-wise sum ``u + v`` of two 2-D vectors."""
    return (u[0] + v[0], u[1] + v[1])


def sub(u, v):
    """Return the component-wise difference ``u - v`` of two 2-D vectors."""
    return (u[0] - v[0], u[1] - v[1])


def scale(u, s):
    """Return the vector ``u`` scaled by the scalar ``s``."""
    return (u[0] * s, u[1] * s)


def dot(u, v):
    """Return the dot product of two 2-D vectors."""
    return u[0] * v[0] + u[1] * v[1]


def squared_norm(u):
    """Return ``|u|^2``, avoiding the square root of :func:`norm`."""
    return u[0] * u[0] + u[1] * u[1]


def norm(u):
    """Return the Euclidean norm ``|u|``."""
    return math.hypot(u[0], u[1])


def lerp(u, v, ratio):
    """Linearly interpolate between ``u`` (ratio 0) and ``v`` (ratio 1).

    This is the primitive behind both virtual-point generation in CMC
    (Section 4: "we apply linear interpolation to create the virtual
    points") and the DP* time-ratio location ``l'(t)`` of Section 6.2.
    """
    return (u[0] + (v[0] - u[0]) * ratio, u[1] + (v[1] - u[1]) * ratio)
