"""MC2 — moving clusters as a (flawed) convoy answer (Section 2.1, App. B.1).

A *moving cluster* (Kalnis et al. [19]) is a sequence of snapshot clusters
``c_t, c_{t+1}, ...`` at consecutive time points whose Jaccard overlap
never drops below a threshold θ:

    ``|c_t ∩ c_{t+1}| / |c_t ∪ c_{t+1}| >= θ``.

Two semantic gaps make this the wrong tool for convoy queries, which
Appendix B.1 quantifies and :mod:`benchmarks.bench_fig19_mc2_quality`
reproduces:

* no value of θ recovers exact intersection semantics — objects may join
  and leave while the chain survives, so the "common objects" of a moving
  cluster need not stay together (false positives, Figure 2(b));
* there is no lifetime constraint ``k``, and θ-chaining can cut a genuine
  convoy into fragments shorter than ``k`` (false negatives, Figure 2(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clustering.dbscan import dbscan
from repro.core.convoy import Convoy


@dataclass(frozen=True)
class MovingCluster:
    """One discovered moving cluster.

    Attributes:
        snapshots: tuple of frozensets — the member objects at each
            consecutive time point of the chain.
        t_start: time point of the first snapshot.
    """

    snapshots: tuple
    t_start: int

    @property
    def t_end(self):
        """Time point of the last snapshot."""
        return self.t_start + len(self.snapshots) - 1

    @property
    def lifetime(self):
        """Number of consecutive time points the chain covers."""
        return len(self.snapshots)

    @property
    def common_objects(self):
        """Objects present in *every* snapshot of the chain."""
        common = set(self.snapshots[0])
        for snapshot in self.snapshots[1:]:
            common &= snapshot
        return frozenset(common)

    def as_convoy(self):
        """Report the chain as a convoy answer: common objects + interval.

        Returns None when no object survived the whole chain (possible
        under θ < 1, another way moving clusters diverge from convoys).
        """
        common = self.common_objects
        if not common:
            return None
        return Convoy(common, self.t_start, self.t_end)


def mc2(database, eps, min_pts, theta, time_range=None):
    """Discover moving clusters with the MC2 greedy chaining.

    Args:
        database: a :class:`repro.trajectory.TrajectoryDatabase`.
        eps: snapshot DBSCAN distance threshold (the convoy ``e``).
        min_pts: snapshot DBSCAN density (the convoy ``m``).
        theta: Jaccard-overlap threshold θ in (0, 1].
        time_range: optional ``(t_lo, t_hi)`` restriction.

    Returns:
        List of :class:`MovingCluster`, in discovery order.  A snapshot
        cluster extends every chain whose last snapshot meets the θ test
        (and starts a fresh chain when it extends none), mirroring the
        greedy formulation the paper attributes to MC2.
    """
    if not (0.0 < theta <= 1.0):
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    if len(database) == 0:
        return []
    if time_range is None:
        t_lo, t_hi = database.min_time, database.max_time
    else:
        t_lo, t_hi = time_range

    results = []
    live = []  # list of (snapshots list, t_start) chains alive at t-1
    previous_t = None
    for t in range(t_lo, t_hi + 1):
        snapshot = database.snapshot(t)
        clusters = (
            [frozenset(c) for c in dbscan(snapshot, eps, min_pts)]
            if len(snapshot) >= min_pts
            else []
        )
        if previous_t is not None and t != previous_t + 1:
            # Non-consecutive step: every chain ends.
            results.extend(
                MovingCluster(tuple(snaps), start) for snaps, start in live
            )
            live = []
        next_live = []
        extended_clusters = set()
        for snaps, start in live:
            last = snaps[-1]
            assigned = False
            for index, cluster in enumerate(clusters):
                union = len(last | cluster)
                if union == 0:
                    continue
                if len(last & cluster) / union >= theta:
                    assigned = True
                    extended_clusters.add(index)
                    next_live.append((snaps + [cluster], start))
            if not assigned:
                results.append(MovingCluster(tuple(snaps), start))
        for index, cluster in enumerate(clusters):
            if index not in extended_clusters:
                next_live.append(([cluster], t))
        live = next_live
        previous_t = t
    results.extend(MovingCluster(tuple(snaps), start) for snaps, start in live)
    return results


def mc2_convoy_answers(database, eps, min_pts, theta, time_range=None):
    """Return MC2's moving clusters reinterpreted as convoy answers.

    This is the ``Rm`` of Appendix B.1: each moving cluster contributes its
    common-object set over its full interval (chains with no surviving
    common object are dropped).  No ``k`` filtering happens here — the
    *absence* of the lifetime constraint is part of what Figure 19
    measures.
    """
    answers = []
    for cluster in mc2(database, eps, min_pts, theta, time_range=time_range):
        convoy = cluster.as_convoy()
        if convoy is not None:
            answers.append(convoy)
    return answers
