"""Baseline pattern-discovery methods the paper compares against.

* :func:`mc2` — the moving-cluster method of Kalnis et al. (reference
  [19]), adapted verbatim as "MC2" in Appendix B.1 to demonstrate that
  moving clusters cannot answer convoy queries (no lifetime constraint,
  θ-overlap instead of exact intersection);
* :func:`discover_flocks` — a disc-based flock finder in the style of
  references [5, 13], used to demonstrate the *lossy-flock problem* of
  Figure 1: a fixed-radius disc can exclude objects that a density-based
  convoy correctly keeps.
"""

from repro.baselines.flocks import discover_flocks
from repro.baselines.moving_clusters import MovingCluster, mc2

__all__ = ["MovingCluster", "discover_flocks", "mc2"]
