"""Disc-based flock discovery — the lossy-flock baseline (Section 1, Fig. 1).

A *flock* (references [5, 13, 14]) is a group of at least ``m`` objects
that stay together inside a moving disc of radius ``r`` for at least ``k``
consecutive time points.  Finding the longest-duration flock is NP-hard
(Gudmundsson & van Kreveld), so practical systems use heuristics; this
module implements the standard object-centred heuristic — candidate discs
are centred on each object's location — which is what the lossy-flock
discussion needs: it demonstrates that *any* fixed disc size either drops
members that belong to a natural group (Figure 1's ``o4``) or merges
separate groups, whereas the density-based convoy adapts to the data.

This baseline exists for the Figure 1 demonstration and the flock ablation
bench; it is not part of the paper's evaluation tables.
"""

from __future__ import annotations

from repro.clustering.grid_index import GridIndex
from repro.core.candidates import CandidateTracker


def _disc_groups(snapshot, radius, min_objects):
    """Return the maximal object-centred disc groups at one time point.

    For each object, the group is every object within ``radius`` of it (the
    disc of radius ``radius`` centred on the object).  Groups smaller than
    ``min_objects`` are dropped, and groups contained in another group are
    removed so only maximal ones survive.
    """
    if len(snapshot) < min_objects:
        return []
    index = GridIndex(radius, snapshot)
    groups = []
    for object_id in snapshot:
        members = frozenset(index.neighbors_of(object_id, radius))
        if len(members) >= min_objects:
            groups.append(members)
    groups.sort(key=len, reverse=True)
    maximal = []
    for group in groups:
        if not any(group <= other for other in maximal):
            maximal.append(group)
    return maximal


def discover_flocks(database, m, k, radius, time_range=None):
    """Discover flocks with object-centred candidate discs.

    Args:
        database: a :class:`repro.trajectory.TrajectoryDatabase`.
        m: minimum flock size.
        k: minimum lifetime in consecutive time points.
        radius: the disc radius (the user-specified size whose brittleness
            the paper criticizes).
        time_range: optional ``(t_lo, t_hi)`` restriction.

    Returns:
        List of :class:`~repro.core.convoy.Convoy`-shaped results (the
        flock's member set and interval).  Chaining across time reuses the
        convoy candidate tracker: a flock persists while at least ``m`` of
        its members remain in a common disc group.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if len(database) == 0:
        return []
    if time_range is None:
        t_lo, t_hi = database.min_time, database.max_time
    else:
        t_lo, t_hi = time_range
    tracker = CandidateTracker(m, k)
    results = []
    for t in range(t_lo, t_hi + 1):
        snapshot = database.snapshot(t)
        groups = _disc_groups(snapshot, radius, m)
        results.extend(
            record.as_convoy() for record in tracker.advance(groups, t, t)
        )
    results.extend(record.as_convoy() for record in tracker.flush())
    return results
