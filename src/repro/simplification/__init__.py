"""Trajectory line-simplification (Sections 2.2, 5.1, 6.1, 6.2).

Three simplifiers, all sharing one divide-and-conquer engine and all
producing :class:`SimplifiedTrajectory` objects that carry per-segment
**actual tolerances** (Definition 4):

* :func:`douglas_peucker` (**DP**) — splits at the point of maximum spatial
  deviation from the chord;
* :func:`douglas_peucker_plus` (**DP+**, Section 6.1) — among the points
  whose deviation exceeds δ, splits at the one closest to the middle of the
  sub-trajectory, balancing the divide-and-conquer and shrinking the actual
  tolerances;
* :func:`douglas_peucker_star` (**DP***, Meratnia & de By, Section 6.2) —
  measures deviation against the *time-ratio* location ``l'(t)`` instead of
  the nearest point of the chord, so the simplified segments support the
  tightened CuTS* distance ``D*``.

Deviation measure note: Definition 4 defines the actual tolerance with the
point-to-*segment* distance ``DPL`` (not the perpendicular distance to the
infinite chord line), so DP and DP+ here use ``DPL`` as their split
criterion too.  That keeps the library-wide invariant — every actual
tolerance is at most the global δ — which Lemmas 1-3 rely on.
"""

from repro.simplification.base import SimplifiedTrajectory, Simplifier
from repro.simplification.dp import douglas_peucker
from repro.simplification.dp_plus import douglas_peucker_plus
from repro.simplification.dp_star import douglas_peucker_star
from repro.simplification.stats import simplification_report, vertex_reduction

SIMPLIFIERS = {
    "dp": douglas_peucker,
    "dp+": douglas_peucker_plus,
    "dp*": douglas_peucker_star,
}
"""Registry mapping the paper's simplifier names to their implementations."""

__all__ = [
    "SIMPLIFIERS",
    "SimplifiedTrajectory",
    "Simplifier",
    "douglas_peucker",
    "douglas_peucker_plus",
    "douglas_peucker_star",
    "simplification_report",
    "vertex_reduction",
]
