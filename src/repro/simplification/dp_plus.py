"""DP+ — balanced-split Douglas-Peucker (Section 6.1).

DP+ keeps DP's spatial deviation measure but changes the split rule: among
the interior points whose deviation exceeds δ it selects the one *closest
to the middle* of the sub-trajectory.  Divide-and-conquer then produces
near-equal halves, which:

* speeds up simplification (the paper's primary motivation — Figure 15(b)),
* and empirically yields smaller actual tolerances than DP (δ4 < δ6 in
  Figure 10), tightening the filter's range-search bounds (Section 6.1).

The price is lower reduction power: DP+ does not preserve the trajectory's
shape as well, so later divisions are less effective and more points
survive (Figure 15(a)).
"""

from __future__ import annotations

from repro.simplification.base import Simplifier, middle_most_split
from repro.simplification.dp import spatial_deviation

#: **DP+** — split at the offending point nearest the middle index.
douglas_peucker_plus = Simplifier(spatial_deviation, middle_most_split, "DP+")
