"""DP* — time-aware simplification (Meratnia & de By [23]; Sections 2.2, 6.2).

Where DP measures how far a point strays from the chord *geometrically*,
DP* measures how far the object strays from where a constant-velocity
object travelling the chord *would be at the same instant*: the deviation
of ``p_i`` is ``D(p_i, l'(t_i))`` with ``l'(t)`` the time-ratio location of
Section 6.2 (also known in the literature as the synchronous Euclidean
distance).

Consequences, both exploited by CuTS*:

* actual tolerances bound ``D(o(t), l'(t))`` — exactly the premise Lemma 3
  needs for the tightened ``D*`` distance;
* the time-ratio deviation is never smaller than the spatial deviation, so
  DP* keeps more points than DP (lower reduction power, Figure 15(a)) but
  its segments admit much tighter distance bounds.
"""

from __future__ import annotations

import math

from repro.simplification.base import Simplifier, max_deviation_split


def time_ratio_deviation(xs, ys, times, lo, hi, i):
    """Deviation of point ``i`` from the chord's time-ratio location.

    ``l'(t_i) = p_lo + (t_i - t_lo) / (t_hi - t_lo) * (p_hi - p_lo)`` —
    the position, at ``p_i``'s own timestamp, of an object moving uniformly
    along the chord.
    """
    span = times[hi] - times[lo]
    if span == 0:
        return math.hypot(xs[i] - xs[lo], ys[i] - ys[lo])
    ratio = (times[i] - times[lo]) / span
    proj_x = xs[lo] + (xs[hi] - xs[lo]) * ratio
    proj_y = ys[lo] + (ys[hi] - ys[lo]) * ratio
    return math.hypot(xs[i] - proj_x, ys[i] - proj_y)


#: **DP*** — DP's max-deviation split rule over the time-ratio deviation.
douglas_peucker_star = Simplifier(
    time_ratio_deviation, max_deviation_split, "DP*"
)
