"""Shared machinery for the three simplifiers.

The DP family differs only in two decisions — how a point's deviation from
a chord is measured, and which offending point becomes the split point — so
one iterative divide-and-conquer engine (:class:`Simplifier`) hosts all
three.  The engine also computes, for every emitted chord, the **actual
tolerance** δ(l') of Definition 4 (the maximum deviation of the original
points the chord replaces) at no extra cost: the deviations are already in
hand when the split decision is made, exactly as the paper notes
("the derivation of these tolerance values can be seamlessly integrated
into the DP algorithm").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trajectory.point import TrajectoryPoint
from repro.trajectory.segment import TimestampedSegment


@dataclass(frozen=True)
class SimplifiedTrajectory:
    """The simplified polyline ``o'`` of one object.

    Attributes:
        object_id: identifier of the moving object.
        points: tuple of kept :class:`TrajectoryPoint` (a subset of the
            original samples, in time order).
        segments: tuple of :class:`TimestampedSegment`, one per consecutive
            pair of kept points.  A single-point trajectory yields one
            degenerate (zero-length, zero-duration) segment so that the
            object still participates in the filter's clustering.
        tolerances: tuple of actual tolerances δ(l'), parallel to
            ``segments``.
        delta: the global tolerance δ the simplifier ran with.
        original_size: ``|o|``, the number of points before simplification.
    """

    object_id: object
    points: tuple
    segments: tuple
    tolerances: tuple
    delta: float
    original_size: int
    _prefix_max_tol: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.points:
            raise ValueError(f"simplified trajectory {self.object_id!r} is empty")
        if len(self.segments) != len(self.tolerances):
            raise ValueError(
                f"{len(self.segments)} segments vs {len(self.tolerances)} tolerances"
            )
        object.__setattr__(self, "_prefix_max_tol", ())

    def __len__(self):
        """Number of kept points ``|o'|``."""
        return len(self.points)

    @property
    def t_start(self):
        """Start of ``o'.tau`` (same as the original trajectory's)."""
        return self.points[0].t

    @property
    def t_end(self):
        """End of ``o'.tau`` (same as the original trajectory's)."""
        return self.points[-1].t

    @property
    def tau(self):
        """The time interval ``o'.tau``."""
        return (self.t_start, self.t_end)

    @property
    def actual_tolerance(self):
        """δ(o'): the maximum actual tolerance over all segments."""
        return max(self.tolerances)

    @property
    def reduction_ratio(self):
        """Fraction of vertices removed, in [0, 1)."""
        if self.original_size == 0:
            return 0.0
        return 1.0 - len(self.points) / self.original_size

    def overlaps_interval(self, t_lo, t_hi):
        """Return True if ``o'.tau`` intersects ``[t_lo, t_hi]``."""
        return self.t_start <= t_hi and t_lo <= self.t_end

    def segments_overlapping(self, t_lo, t_hi):
        """Return ``[(segment, tolerance), ...]`` intersecting ``[t_lo, t_hi]``.

        This is the "insert l_i^j ∈ o'_i (intersecting time interval of
        T_z)" step of Algorithm 2, including the paper's rule that a
        segment straddling a partition boundary is inserted into *both*
        partitions (Figure 9(b)'s ``l_3^2``).
        """
        found = []
        for segment, tolerance in zip(self.segments, self.tolerances):
            if segment.t_start > t_hi:
                break
            if segment.t_end >= t_lo:
                found.append((segment, tolerance))
        return found


class Simplifier:
    """Iterative divide-and-conquer engine shared by DP, DP+, and DP*.

    Subclass/instance behaviour is injected through two callables:

    Args:
        deviation_fn: ``f(xs, ys, times, lo, hi, i) -> float`` measuring how
            far original point ``i`` deviates from the chord ``lo..hi``.
        split_chooser: ``f(deviations, lo, hi, delta) -> int | None`` given
            the interior deviations (list of ``(index, deviation)``)
            returns the split index, or ``None`` to accept the chord.
        name: human-readable simplifier name for reprs and reports.
    """

    def __init__(self, deviation_fn, split_chooser, name):
        self._deviation_fn = deviation_fn
        self._split_chooser = split_chooser
        self.name = name

    def __repr__(self):
        return f"Simplifier({self.name})"

    def __call__(self, trajectory, delta):
        """Simplify ``trajectory`` with global tolerance ``delta``.

        Returns a :class:`SimplifiedTrajectory` whose every actual
        tolerance is at most ``delta``.
        """
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        times, xs, ys = trajectory.coordinates()
        n = len(times)
        if n == 1:
            point = TrajectoryPoint(xs[0], ys[0], times[0])
            segment = TimestampedSegment(
                (xs[0], ys[0]), (xs[0], ys[0]), times[0], times[0]
            )
            return SimplifiedTrajectory(
                trajectory.object_id, (point,), (segment,), (0.0,), delta, 1
            )
        kept = [0, n - 1]
        chord_tolerance = {}
        stack = [(0, n - 1)]
        while stack:
            lo, hi = stack.pop()
            if hi - lo < 2:
                chord_tolerance[(lo, hi)] = 0.0
                continue
            deviations = []
            max_dev = 0.0
            for i in range(lo + 1, hi):
                dev = self._deviation_fn(xs, ys, times, lo, hi, i)
                deviations.append((i, dev))
                if dev > max_dev:
                    max_dev = dev
            split = self._split_chooser(deviations, lo, hi, delta)
            if split is None:
                chord_tolerance[(lo, hi)] = max_dev
            else:
                kept.append(split)
                stack.append((lo, split))
                stack.append((split, hi))
        kept.sort()
        points = tuple(
            TrajectoryPoint(xs[i], ys[i], times[i]) for i in kept
        )
        segments = []
        tolerances = []
        for a, b in zip(kept, kept[1:]):
            segments.append(
                TimestampedSegment(
                    (xs[a], ys[a]), (xs[b], ys[b]), times[a], times[b]
                )
            )
            tolerances.append(chord_tolerance[(a, b)])
        return SimplifiedTrajectory(
            trajectory.object_id,
            points,
            tuple(segments),
            tuple(tolerances),
            delta,
            n,
        )


def max_deviation_split(deviations, lo, hi, delta):
    """Split rule of classical DP: the farthest offending point.

    Returns ``None`` when every interior deviation is within ``delta``
    (chord accepted), otherwise the index of the maximum deviation.
    """
    best_index = None
    best_dev = delta
    for index, dev in deviations:
        if dev > best_dev:
            best_dev = dev
            best_index = index
    return best_index


def middle_most_split(deviations, lo, hi, delta):
    """Split rule of DP+ (Section 6.1): the offender closest to the middle.

    Among the interior points whose deviation exceeds ``delta``, choose the
    one whose index is nearest to the midpoint of ``lo..hi`` so that each
    division produces two sub-problems of similar size.  Returns ``None``
    when the chord is accepted.
    """
    middle = (lo + hi) / 2.0
    best_index = None
    best_gap = None
    for index, dev in deviations:
        if dev <= delta:
            continue
        gap = abs(index - middle)
        if best_gap is None or gap < best_gap:
            best_gap = gap
            best_index = index
    return best_index
