"""Classical Douglas-Peucker simplification (reference [11]; Section 5.1)."""

from __future__ import annotations

from repro.geometry.distance import point_segment_distance
from repro.simplification.base import Simplifier, max_deviation_split


def spatial_deviation(xs, ys, times, lo, hi, i):
    """Deviation of point ``i`` from chord ``lo..hi``: ``DPL(p_i, chord)``.

    Definition 4 measures tolerance with the point-to-segment distance, so
    the split criterion uses the same measure (see the package docstring
    for why this differs from the perpendicular-to-line variant).
    """
    return point_segment_distance(
        (xs[i], ys[i]), (xs[lo], ys[lo]), (xs[hi], ys[hi])
    )


#: **DP** — split at the point of maximum spatial deviation.  The classical
#: algorithm of Douglas & Peucker (1973) applied to a trajectory's spatial
#: footprint, ignoring time.
douglas_peucker = Simplifier(spatial_deviation, max_deviation_split, "DP")
