"""Simplification statistics (the quantities plotted in Figure 15)."""

from __future__ import annotations


def vertex_reduction(simplified_list):
    """Return the vertex reduction percentage over a set of trajectories.

    ``100 * (1 - kept_points / original_points)`` — the y axis of
    Figure 15(a).
    """
    original = sum(s.original_size for s in simplified_list)
    kept = sum(len(s) for s in simplified_list)
    if original == 0:
        return 0.0
    return 100.0 * (1.0 - kept / original)


def simplification_report(simplified_list):
    """Summarize a simplification run for reporting.

    Returns a dict with total original/kept points, the reduction
    percentage, and the distribution of actual tolerances (max and mean) —
    the inputs to the Figure 14/15 analyses.
    """
    if not simplified_list:
        return {
            "original_points": 0,
            "kept_points": 0,
            "vertex_reduction_pct": 0.0,
            "max_actual_tolerance": 0.0,
            "mean_actual_tolerance": 0.0,
        }
    tolerances = [tol for s in simplified_list for tol in s.tolerances]
    return {
        "original_points": sum(s.original_size for s in simplified_list),
        "kept_points": sum(len(s) for s in simplified_list),
        "vertex_reduction_pct": vertex_reduction(simplified_list),
        "max_actual_tolerance": max(tolerances),
        "mean_actual_tolerance": sum(tolerances) / len(tolerances),
    }
