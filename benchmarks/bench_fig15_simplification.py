"""Figure 15 — DP vs DP+ vs DP*: vertex reduction and simplification time.

On the Cattle data the paper sweeps the tolerance δ and reports, per
simplifier, (a) the vertex reduction percentage and (b) the elapsed
simplification time.  Expected shapes: reduction power DP > DP+ > DP*
(DP+ splits sub-optimally; DP* uses the larger time-ratio deviation), and
every method gets faster as δ grows (divide-and-conquer terminates
earlier), with DP+ fastest thanks to its balanced splits.
"""

import pytest

from benchmarks.common import dataset, print_report
from repro.bench import format_series, time_call
from repro.simplification import SIMPLIFIERS, vertex_reduction

#: δ sweep as fractions of the Cattle e = 300 (the paper sweeps 10-70 in
#: its own units).
DELTA_FRACTIONS = (0.05, 0.1, 0.2, 0.4)


def _simplify_all(simplifier, trajectories, delta):
    return [simplifier(tr, delta) for tr in trajectories]


@pytest.mark.parametrize("method", list(SIMPLIFIERS))
@pytest.mark.parametrize("fraction", DELTA_FRACTIONS)
def test_fig15_simplification(benchmark, method, fraction):
    spec = dataset("cattle")
    trajectories = list(spec.database)
    delta = spec.eps * fraction
    simplifier = SIMPLIFIERS[method]

    def run():
        return _simplify_all(simplifier, trajectories, delta)

    simplified = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["vertex_reduction_pct"] = round(
        vertex_reduction(simplified), 2
    )


def test_fig15_reduction_ordering():
    """DP reduces at least as much as DP* at every δ (same split rule,
    smaller deviation measure)."""
    spec = dataset("cattle")
    trajectories = list(spec.database)
    for fraction in DELTA_FRACTIONS:
        delta = spec.eps * fraction
        dp = vertex_reduction(_simplify_all(SIMPLIFIERS["dp"], trajectories, delta))
        dp_star = vertex_reduction(
            _simplify_all(SIMPLIFIERS["dp*"], trajectories, delta)
        )
        assert dp >= dp_star - 1e-9


def test_fig15_larger_delta_more_reduction():
    spec = dataset("cattle")
    trajectories = list(spec.database)
    for method in SIMPLIFIERS:
        reductions = [
            vertex_reduction(
                _simplify_all(SIMPLIFIERS[method], trajectories, spec.eps * f)
            )
            for f in DELTA_FRACTIONS
        ]
        assert reductions == sorted(reductions)


def main():
    spec = dataset("cattle")
    trajectories = list(spec.database)
    deltas = [spec.eps * f for f in DELTA_FRACTIONS]
    reduction_series = {}
    time_series = {}
    for method, simplifier in SIMPLIFIERS.items():
        reductions = []
        times = []
        for delta in deltas:
            simplified, seconds = time_call(
                _simplify_all, simplifier, trajectories, delta
            )
            reductions.append(round(vertex_reduction(simplified), 1))
            times.append(round(seconds, 3))
        reduction_series[method] = reductions
        time_series[method] = times
    print_report(
        format_series(
            "Figure 15(a) — vertex reduction % vs tolerance (cattle)",
            "delta", [round(d, 1) for d in deltas], reduction_series,
        )
    )
    print_report(
        format_series(
            "Figure 15(b) — simplification time (s) vs tolerance (cattle)",
            "delta", [round(d, 1) for d in deltas], time_series,
        )
    )


if __name__ == "__main__":
    main()
