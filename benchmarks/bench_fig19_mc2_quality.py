"""Figure 19 (Appendix B.1) — MC2 moving clusters cannot answer convoy queries.

For each dataset and θ ∈ {0.4, 0.6, 0.8, 1.0}, MC2's answer set Rm is
scored against the exact set Rc: false positives are MC2 answers that do
not satisfy the convoy definition (checked directly against the database
with m, k, e), false negatives are exact convoys no MC2 answer covers.
Expected shapes: both error rates are substantial everywhere and generally
grow with θ (tighter overlap fragments the chains), making moving-cluster
methods "ineffective and unreliable" for convoys.

The query uses a demanding lifetime (2x the scaled k, mirroring the
paper's k=180, which exceeded typical chain lengths): MC2 has no lifetime
constraint at all, which is one of the two semantic gaps being measured.
"""

import pytest

from benchmarks.common import DATASET_NAMES, dataset, print_report
from repro import cmc, normalize_convoys
from repro.baselines.moving_clusters import mc2_convoy_answers
from repro.bench import format_table
from repro.core.verification import false_negative_rate, false_positive_rate

THETAS = (0.4, 0.6, 0.8, 1.0)


def _demanding_k(spec):
    return 2 * spec.k


def _exact(spec):
    return normalize_convoys(
        cmc(spec.database, spec.m, _demanding_k(spec), spec.eps)
    )


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("theta", THETAS)
def test_fig19_mc2_quality(benchmark, name, theta):
    spec = dataset(name)
    exact = _exact(spec)

    def run():
        return mc2_convoy_answers(spec.database, spec.eps, spec.m, theta)

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "false_positive_pct": round(
                false_positive_rate(
                    answers, spec.database, spec.m, _demanding_k(spec), spec.eps
                ),
                1,
            ),
            "false_negative_pct": round(false_negative_rate(answers, exact), 1),
            "answers": len(answers),
            "exact": len(exact),
        }
    )


@pytest.mark.parametrize("name", ("truck", "car"))
def test_fig19_mc2_has_errors(name):
    """On convoy-rich data MC2 must exhibit nonzero error at some θ."""
    spec = dataset(name)
    exact = _exact(spec)
    worst = 0.0
    for theta in THETAS:
        answers = mc2_convoy_answers(spec.database, spec.eps, spec.m, theta)
        worst = max(
            worst,
            false_positive_rate(
                answers, spec.database, spec.m, _demanding_k(spec), spec.eps
            ),
            false_negative_rate(answers, exact),
        )
    assert worst > 0.0


def main():
    fp_rows = []
    fn_rows = []
    for theta in THETAS:
        fp_row = [theta]
        fn_row = [theta]
        for name in DATASET_NAMES:
            spec = dataset(name)
            exact = _exact(spec)
            answers = mc2_convoy_answers(spec.database, spec.eps, spec.m, theta)
            fp_row.append(
                round(
                    false_positive_rate(
                        answers, spec.database, spec.m, _demanding_k(spec),
                        spec.eps,
                    ),
                    1,
                )
            )
            fn_row.append(round(false_negative_rate(answers, exact), 1))
        fp_rows.append(fp_row)
        fn_rows.append(fn_row)
    headers = ["theta"] + list(DATASET_NAMES)
    print_report(
        format_table("Figure 19(a) — MC2 false positives (%)", headers, fp_rows)
    )
    print_report(
        format_table("Figure 19(b) — MC2 false negatives (%)", headers, fn_rows)
    )


if __name__ == "__main__":
    main()
