"""End-to-end incremental convoy tracking — snapshots/sec by churn.

PR 2 made the *clustering* layer incremental but still paid Algorithm 1's
other per-tick cost in full: ``CandidateTracker.advance()`` re-intersects
every live candidate against every cluster.  This bench charts what
propagating the clusterer's :class:`ClusterDelta` into the tracker
(``advance_delta`` splicing) buys end to end.  Three pipelines ingest
identical ``churn_stream`` snapshot sequences through a complete
:class:`~repro.streaming.StreamingConvoyMiner`:

* ``full``   — fresh DBSCAN per tick + classic candidate advance;
* ``pr2``    — incremental clustering, delta withheld (classic advance):
  exactly the PR 2 pipeline;
* ``delta``  — incremental clustering with the cluster diff propagated
  into the candidate tracker (this PR).

All three emit identical convoys at every tick — asserted here on every
run, and exhaustively in ``tests/streaming/test_delta_equivalence.py`` —
so the speedups carry no semantic caveats.  The headline regime is low
churn (<= 10% movers per tick), where the delta pipeline must clear
>= 1.5x over PR 2; the 50% row shows the fallback holding parity.

Run ``python benchmarks/bench_incremental_tracking.py`` for the table,
``--smoke`` for a seconds-long CI-sized run (equivalence and splice-path
assertions only), and ``--json PATH`` to also write the machine-readable
result record that CI uploads as a perf-trajectory artifact.
"""

import argparse
import time

import pytest

from benchmarks.common import print_report, write_bench_json
from repro.bench import format_table
from repro.clustering.incremental import IncrementalSnapshotClusterer
from repro.streaming import StreamingConvoyMiner, churn_stream

M, K, EPS = 3, 10, 10.0

#: churn levels swept by the CLI report; the acceptance regime is <= 10%.
CHURN_LEVELS = (0.01, 0.05, 0.10, 0.50)

#: Scales carry their own world side length (as a multiple of eps): the
#: point density must keep many independent mid-size clusters alive —
#: dense enough that clusters (hence live candidates) exist on most
#: ticks, sparse enough that one tick's movers do not touch every
#: cluster (a single giant blob leaves nothing to splice).
FULL_SCALE = dict(
    n_objects=800, n_snapshots=120, turnover=0.01, area=36.0 * EPS
)
SMOKE_SCALE = dict(
    n_objects=120, n_snapshots=25, turnover=0.01, area=12.0 * EPS
)

#: minimum delta-vs-pr2 speedup the full run must show at <= 10% churn.
SPEEDUP_BAR = 1.5


class ClusterOnly:
    """Hide ``cluster_with_delta``: PR 2's pipeline, byte for byte."""

    def __init__(self, inner):
        self.inner = inner

    def cluster(self, snapshot):
        return self.inner.cluster(snapshot)


def make_snapshots(churn, *, n_objects, n_snapshots, turnover, area,
                   seed=42):
    """Materialize one churn stream so every pipeline sees identical input."""
    return [
        snapshot
        for _t, snapshot in churn_stream(
            n_objects, n_snapshots, seed=seed, eps=EPS, churn=churn,
            turnover=turnover, area=area,
        )
    ]


def make_miner(pipeline):
    if pipeline == "full":
        return StreamingConvoyMiner(M, K, EPS)
    clusterer = IncrementalSnapshotClusterer(EPS, M)
    if pipeline == "pr2":
        clusterer = ClusterOnly(clusterer)
    return StreamingConvoyMiner(M, K, EPS, clusterer=clusterer)


def run_pipeline(pipeline, snapshots):
    """Feed one pipeline; return (per-tick emissions, counters, seconds)."""
    miner = make_miner(pipeline)
    emitted = []
    started = time.perf_counter()
    for t, snapshot in enumerate(snapshots):
        emitted.append(miner.feed(t, snapshot))
    emitted.append(miner.flush())
    return emitted, miner.counters, time.perf_counter() - started


def compare(churn, scale):
    """Run the three pipelines on one churn level; assert tick-for-tick
    convoy equality; return the result row."""
    snapshots = make_snapshots(churn, **scale)
    results = {p: run_pipeline(p, snapshots) for p in ("full", "pr2", "delta")}
    base_emitted = results["full"][0]
    for pipeline in ("pr2", "delta"):
        assert results[pipeline][0] == base_emitted, (
            f"{pipeline} pipeline diverged from the full pipeline at "
            f"churn={churn}"
        )
    n = len(snapshots)
    counters = results["delta"][1]
    candidate_steps = (
        counters["spliced_candidates"] + counters["reintersected_candidates"]
    )
    return {
        "churn": churn,
        "snapshots": n,
        "convoys": sum(len(batch) for batch in base_emitted),
        "full_rate": n / results["full"][2],
        "pr2_rate": n / results["pr2"][2],
        "delta_rate": n / results["delta"][2],
        "speedup_vs_pr2": results["pr2"][2] / results["delta"][2],
        "speedup_vs_full": results["full"][2] / results["delta"][2],
        "spliced_pct": 100.0 * counters["spliced_candidates"]
        / max(candidate_steps, 1),
        "spliced_candidates": counters["spliced_candidates"],
        "reintersected_candidates": counters["reintersected_candidates"],
    }


@pytest.mark.parametrize("churn", [0.05, 0.25])
def test_incremental_tracking_benchmark(benchmark, churn):
    snapshots = make_snapshots(churn, **SMOKE_SCALE)

    def run():
        return run_pipeline("delta", snapshots)

    _emitted, counters, seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["snapshots_per_sec"] = round(
        len(snapshots) / seconds, 1
    )
    benchmark.extra_info["spliced_candidates"] = counters[
        "spliced_candidates"
    ]


def test_low_churn_mostly_splices():
    """The cost model behind the speedup, asserted without wall clocks: at
    1% churn most candidate-steps are splices, and the pipelines agree."""
    row = compare(0.01, SMOKE_SCALE)
    assert row["spliced_candidates"] > row["reintersected_candidates"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny stream, two churn levels, equivalence and "
        "splice-path assertions only (timings are not meaningful)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(params, rates, speedups, git SHA)",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    levels = (0.05, 0.10) if args.smoke else CHURN_LEVELS
    rows = []
    table_rows = []
    for churn in levels:
        row = compare(churn, scale)
        rows.append(row)
        table_rows.append([
            f"{row['churn']:.0%}",
            row["snapshots"],
            row["convoys"],
            round(row["full_rate"], 1),
            round(row["pr2_rate"], 1),
            round(row["delta_rate"], 1),
            f"{row['speedup_vs_pr2']:.2f}x",
            f"{row['speedup_vs_full']:.2f}x",
            f"{row['spliced_pct']:.0f}%",
        ])
        if args.smoke and row["spliced_candidates"] == 0:
            raise SystemExit(
                f"smoke failure: splice path never engaged at churn "
                f"{churn:.0%}"
            )
    print_report(
        format_table(
            "End-to-end incremental convoy tracking — churn_stream "
            f"({scale['n_objects']} objects, m={M}, k={K}, e={EPS:g}; "
            "identical convoys asserted every tick)",
            ["churn", "snapshots", "convoys", "full snap/s", "pr2 snap/s",
             "delta snap/s", "vs pr2", "vs full", "spliced"],
            table_rows,
        )
    )
    if args.json:
        write_bench_json(
            args.json, "incremental_tracking",
            dict(m=M, k=K, eps=EPS, smoke=args.smoke, **scale),
            rows,
        )
        print(f"json results written to {args.json}")
    if args.smoke:
        print("smoke ok: all three pipelines agree on every tick, splice "
              "path exercised")
    else:
        best = max(
            row["speedup_vs_pr2"] for row in rows if row["churn"] <= 0.10
        )
        if best < SPEEDUP_BAR:
            raise SystemExit(
                f"acceptance failure: best delta-vs-pr2 speedup at <= 10% "
                f"churn is {best:.2f}x, below the {SPEEDUP_BAR}x bar"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
