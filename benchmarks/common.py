"""Shared infrastructure for the experiment benches.

Every bench file regenerates one table or figure of the paper's evaluation
(see DESIGN.md §3).  Each file works in two modes:

* ``pytest benchmarks/ --benchmark-only`` — pytest-benchmark timings, one
  benchmark per (dataset, algorithm/parameter) cell, with the experiment's
  headline numbers attached as ``extra_info``;
* ``python benchmarks/bench_<name>.py`` — prints the paper-style table so
  the rows can be compared against the publication (EXPERIMENTS.md records
  the outcome of these runs).

Datasets are generated once per process and cached; the bench scales are
chosen so the full suite completes in minutes on a laptop while keeping
every dataset's *shape* (see DESIGN.md §4 for the substitution argument).
"""

from __future__ import annotations

import json
import math
import os
import subprocess
from functools import lru_cache

from repro.datasets import DATASETS

#: Time-domain scale per dataset used across all benches.  Chosen so that
#: the slowest single algorithm run stays around a second.
BENCH_SCALES = {
    "truck": 0.05,
    "cattle": 0.005,
    "car": 0.05,
    "taxi": 0.3,
}

DATASET_NAMES = ("truck", "cattle", "car", "taxi")

VARIANTS = ("cuts", "cuts+", "cuts*")


@lru_cache(maxsize=None)
def dataset(name, scale=None):
    """Return the cached :class:`~repro.datasets.DatasetSpec` for a bench."""
    if scale is None:
        scale = BENCH_SCALES[name]
    return DATASETS[name](scale=scale)


def print_report(text):
    """Print one experiment report with a blank-line frame (tee-friendly)."""
    print()
    print(text)
    print()


def git_sha():
    """This repository's current commit hash, or ``"unknown"`` outside git.

    Resolved relative to this file, not the caller's working directory, so
    a bench invoked from inside another checkout still stamps its JSON
    with the right commit.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def safe_rate(count, seconds):
    """``count / seconds`` as a finite float, or ``None``.

    Tiny smoke runs can finish below the timer's resolution; dividing by
    a zero ``seconds`` would put ``inf`` into a report or JSON payload
    (``json.dump`` emits the non-standard ``Infinity`` token).  A rate
    that cannot be measured is reported as ``None`` (JSON ``null``).
    """
    if seconds > 0:
        rate = count / seconds
        if math.isfinite(rate):
            return rate
    return None


def _sanitize(value):
    """Replace non-finite floats with None, recursively, copying as we go."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def write_bench_json(path, bench, params, rows):
    """Write one bench run as machine-readable JSON for the perf trajectory.

    Every bench that accepts ``--json PATH`` funnels through this writer so
    the artifacts CI uploads share one schema:

    ``{"bench": ..., "git_sha": ..., "params": {...}, "rows": [{...}]}``

    Args:
        path: output file path.
        bench: the bench's name (e.g. ``"incremental_tracking"``).
        params: dict of the run's fixed parameters (query parameters,
            stream scale, smoke flag, ...).
        rows: list of dicts, one per measured configuration, carrying the
            bench's headline numbers (rates, speedups, counters).

    Non-finite floats anywhere in ``params`` or ``rows`` are replaced by
    ``None``: ``json.dump`` would otherwise emit non-standard tokens
    (``Infinity``/``NaN``) that strict JSON consumers reject.
    """
    payload = {
        "bench": bench,
        "git_sha": git_sha(),
        "params": _sanitize(dict(params)),
        "rows": [_sanitize(dict(row)) for row in rows],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
