"""Figure 13 — cost breakdown of the CuTS family (Cattle and Taxi).

The paper magnifies the two most distinctive datasets: on Cattle (13
objects, enormous histories) simplification dominates the total time; on
Taxi (500 objects, short domain) the filter's clustering dominates and
refinement is small.  The bench records the three phase durations for
every family member on both datasets.
"""

import pytest

from benchmarks.common import VARIANTS, dataset, print_report
from repro import cuts
from repro.bench import format_table

FIG13_DATASETS = ("cattle", "taxi")


@pytest.mark.parametrize("name", FIG13_DATASETS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_fig13_phase_breakdown(benchmark, name, variant):
    spec = dataset(name)

    def run():
        return cuts(spec.database, spec.m, spec.k, spec.eps, variant=variant)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    total = max(result.total_time, 1e-9)
    benchmark.extra_info.update(
        {
            "simplification_s": round(result.durations["simplification"], 4),
            "filter_s": round(result.durations["filter"], 4),
            "refinement_s": round(result.durations["refinement"], 4),
            "simplification_pct": round(
                100 * result.durations["simplification"] / total, 1
            ),
        }
    )


def _dominant_phase(result):
    return max(result.durations, key=result.durations.get)


@pytest.mark.parametrize("variant", ("cuts", "cuts+"))
def test_fig13_cattle_simplification_heavy(variant):
    """The Cattle shape: simplification is a larger share of the total
    than it is on Taxi (the paper's 'invest in simplification' point).
    Asserted for the DP/DP+ variants; DP*'s cheap deviation arithmetic
    makes its share scale-sensitive at bench sizes (EXPERIMENTS.md)."""
    cattle = cuts(
        dataset("cattle").database,
        dataset("cattle").m,
        dataset("cattle").k,
        dataset("cattle").eps,
        variant=variant,
    )
    taxi = cuts(
        dataset("taxi").database,
        dataset("taxi").m,
        dataset("taxi").k,
        dataset("taxi").eps,
        variant=variant,
    )
    cattle_share = cattle.durations["simplification"] / max(cattle.total_time, 1e-9)
    taxi_share = taxi.durations["simplification"] / max(taxi.total_time, 1e-9)
    assert cattle_share > taxi_share


def main():
    rows = []
    for name in FIG13_DATASETS:
        spec = dataset(name)
        for variant in VARIANTS:
            result = cuts(
                spec.database, spec.m, spec.k, spec.eps, variant=variant
            )
            d = result.durations
            total = max(result.total_time, 1e-9)
            rows.append(
                [
                    name,
                    variant,
                    round(d["simplification"], 3),
                    round(d["filter"], 3),
                    round(d["refinement"], 3),
                    round(100 * d["simplification"] / total, 1),
                    round(100 * d["filter"] / total, 1),
                    round(100 * d["refinement"] / total, 1),
                ]
            )
    print_report(
        format_table(
            "Figure 13 — analysis of query processing cost (seconds and %)",
            ["dataset", "method", "simplify s", "filter s", "refine s",
             "simplify %", "filter %", "refine %"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
