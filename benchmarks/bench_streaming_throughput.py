"""Streaming engine throughput — snapshots/sec and candidate memory.

Not a paper figure: the paper only evaluates offline discovery.  This
bench characterizes the online restructuring of Algorithm 1 (the ROADMAP's
"serve heavy traffic" direction): feed a seeded synthetic stream through
:class:`~repro.streaming.StreamingConvoyMiner` one snapshot at a time and
report ingest rate, per-point rate, and the peak live-candidate count —
the engine's memory driver.  The CLI run uses >= 100k points; the bounded
``--window`` row shows the memory/fragmentation trade the window buys.
"""

import time

import pytest

from benchmarks.common import print_report
from repro.bench import format_table
from repro.streaming import StreamingConvoyMiner, synthetic_stream

#: (label, n_objects, n_snapshots, window) rows for the CLI report.  Every
#: row streams n_objects * n_snapshots points; the headline row is >= 100k.
SCALE_ROWS = (
    ("10k", 100, 100, None),
    ("100k", 500, 200, None),
    ("100k/win", 500, 200, 40),
)

M, K, EPS = 3, 20, 10.0


def run_stream(n_objects, n_snapshots, window=None, seed=42):
    """Feed one synthetic stream; return (convoys, counters, seconds)."""
    miner = StreamingConvoyMiner(M, K, EPS, window=window)
    convoys = []
    started = time.perf_counter()
    for t, snapshot in synthetic_stream(
        n_objects, n_snapshots, seed=seed, eps=EPS
    ):
        convoys.extend(miner.feed(t, snapshot))
    convoys.extend(miner.flush())
    return convoys, miner.counters, time.perf_counter() - started


@pytest.mark.parametrize("n_objects,n_snapshots", [(100, 100), (500, 200)])
def test_streaming_throughput(benchmark, n_objects, n_snapshots):
    def run():
        return run_stream(n_objects, n_snapshots)

    convoys, counters, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["snapshots_per_sec"] = round(
        counters["snapshots"] / seconds, 1
    )
    benchmark.extra_info["peak_candidates"] = counters["peak_candidates"]
    benchmark.extra_info["convoys"] = len(convoys)


def test_one_clustering_call_per_snapshot():
    """The engine never recomputes: one DBSCAN pass per fed snapshot."""
    _, counters, _ = run_stream(60, 50)
    assert counters["snapshots"] == 50
    assert counters["clustering_calls"] == 50


def main():
    rows = []
    for label, n_objects, n_snapshots, window in SCALE_ROWS:
        convoys, counters, seconds = run_stream(n_objects, n_snapshots, window)
        points = counters["clustered_points"]
        rows.append([
            label,
            n_objects,
            n_snapshots,
            points,
            window if window is not None else "-",
            round(seconds, 2),
            round(counters["snapshots"] / seconds, 1),
            round(points / seconds / 1000.0, 1),
            counters["peak_candidates"],
            len(convoys),
        ])
    print_report(
        format_table(
            "Streaming throughput — StreamingConvoyMiner over synthetic "
            f"streams (m={M}, k={K}, e={EPS:g})",
            ["stream", "objects", "snapshots", "points", "window", "sec",
             "snap/s", "kpts/s", "peak cand", "convoys"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
