"""Ablation — value of the Lemma 2 box-level pruning in the filter.

The filter settles polyline pairs in two steps: a plane-sweep over
tolerance-expanded bounding boxes (the Lemma 2 group/box bound) followed
by the exact ω test (Lemma 1 / Lemma 3).  Disabling the sweep tests every
time-coexisting pair exactly.  The answer is identical either way; the
bench quantifies how many exact tests the box level saves and what that
does to the filter's wall-clock time.
"""

import pytest

from benchmarks.common import DATASET_NAMES, dataset, print_report
from repro import convoy_sets_equal, cuts
from repro.bench import format_table


def _run(spec, use_lemma2):
    return cuts(
        spec.database, spec.m, spec.k, spec.eps,
        variant="cuts*", use_lemma2=use_lemma2,
    )


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("mode", ("sweep", "all-pairs"))
def test_ablation_lemma2(benchmark, name, mode):
    spec = dataset(name)

    def run():
        return _run(spec, use_lemma2=(mode == "sweep"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pairs_considered"] = result.filter_stats.get(
        "pairs_considered", 0
    )


@pytest.mark.parametrize("name", ("truck", "car"))
def test_ablation_lemma2_prunes_pairs(name):
    spec = dataset(name)
    with_boxes = _run(spec, True)
    without = _run(spec, False)
    assert convoy_sets_equal(with_boxes.convoys, without.convoys)
    assert (
        with_boxes.filter_stats["pairs_considered"]
        < without.filter_stats["pairs_considered"]
    )


def main():
    rows = []
    for name in DATASET_NAMES:
        spec = dataset(name)
        with_boxes = _run(spec, True)
        without = _run(spec, False)
        considered_on = with_boxes.filter_stats.get("pairs_considered", 0)
        considered_off = without.filter_stats.get("pairs_considered", 0)
        rows.append(
            [
                name,
                considered_off,
                considered_on,
                round(100.0 * (1 - considered_on / considered_off), 1)
                if considered_off
                else 0.0,
                round(without.durations["filter"], 3),
                round(with_boxes.durations["filter"], 3),
            ]
        )
    print_report(
        format_table(
            "Ablation — Lemma 2 box pruning in the CuTS* filter",
            ["dataset", "pairs (off)", "pairs (on)", "pruned %",
             "filter s (off)", "filter s (on)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
