"""Convoy store — write-through overhead and indexed-vs-scan speedup.

The persistent store may exist only if it is (a) nearly free to keep in
the mining loop and (b) actually faster to *ask* than the list it
replaced.  This bench gates both:

* **Write pass** — a planted-groups stream (jittered, so convoys sever
  and close mid-stream, not just at flush) is mined plain and with
  ``store=``.  Emissions are asserted identical.  The store run's sink
  calls (``observe``/``write``/``commit`` — position log, bbox replay,
  per-tick transaction) are timed *in-run*, and the overhead is their
  share of the same run's mining time: ``sink / (total - sink)``, best
  of reps, asserted under ``OVERHEAD_BAR`` (<15%).  Same-run accounting
  is used because both terms come from one process run, so host-speed
  drift between runs cancels out — a cross-run wall-clock diff on a
  noisy CI box swings wider than the bar itself.  The plain run's
  wall clock is still recorded alongside for the trajectory.
* **Query pass** — a synthetic population (10^4 smoke / 10^5 full
  convoys, bulk-inserted in batches) answers a fixed set of narrow
  ``alive_in`` windows twice: through the interval index
  (bounded-extent narrowing) and with ``force_scan=True`` (``NOT
  INDEXED`` + external sort — the same SQL predicate, the pre-store
  answer's honest stand-in).  Both plans' results are asserted equal
  row for row, and the indexed plan must be at least ``SPEEDUP_BAR``
  (10x) faster.  ``top_k(k=10)`` is timed on the same population for
  the trajectory (lazy heap merge; recorded, not gated).

Run ``python benchmarks/bench_convoy_store.py`` for the table,
``--smoke`` for a seconds-long CI-sized run (both bars still asserted),
and ``--json PATH`` for the machine-readable record CI uploads as a
perf-trajectory artifact (``BENCH_convoy_store.json``).
"""

import argparse
import random
import tempfile
import time
from pathlib import Path

from benchmarks.common import print_report, safe_rate, write_bench_json
from repro.bench import format_table
from repro.core.convoy import Convoy
from repro.geometry.bbox import BoundingBox
from repro.store import SQLiteConvoyStore, convoy_identity
from repro.streaming import StreamingConvoyMiner, synthetic_stream

M, K, EPS = 5, 8, 8.0

#: Write-through sink share of the mining run that fails the bench.
OVERHEAD_BAR = 0.15
#: Minimum indexed-vs-forced-scan speedup on the alive_in window set.
SPEEDUP_BAR = 10.0

WRITE_FULL_SCALE = dict(n_objects=250, n_snapshots=80, group_count=16,
                        group_size=7, jitter=0.5, reps=3)
WRITE_SMOKE_SCALE = dict(n_objects=200, n_snapshots=60, group_count=12,
                         group_size=7, jitter=0.3, reps=3)

#: Query-pass population: convoy count, time-domain length (kept
#: proportional so the alive fraction per window — and thus the
#: speedup — is scale-stable), max lifetime, windows asked, window
#: width, and timing repetitions.
QUERY_FULL_SCALE = dict(population=100_000, domain=400_000, max_life=30,
                        windows=40, width=4, reps=3)
QUERY_SMOKE_SCALE = dict(population=10_000, domain=40_000, max_life=30,
                         windows=40, width=4, reps=3)

#: Bulk-insert transaction size for the query-pass population.
INSERT_CHUNK = 5_000

ROW_KEYS = (
    "pass", "mode", "snapshots", "convoys", "stored", "population",
    "windows", "seconds", "sink_seconds", "rate", "write_overhead",
    "speedup_vs_scan",
)


def _row(**fields):
    row = dict.fromkeys(ROW_KEYS)
    row.update(fields)
    return row


def _instrument_sink(miner):
    """Shadow the sink's entry points with timing wrappers; returns the
    accumulator (one-element list, read after the run)."""
    sink = miner.pipeline.emit.sink
    spent = [0.0]

    def timed(method):
        def inner(*args, **kwargs):
            started = time.perf_counter()
            try:
                return method(*args, **kwargs)
            finally:
                spent[0] += time.perf_counter() - started
        return inner

    for name in ("observe", "write", "commit", "close"):
        setattr(sink, name, timed(getattr(sink, name)))
    return spent


def _mine(ticks, store_path=None):
    """One full mining run; returns (emissions, counters, total seconds,
    seconds spent inside the store sink)."""
    counters = {}
    miner = StreamingConvoyMiner(M, K, EPS, counters=counters,
                                 store=store_path)
    sink_spent = _instrument_sink(miner) if store_path else [0.0]
    emitted = []
    started = time.perf_counter()
    with miner:
        for t, snapshot in ticks:
            emitted.extend(miner.feed(t, snapshot))
        emitted.extend(miner.flush())
    total = time.perf_counter() - started
    return emitted, counters, total, sink_spent[0]


def run_write(scale, tmp_dir):
    """Mine the same stream plain and with write-through; the asserted
    overhead is the sink's in-run share of the mining time."""
    params = {k: v for k, v in scale.items() if k != "reps"}
    ticks = list(synthetic_stream(seed=83, eps=EPS, **params))
    plain_best = store_best = overhead_best = None
    baseline = None
    stored_total = sink_best = None
    for rep in range(scale["reps"]):
        emitted, _counters, seconds, _ = _mine(ticks)
        if baseline is None:
            baseline = emitted
            assert baseline, "vacuous write workload: nothing was mined"
        plain_best = seconds if plain_best is None else min(plain_best,
                                                           seconds)
        db = Path(tmp_dir) / f"write_rep{rep}.db"
        emitted, counters, seconds, sink_seconds = _mine(
            ticks, store_path=str(db)
        )
        assert emitted == baseline, (
            "write-through changed the mined answer"
        )
        overhead = sink_seconds / (seconds - sink_seconds)
        if overhead_best is None or overhead < overhead_best:
            overhead_best = overhead
            sink_best = sink_seconds
        store_best = seconds if store_best is None else min(store_best,
                                                            seconds)
        stored_total = counters["stored_convoys"]
        with SQLiteConvoyStore(db) as check:
            assert check.count() == stored_total
    snapshots = len(ticks)
    rows = [
        _row(**{"pass": "write"}, mode="plain", snapshots=snapshots,
             convoys=len(baseline), stored=0, seconds=plain_best,
             rate=safe_rate(snapshots, plain_best)),
        _row(**{"pass": "write"}, mode="store", snapshots=snapshots,
             convoys=len(baseline), stored=stored_total,
             seconds=store_best, sink_seconds=sink_best,
             rate=safe_rate(snapshots, store_best),
             write_overhead=overhead_best),
    ]
    return rows, overhead_best


def make_query_population(scale, seed=31):
    """Seeded random convoys with distinct identities and bboxes."""
    rng = random.Random(seed)
    convoys, bboxes, seen = [], [], set()
    while len(convoys) < scale["population"]:
        t_start = rng.randrange(scale["domain"])
        t_end = t_start + rng.randrange(scale["max_life"])
        ids = rng.sample(range(10 * scale["max_life"]), rng.randrange(3, 8))
        convoy = Convoy(ids, t_start, t_end)
        identity = convoy_identity(convoy)
        if identity in seen:
            continue
        seen.add(identity)
        convoys.append(convoy)
        x, y = rng.uniform(0, 1000.0), rng.uniform(0, 1000.0)
        bboxes.append(BoundingBox(x, y, x + rng.uniform(1.0, 50.0),
                                  y + rng.uniform(1.0, 50.0)))
    return convoys, bboxes


def query_windows(scale):
    """Evenly spaced narrow windows spanning the whole time domain."""
    step = max(1, (scale["domain"] - scale["width"]) // scale["windows"])
    return [(t1, t1 + scale["width"])
            for t1 in range(0, scale["domain"] - scale["width"], step)
            ][:scale["windows"]]


def run_query(scale, tmp_dir):
    """Time the window set through the index and through a forced scan
    over the same SQL predicate; results asserted equal row for row."""
    convoys, bboxes = make_query_population(scale)
    db = Path(tmp_dir) / "population.db"
    with SQLiteConvoyStore(db) as store:
        for lo in range(0, len(convoys), INSERT_CHUNK):
            hi = lo + INSERT_CHUNK
            store.add_batch(convoys[lo:hi], bboxes[lo:hi])
        assert store.count() == len(convoys)
        windows = query_windows(scale)
        indexed_best = scan_best = top_k_best = None
        for _rep in range(scale["reps"]):
            started = time.perf_counter()
            indexed = [store.alive_in(t1, t2) for t1, t2 in windows]
            seconds = time.perf_counter() - started
            indexed_best = (seconds if indexed_best is None
                            else min(indexed_best, seconds))
            started = time.perf_counter()
            scanned = [store.alive_in(t1, t2, force_scan=True)
                       for t1, t2 in windows]
            seconds = time.perf_counter() - started
            scan_best = (seconds if scan_best is None
                         else min(scan_best, seconds))
            assert indexed == scanned, (
                "indexed plan diverged from the full scan"
            )
            started = time.perf_counter()
            for by in ("size", "duration"):
                top = list(store.top_k(by=by, k=10))
                assert len(top) == 10
            seconds = time.perf_counter() - started
            top_k_best = (seconds if top_k_best is None
                          else min(top_k_best, seconds))
    hits = sum(len(result) for result in indexed)
    speedup = scan_best / indexed_best if indexed_best > 0 else None
    n_windows = len(windows)
    rows = [
        _row(**{"pass": "query"}, mode="indexed", population=len(convoys),
             windows=n_windows, convoys=hits, seconds=indexed_best,
             rate=safe_rate(n_windows, indexed_best),
             speedup_vs_scan=speedup),
        _row(**{"pass": "query"}, mode="scan", population=len(convoys),
             windows=n_windows, convoys=hits, seconds=scan_best,
             rate=safe_rate(n_windows, scan_best)),
        _row(**{"pass": "query"}, mode="top_k", population=len(convoys),
             windows=2, convoys=20, seconds=top_k_best,
             rate=safe_rate(2, top_k_best)),
    ]
    return rows, speedup


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: short stream and a 10^4-convoy population; "
        "the overhead and speedup bars are still asserted",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(seconds, rates, overhead, speedup, git SHA)",
    )
    args = parser.parse_args(argv)
    write_scale = WRITE_SMOKE_SCALE if args.smoke else WRITE_FULL_SCALE
    query_scale = QUERY_SMOKE_SCALE if args.smoke else QUERY_FULL_SCALE
    with tempfile.TemporaryDirectory(prefix="bench_convoy_store_") as tmp:
        write_rows, overhead = run_write(write_scale, tmp)
        query_rows, speedup = run_query(query_scale, tmp)
    print_report(
        format_table(
            "Write-through overhead — planted-groups stream "
            f"({write_scale['n_objects']} objects x "
            f"{write_scale['n_snapshots']} ticks, jitter "
            f"{write_scale['jitter']:g}, m={M}, k={K}, e={EPS:g}, best "
            f"of {write_scale['reps']}; identical emissions asserted)",
            ["mode", "snap/s", "seconds", "sink s", "convoys",
             "overhead"],
            [[
                row["mode"],
                round(row["rate"], 1) if row["rate"] else "-",
                round(row["seconds"], 4),
                (round(row["sink_seconds"], 4)
                 if row["sink_seconds"] is not None else "-"),
                row["convoys"],
                (f"{row['write_overhead'] * 100:.1f}%"
                 if row["write_overhead"] is not None else "-"),
            ] for row in write_rows],
        )
    )
    print_report(
        format_table(
            "Indexed time-window queries — "
            f"{query_scale['population']:,} convoys over a "
            f"{query_scale['domain']:,}-tick domain, "
            f"{query_scale['windows']} windows of width "
            f"{query_scale['width']} (best of {query_scale['reps']}; "
            "identical answers asserted)",
            ["plan", "queries/s", "seconds", "rows out", "vs scan"],
            [[
                row["mode"],
                round(row["rate"], 1) if row["rate"] else "-",
                round(row["seconds"], 5),
                row["convoys"],
                (f"{row['speedup_vs_scan']:.1f}x"
                 if row["speedup_vs_scan"] else "-"),
            ] for row in query_rows],
        )
    )
    if args.json:
        write_bench_json(
            args.json, "convoy_store",
            dict(m=M, k=K, eps=EPS, smoke=args.smoke,
                 overhead_bar=OVERHEAD_BAR, speedup_bar=SPEEDUP_BAR,
                 write_scale=write_scale, query_scale=query_scale),
            write_rows + query_rows,
        )
        print(f"json results written to {args.json}")
    if overhead >= OVERHEAD_BAR:
        raise SystemExit(
            f"acceptance failure: the write-through sink took "
            f"{overhead * 100:.1f}% of the mining run, not under the "
            f"{OVERHEAD_BAR * 100:.0f}% bar"
        )
    if speedup is None or speedup < SPEEDUP_BAR:
        shown = "unmeasurable" if speedup is None else f"{speedup:.1f}x"
        raise SystemExit(
            f"acceptance failure: indexed alive_in is only {shown} "
            f"faster than the forced full scan, below the "
            f"{SPEEDUP_BAR:.0f}x bar"
        )
    print(
        f"acceptance: write-through overhead {overhead * 100:.1f}% "
        f"(< {OVERHEAD_BAR * 100:.0f}%), indexed speedup "
        f"{speedup:.1f}x (>= {SPEEDUP_BAR:.0f}x)"
    )


if __name__ == "__main__":
    main()
