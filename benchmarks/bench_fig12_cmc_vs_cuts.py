"""Figure 12 — total convoy-discovery time: CMC vs the CuTS family.

The paper's headline performance figure: over four datasets, the CuTS
family beat CMC by 3.9x to 33.1x (C++ on 2008 hardware), with CuTS*
generally fastest.  The reproduction reports the same grid.  Expected
shape notes (EXPERIMENTS.md): the *within-family* ordering (CuTS* fastest,
tightest filter) reproduces; the CMC-to-family gap is compressed because
this substrate's CMC is a tight in-memory loop with a grid index, whereas
the paper's CMC paid heavy virtual-point materialization costs.
All methods must return identical answers — the equality is asserted here
on every run.
"""

import pytest

from benchmarks.common import DATASET_NAMES, VARIANTS, dataset, print_report
from repro import cmc, convoy_sets_equal, cuts, normalize_convoys
from repro.bench import format_table, time_call

ALGORITHMS = ("cmc",) + VARIANTS


def run_algorithm(spec, algorithm):
    if algorithm == "cmc":
        return cmc(spec.database, spec.m, spec.k, spec.eps)
    return cuts(
        spec.database, spec.m, spec.k, spec.eps, variant=algorithm
    ).convoys


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig12_discovery_time(benchmark, name, algorithm):
    spec = dataset(name)

    def run():
        return run_algorithm(spec, algorithm)

    convoys = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["convoys"] = len(normalize_convoys(convoys))


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_fig12_answers_agree(name):
    spec = dataset(name)
    exact = normalize_convoys(run_algorithm(spec, "cmc"))
    for variant in VARIANTS:
        assert convoy_sets_equal(exact, run_algorithm(spec, variant)), variant


def main():
    rows = []
    for name in DATASET_NAMES:
        spec = dataset(name)
        timings = {}
        exact = None
        for algorithm in ALGORITHMS:
            convoys, seconds = time_call(run_algorithm, spec, algorithm)
            timings[algorithm] = seconds
            if algorithm == "cmc":
                exact = normalize_convoys(convoys)
            else:
                assert convoy_sets_equal(exact, convoys), (name, algorithm)
        row = [name, len(exact)]
        for algorithm in ALGORITHMS:
            row.append(round(timings[algorithm], 3))
        for variant in VARIANTS:
            row.append(round(timings["cmc"] / timings[variant], 2))
        rows.append(row)
    print_report(
        format_table(
            "Figure 12 — query processing time (seconds; speedup = CMC/variant)",
            ["dataset", "convoys", "cmc", "cuts", "cuts+", "cuts*",
             "x cuts", "x cuts+", "x cuts*"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
