"""Figure 17 — effect of the time-partition length λ (Truck and Cattle).

Sweeping λ exposes the filter's central trade-off: small λ means many
clustering passes (expensive filter), large λ means long partition
polylines whose mutual distances shrink (weak filter, refinement unit up).
Expected shapes: CuTS* dominates on Truck at every λ; the refinement unit
rises with λ; on Cattle the cheap-simplification variants (DP+) stay
competitive because simplification, not filtering, rules the total.
"""

import pytest

from benchmarks.common import VARIANTS, dataset, print_report
from repro import cuts
from repro.bench import format_series

FIG17_DATASETS = ("truck", "cattle")
LAMBDAS = (2, 4, 8, 16, 32)


def _run(spec, variant, lam):
    return cuts(
        spec.database, spec.m, spec.k, spec.eps, lam=lam, variant=variant
    )


@pytest.mark.parametrize("name", FIG17_DATASETS)
@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("lam", LAMBDAS)
def test_fig17_lambda_sweep(benchmark, name, variant, lam):
    spec = dataset(name)

    def run():
        return _run(spec, variant, lam)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "refinement_unit": result.refinement_unit,
            "candidates": len(result.candidates),
        }
    )


@pytest.mark.parametrize("variant", VARIANTS)
def test_fig17_filter_degrades_with_lambda_on_truck(variant):
    """On Truck, longer partitions weaken the filter (refinement unit up)
    — the paper's "both the effectiveness of the filters and the
    efficiency of the discovery process decrease when λ > 10"."""
    spec = dataset("truck")
    low = _run(spec, variant, LAMBDAS[0]).refinement_unit
    high = _run(spec, variant, LAMBDAS[-1]).refinement_unit
    assert high >= low


@pytest.mark.parametrize("variant", VARIANTS)
def test_fig17_small_lambda_expensive_filter_on_cattle(variant):
    """On Cattle the paper observes the opposite pressure: "the discovery
    efficiency of the CuTS family declines ... when λ < 30" because tiny
    partitions mean many clustering passes over very long histories."""
    spec = dataset("cattle")
    fine = _run(spec, variant, LAMBDAS[0]).durations["filter"]
    coarse = _run(spec, variant, LAMBDAS[-1]).durations["filter"]
    assert fine >= coarse * 0.9


@pytest.mark.parametrize("name", FIG17_DATASETS)
@pytest.mark.parametrize("lam", (2, 16))
def test_fig17_answers_stable_across_lambda(name, lam):
    """λ affects cost only, never the answer (Section 5.3)."""
    from repro import convoy_sets_equal

    spec = dataset(name)
    reference = _run(spec, "cuts*", 4)
    other = _run(spec, "cuts*", lam)
    assert convoy_sets_equal(reference.convoys, other.convoys)


def main():
    for name in FIG17_DATASETS:
        spec = dataset(name)
        unit_series = {}
        time_series = {}
        for variant in VARIANTS:
            units = []
            times = []
            for lam in LAMBDAS:
                result = _run(spec, variant, lam)
                units.append(round(result.refinement_unit / 1e3, 1))
                times.append(round(result.total_time, 3))
            unit_series[variant] = units
            time_series[variant] = times
        print_report(
            format_series(
                f"Figure 17 — refinement unit (x1e3) vs lambda ({name})",
                "lambda", list(LAMBDAS), unit_series,
            )
        )
        print_report(
            format_series(
                f"Figure 17 — elapsed time (s) vs lambda ({name})",
                "lambda", list(LAMBDAS), time_series,
            )
        )


if __name__ == "__main__":
    main()
