"""Sharded candidate tracking — scaling curve at 1/2/4 shards by executor.

The staged pipeline makes the candidate tracker swappable, and the
sharding layer fans its per-tick matching work across executor backends;
this bench answers the questions that decide whether that layer may
exist at all:

* **Zero-overhead refactor** — the sharded tracker on the *serial*
  executor must hold within 10% of the unsharded engine (``SERIAL_BAR``),
  at 1 shard (pure layer cost) and as shards grow (routing cost).
* **Real scaling** — the *process* executor must show a measurable
  multi-core speedup on a tracker-bound workload (``PROCESS_BAR``,
  asserted only when the machine actually has >1 core; single-core
  hosts still record the rows so the JSON trajectory shows the
  overhead honestly).
* **Resident payload win** — the resident transports hold shard state
  inside long-lived workers, so only per-tick deltas cross the process
  boundary.  The byte pass below runs a delta-friendly *group-swap*
  workload through the stateless and resident sharded trackers with
  pickle-level byte accounting and asserts the resident payload per
  tick is at least ``BYTES_BAR`` times smaller (the stateless path
  re-ships every scanned candidate's object set and the tick's cluster
  sets every tick; resident mode ships cluster ids, dirty members, and
  splice/seed deltas).  The payload ratio is transport-independent, so
  the pass runs on the serial executor and holds for process workers
  byte for byte.

The timing workload is deliberately tracker-bound: a
``synthetic_stream`` with many planted co-travelling groups is
clustered **once** up front, and a replaying clusterer feeds the
precomputed per-tick cluster lists to every engine, so the measured
per-tick cost is almost entirely the candidate step (hundreds of
clusters joined against >1000 live candidates).  ``--hotspots H`` swaps
in a ``churn_stream(hotspots=H)`` workload instead — movement confined
to H seeded spatial hotspots — to chart the unbalanced-shard regime
(``max_shard_batch`` exposes the skew).  ``--resident`` extends the
timing grid with resident-transport cells (wall-clock is reported for
the trajectory but not gated — the resident win is bytes, asserted
above, not single-host speed).

Every configuration's per-tick emissions are asserted equal to the
unsharded engine's on every run — the scaling numbers carry no semantic
caveats (the exhaustive proof is ``tests/streaming/
test_sharded_equivalence.py``).

Run ``python benchmarks/bench_sharded_scaling.py`` for the table,
``--smoke`` for a seconds-long CI-sized run (equivalence and byte
assertions only), and ``--json PATH`` for the machine-readable record
CI uploads as a perf-trajectory artifact
(``BENCH_sharded_scaling.json``).
"""

import argparse
import os
import random
import time

from benchmarks.common import print_report, write_bench_json
from repro.bench import format_table
from repro.clustering.dbscan import dbscan
from repro.clustering.incremental import (
    APPEARED,
    CHANGED,
    UNCHANGED,
    ClusterDelta,
)
from repro.streaming import StreamingConvoyMiner, churn_stream, synthetic_stream

M, K, EPS = 3, 8, 10.0

#: (shards, executor, resident) cells of the scaling curve, in report
#: order (legacy 2-tuples are accepted and mean resident=False).
FULL_GRID = (
    (1, "serial", False),
    (2, "serial", False),
    (4, "serial", False),
    (2, "thread", False),
    (4, "thread", False),
    (1, "process", False),
    (2, "process", False),
    (4, "process", False),
)
SMOKE_GRID = (
    (1, "serial", False),
    (2, "serial", False),
    (2, "thread", False),
    (2, "process", False),
)

#: Extra cells appended by ``--resident`` (wall-clock recorded, not
#: gated; tick-equivalence asserted like every other cell).
RESIDENT_FULL_GRID = (
    (2, "serial", True),
    (4, "serial", True),
    (2, "process", True),
    (4, "process", True),
)
RESIDENT_SMOKE_GRID = (
    (2, "serial", True),
    (2, "thread", True),
    (2, "process", True),
)

FULL_SCALE = dict(n_objects=1600, n_snapshots=60, group_count=200,
                  group_size=8)
SMOKE_SCALE = dict(n_objects=240, n_snapshots=15, group_count=40,
                   group_size=6)

#: Group-swap delta workload scales for the byte pass: ``dirty_groups``
#: swap pairs mutate per tick, every other cluster arrives UNCHANGED,
#: so the resident payload tracks the dirty slice while the stateless
#: payload re-ships scanned state every tick.
BYTES_FULL_SCALE = dict(n_groups=240, group_size=16, n_snapshots=80,
                        dirty_groups=4)
BYTES_SMOKE_SCALE = dict(n_groups=120, group_size=16, n_snapshots=50,
                         dirty_groups=2)

#: serial-executor rate must stay within this fraction of unsharded.
SERIAL_BAR = 0.90
#: best process-executor speedup must clear this (multi-core hosts only).
PROCESS_BAR = 1.10
#: resident payload bytes/tick must be at least this many times smaller
#: than the stateless sharded payload on the group-swap workload.
BYTES_BAR = 5.0


class ReplayClusterer:
    """Feed precomputed per-tick cluster lists: clustering cost ~ zero,
    so the engine's measured per-tick cost is the candidate tracker."""

    def __init__(self, per_tick):
        self._ticks = iter(per_tick)

    def cluster(self, snapshot):
        return next(self._ticks)


class ReplayDeltaClusterer:
    """Feed precomputed ``(clusters, delta)`` pairs, driving the
    tracker's diff-aware ``advance_delta`` path every tick."""

    def __init__(self, per_tick):
        self._ticks = iter(per_tick)

    def cluster_with_delta(self, snapshot):
        return next(self._ticks)

    def cluster(self, snapshot):
        return self.cluster_with_delta(snapshot)[0]


def make_workload(scale, hotspots=None, seed=42):
    """Materialize snapshots and their per-tick clusterings once."""
    if hotspots is None:
        ticks = synthetic_stream(
            scale["n_objects"], scale["n_snapshots"], seed=seed, eps=EPS,
            group_count=scale["group_count"],
            group_size=scale["group_size"],
            area=60.0 * EPS,
        )
    else:
        ticks = churn_stream(
            scale["n_objects"], scale["n_snapshots"], seed=seed, eps=EPS,
            churn=0.2, area=36.0 * EPS, hotspots=hotspots,
        )
    snapshots = [snapshot for _t, snapshot in ticks]
    clusters = [dbscan(snapshot, EPS, M) for snapshot in snapshots]
    return snapshots, clusters


def make_delta_workload(n_groups, group_size, n_snapshots, dirty_groups,
                        seed=42):
    """Synthesize the group-swap delta stream for the byte pass.

    ``n_groups`` stable clusters with stable ids; every tick after the
    first, ``dirty_groups`` disjoint *pairs* of groups swap one member
    each (marked CHANGED), every other cluster arrives UNCHANGED.  The
    geometry never matters — the delta clusterer replays these lists —
    so the snapshot is one constant position dict.

    Returns ``(snapshots, per_tick)`` where ``per_tick`` holds the
    ``(clusters, delta)`` pairs for a :class:`ReplayDeltaClusterer`.
    """
    rng = random.Random(seed)
    groups = [
        {f"o{g * group_size + j}" for j in range(group_size)}
        for g in range(n_groups)
    ]
    snapshot = {f"o{i}": (0.0, 0.0) for i in range(n_groups * group_size)}
    per_tick = []
    for tick in range(n_snapshots):
        if tick == 0:
            status = [APPEARED] * n_groups
        else:
            status = [UNCHANGED] * n_groups
            mutated = rng.sample(range(n_groups), 2 * dirty_groups)
            for a, b in zip(mutated[::2], mutated[1::2]):
                x = rng.choice(sorted(groups[a]))
                y = rng.choice(sorted(groups[b]))
                groups[a].discard(x)
                groups[a].add(y)
                groups[b].discard(y)
                groups[b].add(x)
                status[a] = status[b] = CHANGED
        delta = ClusterDelta(
            ids=tuple(range(n_groups)), status=tuple(status), vanished=()
        )
        per_tick.append(([set(group) for group in groups], delta))
    return [snapshot] * n_snapshots, per_tick


def run_engine(snapshots, make_clusterer, shards=None, executor=None,
               resident=False, byte_accounting=False):
    """One full engine run; returns (per-tick emissions, counters, secs)."""
    miner = StreamingConvoyMiner(
        M, K, EPS, clusterer=make_clusterer(), shards=shards,
        executor=executor, resident=resident,
    )
    if byte_accounting:
        miner.pipeline.track.tracker.enable_byte_accounting()
    emitted = []
    started = time.perf_counter()
    with miner:
        for t, snapshot in enumerate(snapshots):
            emitted.append(miner.feed(t, snapshot))
        emitted.append(miner.flush())
    return emitted, miner.counters, time.perf_counter() - started


def _grid_cell(cell):
    """Normalize a grid cell: (shards, executor[, resident])."""
    shards, executor = cell[0], cell[1]
    resident = cell[2] if len(cell) > 2 else False
    return shards, executor, resident


def _row(shards, executor, resident, workload, n, seconds, base_seconds,
         emitted, counters, bytes_per_tick=(None, None)):
    shipped, result = bytes_per_tick
    payload = None if shipped is None else shipped + result
    return {
        "shards": shards,
        "executor": executor,
        "resident": resident,
        "workload": workload,
        "rate": n / seconds,
        "speedup_vs_unsharded": base_seconds / seconds,
        "convoys": sum(len(batch) for batch in emitted),
        "peak_candidates": counters["peak_candidates"],
        "sharded_candidates": counters["sharded_candidates"],
        "max_shard_batch": counters["max_shard_batch"],
        "seconds": seconds,
        "shipped_bytes_per_tick": shipped,
        "result_bytes_per_tick": result,
        "payload_bytes_per_tick": payload,
        "payload_reduction": None,
    }


def run_grid(scale, grid, hotspots=None):
    """Run the unsharded baseline plus every grid cell; assert per-tick
    equivalence; return (baseline_row, rows)."""
    snapshots, clusters = make_workload(scale, hotspots=hotspots)
    workload = (
        "planted groups" if hotspots is None
        else f"hotspot churn (H={hotspots})"
    )
    make_clusterer = lambda: ReplayClusterer(clusters)  # noqa: E731
    base_emitted, base_counters, base_seconds = run_engine(
        snapshots, make_clusterer
    )
    n = len(snapshots)
    baseline = _row(
        0, "unsharded", False, workload, n, base_seconds, base_seconds,
        base_emitted, dict(base_counters, sharded_candidates=0,
                           max_shard_batch=0),
    )
    rows = []
    for cell in grid:
        shards, executor, resident = _grid_cell(cell)
        emitted, counters, seconds = run_engine(
            snapshots, make_clusterer, shards=shards, executor=executor,
            resident=resident,
        )
        assert emitted == base_emitted, (
            f"sharded engine diverged from unsharded at shards={shards}, "
            f"executor={executor}, resident={resident}"
        )
        rows.append(_row(
            shards, executor, resident, workload, n, seconds,
            base_seconds, emitted, counters,
        ))
    return baseline, rows


def run_bytes(scale):
    """The byte pass: group-swap workload through the stateless and
    resident sharded trackers with pickle-level accounting.

    Returns ``(rows, reduction)`` — two rows (stateless, resident) plus
    the stateless/resident payload ratio, which the caller asserts
    against ``BYTES_BAR``.  Serial executor: the accounting pickles
    exactly what a process transport would ship, so the ratio is
    transport-independent.
    """
    snapshots, per_tick = make_delta_workload(**scale)
    make_clusterer = lambda: ReplayDeltaClusterer(per_tick)  # noqa: E731
    base_emitted, _counters, base_seconds = run_engine(
        snapshots, make_clusterer
    )
    n = len(snapshots)
    rows = []
    for resident in (False, True):
        emitted, counters, seconds = run_engine(
            snapshots, make_clusterer, shards=2, executor="serial",
            resident=resident, byte_accounting=True,
        )
        assert emitted == base_emitted, (
            f"byte-pass engine diverged from unsharded "
            f"(resident={resident})"
        )
        rows.append(_row(
            2, "serial", resident, "group swap", n, seconds, base_seconds,
            emitted, counters,
            bytes_per_tick=(counters["shipped_bytes"] / n,
                            counters["result_bytes"] / n),
        ))
    reduction = (
        rows[0]["payload_bytes_per_tick"] / rows[1]["payload_bytes_per_tick"]
    )
    rows[1]["payload_reduction"] = reduction
    return rows, reduction


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny stream, reduced grid, equivalence and "
        "payload-byte assertions only (timings are not meaningful)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(params, rates, speedups, payload bytes, git SHA)",
    )
    parser.add_argument(
        "--hotspots", type=int, default=None, metavar="H",
        help="swap in the skewed workload: churn confined to H seeded "
        "spatial hotspots (charts unbalanced shard load)",
    )
    parser.add_argument(
        "--resident", action="store_true",
        help="extend the timing grid with resident-transport cells "
        "(long-lived shard workers; wall-clock recorded, not gated)",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    grid = SMOKE_GRID if args.smoke else FULL_GRID
    if args.resident:
        grid = grid + (
            RESIDENT_SMOKE_GRID if args.smoke else RESIDENT_FULL_GRID
        )
    bytes_scale = BYTES_SMOKE_SCALE if args.smoke else BYTES_FULL_SCALE
    cores = os.cpu_count() or 1
    baseline, rows = run_grid(scale, grid, hotspots=args.hotspots)
    bytes_rows, reduction = run_bytes(bytes_scale)
    table_rows = [[
        row["executor"] if row["shards"] else "(unsharded)",
        row["shards"] or "-",
        "yes" if row["resident"] else "-",
        round(row["rate"], 1),
        f"{row['speedup_vs_unsharded']:.2f}x",
        row["peak_candidates"],
        row["max_shard_batch"] or "-",
    ] for row in [baseline] + rows]
    print_report(
        format_table(
            "Sharded candidate tracking — precomputed-cluster "
            f"{baseline['workload']} workload ({scale['n_objects']} "
            f"objects, m={M}, k={K}, e={EPS:g}, {cores} core(s); "
            "identical convoys asserted every tick)",
            ["executor", "shards", "resident", "snap/s", "vs unsharded",
             "peak cands", "max batch"],
            table_rows,
        )
    )
    print_report(
        format_table(
            "Per-tick payload bytes — group-swap delta workload "
            f"({bytes_scale['n_groups']} groups x "
            f"{bytes_scale['group_size']}, "
            f"{bytes_scale['dirty_groups']} swap pair(s)/tick, "
            "2 shards, pickled bytes)",
            ["mode", "shipped B/tick", "result B/tick", "payload B/tick",
             "reduction"],
            [[
                "resident" if row["resident"] else "stateless",
                round(row["shipped_bytes_per_tick"], 1),
                round(row["result_bytes_per_tick"], 1),
                round(row["payload_bytes_per_tick"], 1),
                (f"{row['payload_reduction']:.2f}x"
                 if row["payload_reduction"] else "-"),
            ] for row in bytes_rows],
        )
    )
    if args.json:
        write_bench_json(
            args.json, "sharded_scaling",
            dict(m=M, k=K, eps=EPS, smoke=args.smoke, cores=cores,
                 hotspots=args.hotspots, resident=args.resident,
                 bytes_bar=BYTES_BAR, bytes_scale=bytes_scale, **scale),
            [baseline] + rows + bytes_rows,
        )
        print(f"json results written to {args.json}")
    if reduction < BYTES_BAR:
        raise SystemExit(
            f"acceptance failure: resident payload is only "
            f"{reduction:.2f}x smaller than the stateless sharded "
            f"payload on the group-swap workload, below the "
            f"{BYTES_BAR:.1f}x bar (resident mode must ship deltas, "
            f"not state)"
        )
    if args.smoke:
        print("smoke ok: all sharded configurations agree with the "
              "unsharded engine on every tick; resident payload "
              f"{reduction:.2f}x below stateless (bar {BYTES_BAR:.1f}x)")
        return 0
    timing_rows = [row for row in rows if not row["resident"]]
    serial_rows = [
        row for row in timing_rows if row["executor"] == "serial"
    ]
    worst_serial = min(row["speedup_vs_unsharded"] for row in serial_rows)
    if worst_serial < SERIAL_BAR:
        raise SystemExit(
            f"acceptance failure: serial-executor rate fell to "
            f"{worst_serial:.2f}x of the unsharded engine, below the "
            f"{SERIAL_BAR:.2f}x bar (the refactor must not tax the "
            f"hot path)"
        )
    process_rows = [
        row for row in timing_rows if row["executor"] == "process"
    ]
    best_process = max(row["speedup_vs_unsharded"] for row in process_rows)
    if cores >= 2:
        if best_process < PROCESS_BAR:
            raise SystemExit(
                f"acceptance failure: best process-executor speedup is "
                f"{best_process:.2f}x on {cores} cores, below the "
                f"{PROCESS_BAR:.2f}x bar"
            )
    else:
        print(
            f"note: single-core host — process-executor speedup bar "
            f"skipped (best observed {best_process:.2f}x; run on a "
            f"multi-core machine to chart real scaling)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
