"""Sharded candidate tracking — scaling curve at 1/2/4 shards by executor.

The staged pipeline makes the candidate tracker swappable, and the
sharding layer fans its per-tick matching work across executor backends;
this bench answers the two questions that decide whether that layer may
exist at all:

* **Zero-overhead refactor** — the sharded tracker on the *serial*
  executor must hold within 10% of the unsharded engine (``SERIAL_BAR``),
  at 1 shard (pure layer cost) and as shards grow (routing cost).
* **Real scaling** — the *process* executor must show a measurable
  multi-core speedup on a tracker-bound workload (``PROCESS_BAR``,
  asserted only when the machine actually has >1 core; single-core
  hosts still record the rows so the JSON trajectory shows the
  overhead honestly).

The workload is deliberately tracker-bound: a ``synthetic_stream`` with
many planted co-travelling groups is clustered **once** up front, and a
replaying clusterer feeds the precomputed per-tick cluster lists to
every engine, so the measured per-tick cost is almost entirely the
candidate step (hundreds of clusters joined against >1000 live
candidates).  ``--hotspots H`` swaps in a ``churn_stream(hotspots=H)``
workload instead — movement confined to H seeded spatial hotspots — to
chart the unbalanced-shard regime (``max_shard_batch`` exposes the
skew).

Every configuration's per-tick emissions are asserted equal to the
unsharded engine's on every run — the scaling numbers carry no semantic
caveats (the exhaustive proof is ``tests/streaming/
test_sharded_equivalence.py``).

Run ``python benchmarks/bench_sharded_scaling.py`` for the table,
``--smoke`` for a seconds-long CI-sized run (equivalence assertions
only), and ``--json PATH`` for the machine-readable record CI uploads
as a perf-trajectory artifact (``BENCH_sharded_scaling.json``).
"""

import argparse
import os
import time

from benchmarks.common import print_report, write_bench_json
from repro.bench import format_table
from repro.clustering.dbscan import dbscan
from repro.streaming import StreamingConvoyMiner, churn_stream, synthetic_stream

M, K, EPS = 3, 8, 10.0

#: (shards, executor) cells of the scaling curve, in report order.
FULL_GRID = (
    (1, "serial"),
    (2, "serial"),
    (4, "serial"),
    (2, "thread"),
    (4, "thread"),
    (1, "process"),
    (2, "process"),
    (4, "process"),
)
SMOKE_GRID = (
    (1, "serial"),
    (2, "serial"),
    (2, "thread"),
    (2, "process"),
)

FULL_SCALE = dict(n_objects=1600, n_snapshots=60, group_count=200,
                  group_size=8)
SMOKE_SCALE = dict(n_objects=240, n_snapshots=15, group_count=40,
                   group_size=6)

#: serial-executor rate must stay within this fraction of unsharded.
SERIAL_BAR = 0.90
#: best process-executor speedup must clear this (multi-core hosts only).
PROCESS_BAR = 1.10


class ReplayClusterer:
    """Feed precomputed per-tick cluster lists: clustering cost ~ zero,
    so the engine's measured per-tick cost is the candidate tracker."""

    def __init__(self, per_tick):
        self._ticks = iter(per_tick)

    def cluster(self, snapshot):
        return next(self._ticks)


def make_workload(scale, hotspots=None, seed=42):
    """Materialize snapshots and their per-tick clusterings once."""
    if hotspots is None:
        ticks = synthetic_stream(
            scale["n_objects"], scale["n_snapshots"], seed=seed, eps=EPS,
            group_count=scale["group_count"],
            group_size=scale["group_size"],
            area=60.0 * EPS,
        )
    else:
        ticks = churn_stream(
            scale["n_objects"], scale["n_snapshots"], seed=seed, eps=EPS,
            churn=0.2, area=36.0 * EPS, hotspots=hotspots,
        )
    snapshots = [snapshot for _t, snapshot in ticks]
    clusters = [dbscan(snapshot, EPS, M) for snapshot in snapshots]
    return snapshots, clusters


def run_engine(snapshots, clusters, shards=None, executor=None):
    """One full engine run; returns (per-tick emissions, counters, secs)."""
    miner = StreamingConvoyMiner(
        M, K, EPS, clusterer=ReplayClusterer(clusters), shards=shards,
        executor=executor,
    )
    emitted = []
    started = time.perf_counter()
    for t, snapshot in enumerate(snapshots):
        emitted.append(miner.feed(t, snapshot))
    emitted.append(miner.flush())
    return emitted, miner.counters, time.perf_counter() - started


def run_grid(scale, grid, hotspots=None):
    """Run the unsharded baseline plus every grid cell; assert per-tick
    equivalence; return (baseline_row, rows)."""
    snapshots, clusters = make_workload(scale, hotspots=hotspots)
    base_emitted, base_counters, base_seconds = run_engine(
        snapshots, clusters
    )
    n = len(snapshots)
    baseline = {
        "shards": 0,
        "executor": "unsharded",
        "rate": n / base_seconds,
        "speedup_vs_unsharded": 1.0,
        "convoys": sum(len(batch) for batch in base_emitted),
        "peak_candidates": base_counters["peak_candidates"],
        "sharded_candidates": 0,
        "max_shard_batch": 0,
        "seconds": base_seconds,
    }
    rows = []
    for shards, executor in grid:
        emitted, counters, seconds = run_engine(
            snapshots, clusters, shards=shards, executor=executor
        )
        assert emitted == base_emitted, (
            f"sharded engine diverged from unsharded at shards={shards}, "
            f"executor={executor}"
        )
        rows.append({
            "shards": shards,
            "executor": executor,
            "rate": n / seconds,
            "speedup_vs_unsharded": base_seconds / seconds,
            "convoys": sum(len(batch) for batch in emitted),
            "peak_candidates": counters["peak_candidates"],
            "sharded_candidates": counters["sharded_candidates"],
            "max_shard_batch": counters["max_shard_batch"],
            "seconds": seconds,
        })
    return baseline, rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny stream, reduced grid, equivalence "
        "assertions only (timings are not meaningful)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(params, rates, speedups, git SHA)",
    )
    parser.add_argument(
        "--hotspots", type=int, default=None, metavar="H",
        help="swap in the skewed workload: churn confined to H seeded "
        "spatial hotspots (charts unbalanced shard load)",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    grid = SMOKE_GRID if args.smoke else FULL_GRID
    cores = os.cpu_count() or 1
    baseline, rows = run_grid(scale, grid, hotspots=args.hotspots)
    table_rows = [[
        row["executor"] if row["shards"] else "(unsharded)",
        row["shards"] or "-",
        round(row["rate"], 1),
        f"{row['speedup_vs_unsharded']:.2f}x",
        row["peak_candidates"],
        row["max_shard_batch"] or "-",
    ] for row in [baseline] + rows]
    workload = (
        f"hotspot churn (H={args.hotspots})" if args.hotspots is not None
        else "planted groups"
    )
    print_report(
        format_table(
            "Sharded candidate tracking — precomputed-cluster "
            f"{workload} workload ({scale['n_objects']} objects, "
            f"m={M}, k={K}, e={EPS:g}, {cores} core(s); identical "
            "convoys asserted every tick)",
            ["executor", "shards", "snap/s", "vs unsharded",
             "peak cands", "max batch"],
            table_rows,
        )
    )
    if args.json:
        write_bench_json(
            args.json, "sharded_scaling",
            dict(m=M, k=K, eps=EPS, smoke=args.smoke, cores=cores,
                 hotspots=args.hotspots, **scale),
            [baseline] + rows,
        )
        print(f"json results written to {args.json}")
    if args.smoke:
        print("smoke ok: all sharded configurations agree with the "
              "unsharded engine on every tick")
        return 0
    serial_rows = [row for row in rows if row["executor"] == "serial"]
    worst_serial = min(row["speedup_vs_unsharded"] for row in serial_rows)
    if worst_serial < SERIAL_BAR:
        raise SystemExit(
            f"acceptance failure: serial-executor rate fell to "
            f"{worst_serial:.2f}x of the unsharded engine, below the "
            f"{SERIAL_BAR:.2f}x bar (the refactor must not tax the "
            f"hot path)"
        )
    process_rows = [row for row in rows if row["executor"] == "process"]
    best_process = max(row["speedup_vs_unsharded"] for row in process_rows)
    if cores >= 2:
        if best_process < PROCESS_BAR:
            raise SystemExit(
                f"acceptance failure: best process-executor speedup is "
                f"{best_process:.2f}x on {cores} cores, below the "
                f"{PROCESS_BAR:.2f}x bar"
            )
    else:
        print(
            f"note: single-core host — process-executor speedup bar "
            f"skipped (best observed {best_process:.2f}x; run on a "
            f"multi-core machine to chart real scaling)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
