"""Match kernels — bitset vs merge vs scalar, and the auto dispatcher.

The candidate-match join has three representation tiers
(``repro.clustering.numeric``): ``scalar`` (pairwise Python set
intersections), ``merge`` (sorted int-id arrays, one merge-intersection
per scanned pair), and ``bitset`` (object ids packed into ``uint64``
words over a per-tick dense remap; intersections are word-AND plus
popcount over a whole block at once).  ``auto`` is the
:class:`~repro.clustering.numeric.KernelDispatch` policy: it measures
per-tick cost, fits a per-kernel cost model, and picks the cheapest —
never batching below its exploration floor, which is precisely the
small-delta regime where batch overhead used to lose (the 0.83x row of
``BENCH_vector_kernel.json``).

Two timing regimes, each preceded by identical *untimed warmup ticks*
(so ``auto``'s exploration probes are not billed against it and every
kernel's timed window starts from the same steady state):

* ``dense`` — the hotspot-drift workload
  (:func:`repro.streaming.hotspot_drift_scenario`, 10^5 objects in the
  full run): large stable packs replayed as the per-tick clustering, so
  the cost is almost entirely the candidate join over thousands of
  large-set pairs.  Acceptance: ``bitset`` must clear ``BITSET_BAR``
  (3x) snapshots/sec over ``merge`` here.
* ``small-delta`` — the incremental pipeline on a churn stream, where
  per-tick deltas are tiny and the scalar kernel wins.

In *both* regimes ``auto`` must reach ``AUTO_BAR`` (0.95x) of the best
fixed kernel — the dispatcher is only accepted if adaptivity is nearly
free everywhere.

Every run additionally asserts tick-for-tick equivalence of all four
kernels against the scalar baseline across the shipping transports:
unsharded, sharded serial/process, and resident serial/process.

Run ``python benchmarks/bench_match_kernel.py`` for the table,
``--smoke`` for a seconds-long CI-sized run (equivalence assertions
only), and ``--json PATH`` for the machine-readable record CI uploads
as a perf-trajectory artifact (``BENCH_match_kernel.json``).
"""

import argparse
import gc
import statistics
import time

from benchmarks.bench_sharded_scaling import ReplayClusterer
from benchmarks.common import print_report, safe_rate, write_bench_json
from repro.bench import format_table
from repro.clustering.numeric import have_numpy
from repro.streaming import (
    StreamingConvoyMiner,
    churn_stream,
    hotspot_drift_scenario,
)

M, K, EPS = 3, 8, 10.0

KERNELS = ("scalar", "merge", "bitset", "auto")

#: bitset must clear this speedup over merge on the dense regime (full
#: mode, numpy available).
BITSET_BAR = 3.0
#: auto must reach this fraction of the best fixed kernel's rate in
#: every measured regime.
AUTO_BAR = 0.95

#: warmup ticks are fed before the timer starts, identically for every
#: kernel; 8 covers auto's exploration probes (2 rounds x 3 kernels)
#: with margin, so the timed window measures the settled policy.
#: 200 hotspots over an 8k hot population keeps per-tick work high
#: enough (~30ms bitset ticks) that the 0.95x auto bar is measurable
#: above container timing noise, while the 40-object packs keep merge's
#: per-pair overhead dominant (bitset >3x merge).
FULL_DENSE = dict(n_objects=100_000, n_snapshots=28, hotspots=200,
                  background=0.92, warmup=8)
SMOKE_DENSE = dict(n_objects=3_000, n_snapshots=10, hotspots=12,
                   background=0.9, warmup=3)
#: 2.5k objects put the small-delta scalar tick at ~25ms — like the
#: dense shape, sized so the auto bar clears container timing noise.
FULL_SMALL = dict(n_objects=2500, n_snapshots=36, churn=0.15, warmup=8)
SMOKE_SMALL = dict(n_objects=120, n_snapshots=12, churn=0.15, warmup=3)

#: (shards, executor, resident) transports of the equivalence grid.
TRANSPORTS = (
    (None, None, False),
    (2, "serial", False),
    (2, "process", False),
    (2, "serial", True),
    (2, "process", True),
)


def make_dense_workload(scale, seed=42):
    """Materialize the hotspot-drift ticks and their planted clustering.

    The planted packs *are* the per-tick clusters (each pack is
    density-connected by construction), so a :class:`ReplayClusterer`
    feeds them directly and the measured per-tick cost is the candidate
    join, not DBSCAN.
    """
    scenario = list(hotspot_drift_scenario(
        scale["n_objects"], scale["n_snapshots"], seed=seed, eps=EPS,
        hotspots=scale["hotspots"], background=scale["background"],
    ))
    ticks = [(t, snapshot) for t, snapshot, _groups in scenario]
    packs = [set(group) for group in scenario[0][2]]
    clusters = [packs] * len(ticks)
    return ticks, clusters


def make_small_workload(scale, seed=42):
    """Materialize the churn ticks of the small-delta regime."""
    return list(churn_stream(
        scale["n_objects"], scale["n_snapshots"], seed=seed, eps=EPS,
        churn=scale["churn"], area=36.0 * EPS,
    ))


def run_timed(make_miner, ticks, warmup):
    """One engine run, timing every tick past the first ``warmup``.

    Returns ``(per-tick emissions incl. flush, counters, tick secs)``.
    The flush is outside the timed window (its cost is per-candidate
    teardown, identical for every kernel), but inside the emissions so
    the equivalence assertions cover the whole answer.

    The cyclic collector is off for the duration of the run (after a
    full collect, so every run starts from the same heap state): with a
    10^5-object workload resident, a collection pass costs more than a
    whole tick, and *when* it fires depends on incidental per-tick
    allocation counts — measured at a systematic ~10% penalty against
    whichever variant allocates a handful more objects per tick, which
    is exactly the kind of artifact a kernel comparison must exclude.
    """
    if not warmup < len(ticks):
        raise ValueError(f"warmup {warmup} must be < ticks {len(ticks)}")
    gc.collect()
    gc.disable()
    try:
        miner = make_miner()
        emitted = []
        tick_seconds = []
        with miner:
            for i, (t, snapshot) in enumerate(ticks):
                started = time.perf_counter()
                emitted.append(miner.feed(t, snapshot))
                if i >= warmup:
                    tick_seconds.append(time.perf_counter() - started)
            emitted.append(miner.flush())
        return emitted, dict(miner.counters), tick_seconds
    finally:
        gc.enable()


def run_regime(regime, make_miner, ticks, warmup, reps):
    """Time every kernel on one regime; assert identical emissions.

    The kernels are *interleaved* across ``reps`` full runs each, with
    the order *rotated* every rep, and rated by the median across tick
    positions of the **minimum** per-tick time over the reps.
    Interleaving keeps whole-process drift (allocator warmup,
    frequency scaling, a stray GC pause) from folding into whichever
    kernel ran during it; rotation keeps any *systematic*
    position-in-cycle effect (measured at up to ~15% between cycle
    slots on a noisy container) from always taxing the same kernel;
    the per-tick min is the standard noise-robust estimator —
    scheduling noise only ever *adds* time, so the best observation of
    a deterministic tick is the closest to its true cost.
    """
    times = {kernel: [] for kernel in KERNELS}
    dispatch = {kernel: None for kernel in KERNELS}
    baseline = None
    for rep in range(reps):
        rotated = KERNELS[rep % len(KERNELS):] + KERNELS[:rep % len(KERNELS)]
        for kernel in rotated:
            emitted, counters, tick_seconds = run_timed(
                lambda: make_miner(kernel), ticks, warmup
            )
            if baseline is None:
                baseline = emitted
            else:
                assert emitted == baseline, (
                    f"{kernel} diverged from scalar on the "
                    f"{regime} regime"
                )
            times[kernel].append(tick_seconds)
            if kernel == "auto":
                counts = dispatch[kernel] or dict.fromkeys(
                    ("scalar", "merge", "bitset"), 0
                )
                for name in counts:
                    counts[name] += counters.get(f"dispatch_{name}", 0)
                dispatch[kernel] = counts
    convoys = sum(len(batch) for batch in baseline)
    rows = []
    for kernel in KERNELS:
        reps_seconds = times[kernel]
        best_per_tick = [min(col) for col in zip(*reps_seconds)]
        median = statistics.median(best_per_tick)
        rows.append({
            "regime": regime,
            "kernel": kernel,
            "snapshots": sum(len(rep) for rep in reps_seconds),
            "seconds": sum(sum(rep) for rep in reps_seconds),
            "rate": safe_rate(1, median),
            "convoys": convoys,
            "dispatch_ticks": dispatch[kernel],
        })
    return rows


def check_transports(ticks, clusters):
    """Assert tick-for-tick equivalence across kernels x transports."""
    baseline = None
    for kernel in KERNELS:
        for shards, executor, resident in TRANSPORTS:
            miner = StreamingConvoyMiner(
                M, K, EPS, clusterer=ReplayClusterer(clusters),
                match_kernel=kernel, shards=shards, executor=executor,
                resident=resident,
            )
            emitted = []
            with miner:
                for t, snapshot in ticks:
                    emitted.append(miner.feed(t, snapshot))
                emitted.append(miner.flush())
            if baseline is None:
                baseline = emitted
            else:
                assert emitted == baseline, (
                    f"kernel {kernel} diverged on transport "
                    f"(shards={shards}, executor={executor}, "
                    f"resident={resident})"
                )
    return len(KERNELS) * len(TRANSPORTS)


def run_all(smoke):
    dense_scale = SMOKE_DENSE if smoke else FULL_DENSE
    small_scale = SMOKE_SMALL if smoke else FULL_SMALL
    reps = 1 if smoke else 5
    dense_ticks, dense_clusters = make_dense_workload(dense_scale)
    small_ticks = make_small_workload(small_scale)

    def dense_miner(kernel):
        return StreamingConvoyMiner(
            M, K, EPS, clusterer=ReplayClusterer(dense_clusters),
            match_kernel=kernel,
        )

    def small_miner(kernel):
        return StreamingConvoyMiner(
            M, K, EPS, clusterer="incremental", match_kernel=kernel,
        )

    rows = run_regime(
        "dense", dense_miner, dense_ticks, dense_scale["warmup"], reps
    )
    rows.extend(run_regime(
        "small-delta", small_miner, small_ticks, small_scale["warmup"],
        reps,
    ))
    grid_ticks, grid_clusters = make_dense_workload(SMOKE_DENSE)
    grid_runs = check_transports(grid_ticks, grid_clusters)
    return dense_scale, small_scale, rows, grid_runs


def fmt_rate(rate):
    return round(rate, 1) if rate is not None else "-"


def fmt_dispatch(dispatch):
    if dispatch is None:
        return "-"
    return "/".join(str(dispatch[name])
                    for name in ("scalar", "merge", "bitset"))


def regime_rows(rows, regime):
    return [row for row in rows if row["regime"] == regime]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny workloads, equivalence assertions only "
        "(timings are not meaningful)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(rates, dispatch counts, git SHA)",
    )
    args = parser.parse_args(argv)
    numpy_available = have_numpy()
    dense_scale, small_scale, rows, grid_runs = run_all(args.smoke)
    table_rows = []
    for regime in ("dense", "small-delta"):
        group = regime_rows(rows, regime)
        scalar_rate = group[0]["rate"]
        for row in group:
            relative = (
                f"{row['rate'] / scalar_rate:.2f}x"
                if row["rate"] is not None and scalar_rate
                else "-"
            )
            table_rows.append([
                row["regime"], row["kernel"], row["snapshots"],
                fmt_rate(row["rate"]), relative,
                fmt_dispatch(row["dispatch_ticks"]),
            ])
    print_report(
        format_table(
            "Match kernels by regime "
            f"(m={M}, k={K}, e={EPS:g}, numpy="
            f"{'yes' if numpy_available else 'no — fallback kernels'}; "
            f"identical convoys asserted across {grid_runs} "
            "kernel-x-transport runs)",
            ["regime", "kernel", "timed snaps", "snap/s", "vs scalar",
             "dispatch s/m/b"],
            table_rows,
        )
    )
    if args.json:
        write_bench_json(
            args.json, "match_kernel",
            dict(m=M, k=K, eps=EPS, smoke=args.smoke,
                 numpy=numpy_available, dense_scale=dense_scale,
                 small_scale=small_scale, bitset_bar=BITSET_BAR,
                 auto_bar=AUTO_BAR, transport_runs=grid_runs),
            rows,
        )
        print(f"json results written to {args.json}")
    if args.smoke:
        print("smoke ok: every kernel agrees with the scalar baseline "
              "on every regime and transport")
        return 0
    if not numpy_available:
        print(
            "note: numpy unavailable — the pure-Python bitset tier only "
            f"promises equivalence, so the {BITSET_BAR:.1f}x dense bar "
            "is skipped"
        )
        return 0
    by_key = {(row["regime"], row["kernel"]): row for row in rows}
    bitset = by_key[("dense", "bitset")]["rate"]
    merge = by_key[("dense", "merge")]["rate"]
    if not bitset or not merge or bitset < BITSET_BAR * merge:
        raise SystemExit(
            f"acceptance failure: bitset reached "
            f"{(bitset or 0) / (merge or 1):.2f}x merge on the dense "
            f"regime, below the {BITSET_BAR:.1f}x bar"
        )
    for regime in ("dense", "small-delta"):
        group = regime_rows(rows, regime)
        fixed = [row["rate"] for row in group
                 if row["kernel"] != "auto" and row["rate"]]
        auto = by_key[(regime, "auto")]["rate"]
        if not fixed or not auto or auto < AUTO_BAR * max(fixed):
            raise SystemExit(
                f"acceptance failure: auto reached "
                f"{(auto or 0) / max(fixed):.2f}x the best fixed kernel "
                f"on the {regime} regime, below the {AUTO_BAR:.2f}x bar"
            )
    print(
        f"acceptance ok: bitset {bitset / merge:.2f}x merge on dense "
        f"(bar {BITSET_BAR:.1f}x); auto within {AUTO_BAR:.2f}x of the "
        "best fixed kernel in every regime"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
