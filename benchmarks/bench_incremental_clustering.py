"""Incremental vs full-pass snapshot clustering — snapshots/sec by churn.

Not a paper figure: the paper clusters every snapshot from scratch (the
``DBSCAN(O_t, e, m)`` of Algorithm 1).  This bench charts what the
ROADMAP's incremental-DBSCAN follow-up buys: feed identical
:func:`~repro.streaming.churn_stream` snapshot sequences through a fresh
:func:`~repro.clustering.dbscan.dbscan` per tick and through an
:class:`~repro.clustering.incremental.IncrementalSnapshotClusterer`, and
report both ingest rates, the speedup, and the fraction of points the
incremental pass actually re-clustered.  The two paths return identical
clusters at every tick (asserted here on every run, and exhaustively in
``tests/clustering/test_incremental_equivalence.py``), so the speedup is
free of semantic caveats.

The interesting row is low churn — a mostly-parked GPS fleet where <= 10%
of objects move beyond ``eps/2`` per tick.  There the incremental pass
only pays for the movers' neighbourhoods and clears the >= 2x bar with
room to spare; past ~25-35% churn the delta bookkeeping stops paying and
the clusterer falls back to full passes by itself (the ``full`` column
shows the fallback engaging).

Run ``python benchmarks/bench_incremental_clustering.py`` for the table,
or with ``--smoke`` for a seconds-long CI-sized run that still checks
tick-for-tick equivalence and that the delta path was exercised.
"""

import argparse
import time

import pytest

from benchmarks.common import print_report, write_bench_json
from repro.bench import format_table
from repro.clustering.dbscan import dbscan
from repro.clustering.incremental import IncrementalSnapshotClusterer
from repro.streaming import churn_stream

M, EPS = 3, 10.0

#: churn levels swept by the CLI report; the headline row is 0.10 (the
#: "low-churn" acceptance regime: <= 10% movers beyond eps/2 per tick).
CHURN_LEVELS = (0.01, 0.05, 0.10, 0.25, 0.50)

FULL_SCALE = dict(n_objects=800, n_snapshots=120, turnover=0.01)
SMOKE_SCALE = dict(n_objects=120, n_snapshots=25, turnover=0.01)


def make_snapshots(churn, *, n_objects, n_snapshots, turnover, seed=42):
    """Materialize one churn stream so both paths see identical input."""
    return [
        snapshot
        for _t, snapshot in churn_stream(
            n_objects, n_snapshots, seed=seed, eps=EPS, churn=churn,
            turnover=turnover,
        )
    ]


def run_full(snapshots):
    """Fresh dbscan() per tick; returns (answers, seconds)."""
    started = time.perf_counter()
    answers = [dbscan(snapshot, EPS, M) for snapshot in snapshots]
    return answers, time.perf_counter() - started


def run_incremental(snapshots):
    """One clusterer across ticks; returns (answers, counters, seconds)."""
    clusterer = IncrementalSnapshotClusterer(EPS, M)
    started = time.perf_counter()
    answers = [clusterer.cluster(snapshot) for snapshot in snapshots]
    return answers, clusterer.counters, time.perf_counter() - started


def compare(churn, scale):
    """Run both paths on one churn level; assert equality; return a row."""
    snapshots = make_snapshots(churn, **scale)
    full_answers, full_seconds = run_full(snapshots)
    inc_answers, counters, inc_seconds = run_incremental(snapshots)
    assert inc_answers == full_answers, (
        f"incremental clustering diverged from dbscan at churn={churn}"
    )
    n = len(snapshots)
    return {
        "churn": churn,
        "snapshots": n,
        "points": counters["clustered_points"],
        "full_rate": n / full_seconds,
        "inc_rate": n / inc_seconds,
        "speedup": full_seconds / inc_seconds,
        "full_passes": counters["full_passes"],
        "reclustered_pct": 100.0 * counters["reclustered_points"]
        / max(counters["clustered_points"], 1),
    }


@pytest.mark.parametrize("churn", [0.05, 0.25])
def test_incremental_clustering_benchmark(benchmark, churn):
    snapshots = make_snapshots(churn, **SMOKE_SCALE)

    def run():
        return run_incremental(snapshots)

    _answers, counters, seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["snapshots_per_sec"] = round(
        len(snapshots) / seconds, 1
    )
    benchmark.extra_info["reclustered_points"] = counters[
        "reclustered_points"
    ]


def test_low_churn_mostly_splices():
    """The cost model behind the speedup, asserted without wall clocks: at
    10% churn the delta path handles nearly every tick and re-clusters a
    minority of the points."""
    snapshots = make_snapshots(0.10, **SMOKE_SCALE)
    answers, counters, _seconds = run_incremental(snapshots)
    assert answers == [dbscan(s, EPS, M) for s in snapshots]
    assert counters["incremental_passes"] == len(snapshots) - 1
    assert counters["reclustered_points"] < 0.6 * counters["clustered_points"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny stream, two churn levels, equivalence and "
        "delta-path assertions only (timings are not meaningful)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(params, rates, speedup, git SHA)",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    levels = (0.05, 0.10) if args.smoke else CHURN_LEVELS
    json_rows = []
    rows = []
    for churn in levels:
        r = compare(churn, scale)
        json_rows.append(r)
        rows.append([
            f"{r['churn']:.0%}",
            r["snapshots"],
            r["points"],
            round(r["full_rate"], 1),
            round(r["inc_rate"], 1),
            f"{r['speedup']:.2f}x",
            r["full_passes"],
            f"{r['reclustered_pct']:.0f}%",
        ])
        if args.smoke and r["full_passes"] >= r["snapshots"]:
            raise SystemExit(
                f"smoke failure: delta path never engaged at churn "
                f"{churn:.0%}"
            )
    print_report(
        format_table(
            "Incremental vs full snapshot clustering — churn_stream "
            f"({scale['n_objects']} objects, m={M}, e={EPS:g}; identical "
            "clusters asserted every tick)",
            ["churn", "snapshots", "points", "full snap/s", "incr snap/s",
             "speedup", "full passes", "reclustered"],
            rows,
        )
    )
    if args.json:
        write_bench_json(
            args.json, "incremental_clustering",
            dict(m=M, eps=EPS, smoke=args.smoke, **scale),
            json_rows,
        )
        print(f"json results written to {args.json}")
    if args.smoke:
        print("smoke ok: incremental == dbscan on every tick, delta path "
              "exercised")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
