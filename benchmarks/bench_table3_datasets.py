"""Table 3 — dataset statistics, query parameters, and convoys discovered.

Regenerates the paper's experiment-settings table: for each of the four
datasets, the size statistics, the (scaled) query parameters, the auto-
selected δ and λ, and the number of convoys the reproduction discovers.
Paper values are printed side by side; point counts differ by the bench
scale (absolute sizes are substituted, shapes preserved — DESIGN.md §4),
while the *relative ordering* of convoy counts across datasets
(truck > cattle > car > taxi) is the reproduced result.
"""

import pytest

from benchmarks.common import BENCH_SCALES, DATASET_NAMES, dataset, print_report
from repro import cuts
from repro.bench import format_table


def _row(name):
    spec = dataset(name)
    stats = spec.statistics()
    result = cuts(spec.database, spec.m, spec.k, spec.eps, variant="cuts*")
    return spec, stats, result


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_table3_dataset(benchmark, name):
    spec = dataset(name)

    def run():
        return cuts(spec.database, spec.m, spec.k, spec.eps, variant="cuts*")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = spec.statistics()
    benchmark.extra_info.update(
        {
            "num_objects": stats["num_objects"],
            "time_domain_length": stats["time_domain_length"],
            "total_points": stats["total_points"],
            "convoys_discovered": len(result.convoys),
            "paper_convoys": spec.paper_stats["convoys_discovered"],
            "delta": round(result.delta, 2),
            "lambda": result.lam,
        }
    )
    assert stats["num_objects"] == spec.paper_stats["num_objects"]


def main():
    headers = [
        "metric", "truck", "(paper)", "cattle", "(paper)",
        "car", "(paper)", "taxi", "(paper)",
    ]
    rows = []
    cells = {name: _row(name) for name in DATASET_NAMES}

    def metric(label, measured_fn, paper_key):
        row = [label]
        for name in DATASET_NAMES:
            spec, stats, result = cells[name]
            row.append(measured_fn(spec, stats, result))
            row.append(spec.paper_stats[paper_key])
        rows.append(row)

    metric("objects N", lambda s, st, r: st["num_objects"], "num_objects")
    metric("time domain T", lambda s, st, r: st["time_domain_length"],
           "time_domain_length")
    metric("avg traj length", lambda s, st, r: round(st["average_trajectory_length"]),
           "average_trajectory_length")
    metric("data size (points)", lambda s, st, r: st["total_points"], "total_points")
    metric("m", lambda s, st, r: s.m, "m")
    metric("k (scaled)", lambda s, st, r: s.k, "k")
    metric("e", lambda s, st, r: s.eps, "eps")
    metric("delta (auto)", lambda s, st, r: round(r.delta, 1), "delta")
    metric("lambda (auto)", lambda s, st, r: r.lam, "lam")
    metric("convoys found", lambda s, st, r: len(r.convoys), "convoys_discovered")

    scales = ", ".join(f"{n}={BENCH_SCALES[n]}" for n in DATASET_NAMES)
    print_report(
        format_table(
            f"Table 3 — settings and discovered convoys (scales: {scales})",
            headers,
            rows,
        )
    )


if __name__ == "__main__":
    main()
