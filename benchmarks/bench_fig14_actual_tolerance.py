"""Figure 14 — effect of the actual tolerance on filter power and time.

The paper compares running CuTS* with the per-segment *actual* tolerances
δ(l') (Definition 4) against using the global δ everywhere: the actual
tolerance shrinks the range-search bounds, so the filter emits fewer
candidates (Fig 14(a)) and total discovery is faster (Fig 14(b)), with the
gain largest where trajectories are smooth relative to δ.
"""

import pytest

from benchmarks.common import DATASET_NAMES, dataset, print_report
from repro import cuts
from repro.bench import format_table

MODES = (("actual", True), ("global", False))


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("mode_name,use_actual", MODES)
def test_fig14_tolerance_mode(benchmark, name, mode_name, use_actual):
    spec = dataset(name)

    def run():
        return cuts(
            spec.database, spec.m, spec.k, spec.eps,
            variant="cuts*", use_actual_tolerance=use_actual,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "candidates": len(result.candidates),
            "refinement_unit": result.refinement_unit,
        }
    )


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_fig14_actual_tolerance_never_weaker(name):
    """The actual tolerance can only tighten the filter (Fig 14(a))."""
    spec = dataset(name)
    actual = cuts(
        spec.database, spec.m, spec.k, spec.eps,
        variant="cuts*", use_actual_tolerance=True,
    )
    global_tol = cuts(
        spec.database, spec.m, spec.k, spec.eps,
        variant="cuts*", use_actual_tolerance=False,
    )
    assert actual.refinement_unit <= global_tol.refinement_unit
    assert set(actual.convoys) == set(global_tol.convoys)


def main():
    rows = []
    for name in DATASET_NAMES:
        spec = dataset(name)
        cells = {}
        for mode_name, use_actual in MODES:
            result = cuts(
                spec.database, spec.m, spec.k, spec.eps,
                variant="cuts*", use_actual_tolerance=use_actual,
            )
            cells[mode_name] = result
        rows.append(
            [
                name,
                len(cells["global"].candidates),
                len(cells["actual"].candidates),
                round(cells["global"].refinement_unit / 1e3, 1),
                round(cells["actual"].refinement_unit / 1e3, 1),
                round(cells["global"].total_time, 3),
                round(cells["actual"].total_time, 3),
            ]
        )
    print_report(
        format_table(
            "Figure 14 — global vs actual tolerance (CuTS*)",
            ["dataset", "cand(global)", "cand(actual)",
             "ru/1e3(global)", "ru/1e3(actual)",
             "time(global)", "time(actual)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
