"""Ablation — published candidate semantics vs the complete semantics.

The reproduction ships two candidate-tracking rules (see
repro/core/candidates.py): the pseudocode of Algorithm 1 verbatim
(``paper_semantics=True``) and the default *complete* rule that seeds a
candidate for every cluster and reports runs when they narrow.  This bench
quantifies the difference the published rule's incompleteness makes:

* how many convoys the published rule misses relative to the complete one;
* whether filter-refinement remains exact under each rule (it provably is
  under the complete rule; under the published rule the pipeline can
  diverge from CMC — the very gap later convoy papers documented);
* the running-time cost of completeness.
"""

import pytest

from benchmarks.common import DATASET_NAMES, dataset, print_report
from repro import cmc, convoy_sets_equal, cuts, normalize_convoys
from repro.bench import format_table, time_call


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("semantics", ("complete", "published"))
def test_ablation_semantics_cmc(benchmark, name, semantics):
    spec = dataset(name)
    paper = semantics == "published"

    def run():
        return cmc(
            spec.database, spec.m, spec.k, spec.eps, paper_semantics=paper
        )

    convoys = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["convoys"] = len(normalize_convoys(convoys))


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_ablation_complete_semantics_supersets_published(name):
    """Every published-rule convoy is covered by a complete-rule convoy."""
    spec = dataset(name)
    complete = normalize_convoys(
        cmc(spec.database, spec.m, spec.k, spec.eps)
    )
    published = normalize_convoys(
        cmc(spec.database, spec.m, spec.k, spec.eps, paper_semantics=True)
    )
    for convoy in published:
        assert any(other.dominates(convoy) for other in complete), convoy


def main():
    rows = []
    for name in DATASET_NAMES:
        spec = dataset(name)
        complete, complete_s = time_call(
            cmc, spec.database, spec.m, spec.k, spec.eps
        )
        published, published_s = time_call(
            cmc, spec.database, spec.m, spec.k, spec.eps, paper_semantics=True
        )
        complete = normalize_convoys(complete)
        published = normalize_convoys(published)
        missed = sum(
            1
            for convoy in complete
            if not any(other.dominates(convoy) for other in published)
        )
        cuts_published = cuts(
            spec.database, spec.m, spec.k, spec.eps,
            variant="cuts*", paper_semantics=True,
        )
        exact_under_published = convoy_sets_equal(
            published, cuts_published.convoys
        )
        rows.append(
            [
                name,
                len(complete),
                len(published),
                missed,
                round(complete_s, 3),
                round(published_s, 3),
                "yes" if exact_under_published else "NO",
            ]
        )
    print_report(
        format_table(
            "Ablation — complete vs published candidate semantics (CMC)",
            ["dataset", "convoys (complete)", "convoys (published)",
             "missed by published", "time complete s", "time published s",
             "CuTS==CMC under published?"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
