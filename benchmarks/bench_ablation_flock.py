"""Ablation — the lossy-flock problem, quantified (Figure 1 / Section 1).

The paper's Figure 1 argument is about *elongated* groups: objects moving
in a line (a road platoon) are density-connected through neighbour-to-
neighbour links, but no disc of reasonable radius covers the whole line —
and a disc large enough to cover it swallows separate nearby groups.

The bench generates platoon-shaped groups (members strung out in a line
with spacing 0.75·e, so the line is density-connected at e while its ends
sit several e apart), runs the disc-based flock baseline over a sweep of
radii, and reports how many of the exact convoys each radius recovers
completely and how many distinct groups it merges.
"""

import math
import random

import pytest

from benchmarks.common import print_report
from repro import Trajectory, TrajectoryDatabase, cmc, discover_flocks, normalize_convoys
from repro.bench import format_table
from repro.datasets.movers import waypoint_positions

EPS = 8.0
M = 3
K = 10
RADIUS_FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)


def build_platoon_database(seed=3, num_groups=6, group_size=5, t_domain=60):
    """Groups of objects in single-file formation along shared routes."""
    rng = random.Random(seed)
    spacing = 0.75 * EPS  # neighbour gap: connected at e, ends far apart
    trajectories = []
    for g in range(num_groups):
        leader = waypoint_positions(
            rng, t_domain, area=60.0 * EPS, speed=EPS / 2.0, turn_jitter=0.03
        )
        heading = rng.uniform(0, 2 * math.pi)
        ux, uy = math.cos(heading), math.sin(heading)
        for slot in range(group_size):
            offset = slot * spacing
            points = [
                (
                    x + ux * offset + rng.gauss(0, EPS / 50),
                    y + uy * offset + rng.gauss(0, EPS / 50),
                    t,
                )
                for t, (x, y) in enumerate(leader)
            ]
            trajectories.append(Trajectory(f"g{g}m{slot}", points))
    return TrajectoryDatabase(trajectories)


def _exact(db):
    return normalize_convoys(cmc(db, M, K, EPS))


def _recovered(exact, flocks):
    return sum(
        1
        for convoy in exact
        if any(
            convoy.objects <= flock.objects
            and flock.t_start <= convoy.t_start
            and convoy.t_end <= flock.t_end
            for flock in flocks
        )
    )


def _merged_groups(flocks):
    """Flocks mixing members of different planted groups (over-capture)."""
    merged = 0
    for flock in flocks:
        groups = {str(obj).split("m")[0] for obj in flock.objects}
        if len(groups) > 1:
            merged += 1
    return merged


@pytest.fixture(scope="module")
def platoons():
    db = build_platoon_database()
    return db, _exact(db)


@pytest.mark.parametrize("factor", RADIUS_FACTORS)
def test_ablation_flock_radius(benchmark, factor):
    db = build_platoon_database()
    radius = EPS * factor

    def run():
        return discover_flocks(db, M, K, radius)

    flocks = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = _exact(db)
    benchmark.extra_info.update(
        {
            "flocks": len(flocks),
            "exact_convoys": len(exact),
            "recovered": _recovered(exact, flocks),
            "merged_groups": _merged_groups(flocks),
        }
    )


def test_ablation_small_disc_loses_members(platoons):
    """A disc of the density radius e cannot hold a full platoon."""
    db, exact = platoons
    assert exact
    flocks = discover_flocks(db, M, K, EPS)
    assert _recovered(exact, flocks) < len(exact)


def test_ablation_big_disc_merges_groups(platoons):
    """A disc big enough for a platoon's full length swallows neighbours."""
    db, _exact_res = platoons
    big = discover_flocks(db, M, K, EPS * 8.0)
    assert _merged_groups(big) > 0


def test_ablation_convoy_needs_no_radius_tuning(platoons):
    """The density-based convoy captures every full platoon at e."""
    db, exact = platoons
    full_platoons = [c for c in exact if c.size >= 5]
    assert full_platoons  # whole 5-member platoons are reported as convoys


def main():
    db = build_platoon_database()
    exact = _exact(db)
    rows = []
    for factor in RADIUS_FACTORS:
        radius = EPS * factor
        flocks = discover_flocks(db, M, K, radius)
        rows.append(
            [
                round(radius, 1),
                len(flocks),
                len(exact),
                _recovered(exact, flocks),
                round(100.0 * _recovered(exact, flocks) / len(exact), 1),
                _merged_groups(flocks),
            ]
        )
    print_report(
        format_table(
            "Ablation — lossy-flock problem on platoon formations "
            f"(m={M}, k={K}, convoy e={EPS:g})",
            ["disc radius", "flocks", "exact convoys", "fully recovered",
             "recovered %", "flocks merging groups"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
