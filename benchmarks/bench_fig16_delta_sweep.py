"""Figure 16 — effect of the simplification tolerance δ (Car and Taxi).

For each family member the paper sweeps δ and reports the *refinement
unit* (the Section 7.3 filter-effectiveness proxy) and the total elapsed
time.  Expected shapes: CuTS* has the lowest refinement unit and the best
time at every δ (its D* bounds are tightest); both metrics degrade as δ
grows, because δ inflates every range-search bound (e + 2δ).
"""

import pytest

from benchmarks.common import VARIANTS, dataset, print_report
from repro import cuts
from repro.bench import format_series

FIG16_DATASETS = ("car", "taxi")
DELTA_FRACTIONS = (0.05, 0.15, 0.3, 0.5)


def _run(spec, variant, delta):
    return cuts(
        spec.database, spec.m, spec.k, spec.eps, delta=delta, variant=variant
    )


@pytest.mark.parametrize("name", FIG16_DATASETS)
@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("fraction", DELTA_FRACTIONS)
def test_fig16_delta_sweep(benchmark, name, variant, fraction):
    spec = dataset(name)
    delta = spec.eps * fraction

    def run():
        return _run(spec, variant, delta)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "refinement_unit": result.refinement_unit,
            "candidates": len(result.candidates),
        }
    )


@pytest.mark.parametrize("name", FIG16_DATASETS)
def test_fig16_cuts_star_tightest_filter(name):
    """CuTS* must have the lowest refinement unit at every δ."""
    spec = dataset(name)
    for fraction in DELTA_FRACTIONS:
        delta = spec.eps * fraction
        units = {
            variant: _run(spec, variant, delta).refinement_unit
            for variant in VARIANTS
        }
        assert units["cuts*"] <= min(units["cuts"], units["cuts+"]) + 1e-9


@pytest.mark.parametrize("variant", VARIANTS)
def test_fig16_filter_degrades_with_delta_on_car(variant):
    """On Car the refinement unit grows (weak filter) as δ grows — the
    paper's "both the filters' effectiveness and the discovery efficiency
    decrease as the tolerance value increases".  (On Taxi the paper itself
    observes near-flat curves — "the elapsed times of the Taxi data stay
    almost constant" — so no growth is asserted there.)"""
    spec = dataset("car")
    low = _run(spec, variant, spec.eps * DELTA_FRACTIONS[0]).refinement_unit
    high = _run(spec, variant, spec.eps * DELTA_FRACTIONS[-1]).refinement_unit
    assert high >= low * 0.9


def main():
    for name in FIG16_DATASETS:
        spec = dataset(name)
        deltas = [round(spec.eps * f, 1) for f in DELTA_FRACTIONS]
        unit_series = {}
        time_series = {}
        for variant in VARIANTS:
            units = []
            times = []
            for fraction in DELTA_FRACTIONS:
                result = _run(spec, variant, spec.eps * fraction)
                units.append(round(result.refinement_unit / 1e3, 1))
                times.append(round(result.total_time, 3))
            unit_series[variant] = units
            time_series[variant] = times
        print_report(
            format_series(
                f"Figure 16 — refinement unit (x1e3) vs delta ({name})",
                "delta", deltas, unit_series,
            )
        )
        print_report(
            format_series(
                f"Figure 16 — elapsed time (s) vs delta ({name})",
                "delta", deltas, time_series,
            )
        )


if __name__ == "__main__":
    main()
