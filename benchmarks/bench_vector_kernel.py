"""Vector numeric backend — kernel-level speedup over the python backend.

The vector backend (``repro.clustering.numeric``) rewrites the three
per-tick hot kernels — neighborhood search, incremental cluster
patching, and candidate matching — over contiguous numeric arrays.  Its
contract is bit-for-bit equivalence (proven exhaustively by
``tests/streaming/test_vector_equivalence.py``); this bench answers the
only remaining question: **is it actually faster, and by how much?**

Three workloads, each isolating a different kernel mix:

* ``tracker`` — the tracker-bound replay workload from the sharding
  bench: snapshots are clustered once up front and replayed, so the
  per-tick cost is almost entirely ``match_candidates`` joining
  hundreds of clusters against >1000 live candidates.  This is the
  acceptance row: the vector backend must clear ``VECTOR_BAR`` (3x)
  unsharded snapshots/sec over the python backend when numpy is
  available.
* ``dbscan`` — fresh density clustering of every snapshot (batch
  neighborhood search dominating).
* ``incremental`` — the full incremental pipeline on a churn stream
  (delta patching plus matching).

Every workload's per-tick emissions are asserted equal between the two
backends on every run, so the speedups carry no semantic caveats.

Run ``python benchmarks/bench_vector_kernel.py`` for the table,
``--smoke`` for a seconds-long CI-sized run (equivalence assertions
only), and ``--json PATH`` for the machine-readable record CI uploads
as a perf-trajectory artifact (``BENCH_vector_kernel.json``).
"""

import argparse
import time

from benchmarks.bench_sharded_scaling import (
    EPS,
    FULL_SCALE,
    K,
    M,
    SMOKE_SCALE,
    ReplayClusterer,
    make_workload,
)
from benchmarks.common import print_report, safe_rate, write_bench_json
from repro.bench import format_table
from repro.clustering.numeric import have_numpy
from repro.streaming import StreamingConvoyMiner, churn_stream

#: vector backend must clear this speedup on the tracker-bound workload
#: (full mode, numpy available).
VECTOR_BAR = 3.0

FULL_CHURN = dict(n_objects=900, n_snapshots=50)
SMOKE_CHURN = dict(n_objects=120, n_snapshots=12)


def run_tracker(snapshots, clusters, backend):
    """Tracker-bound run: precomputed clusters, cost ~= matching only."""
    miner = StreamingConvoyMiner(
        M, K, EPS, clusterer=ReplayClusterer(clusters), backend=backend,
    )
    emitted = []
    started = time.perf_counter()
    for t, snapshot in enumerate(snapshots):
        emitted.append(miner.feed(t, snapshot))
    emitted.append(miner.flush())
    return emitted, time.perf_counter() - started


def run_dbscan(snapshots, _clusters, backend):
    """Clustering-bound run: fresh DBSCAN per tick, tiny candidate set."""
    miner = StreamingConvoyMiner(M, K, EPS, backend=backend)
    emitted = []
    started = time.perf_counter()
    for t, snapshot in enumerate(snapshots):
        emitted.append(miner.feed(t, snapshot))
    emitted.append(miner.flush())
    return emitted, time.perf_counter() - started


def run_incremental(ticks, backend, match_kernel=None, warmup=0):
    """Full incremental pipeline on a churn stream (delta + matching).

    ``warmup`` leading ticks are fed but not timed — the dispatch
    comparison excludes the auto kernel's exploration probes the same
    way ``bench_match_kernel.py`` does, so it measures the settled
    policy rather than the cold start.
    """
    miner = StreamingConvoyMiner(
        M, K, EPS, clusterer="incremental", backend=backend,
        match_kernel=match_kernel,
    )
    emitted = []
    seconds = 0.0
    for i, (t, snapshot) in enumerate(ticks):
        started = time.perf_counter()
        emitted.append(miner.feed(t, snapshot))
        if i >= warmup:
            seconds += time.perf_counter() - started
    emitted.append(miner.flush())
    return emitted, seconds


def compare_backends(workload, runner, n_snapshots):
    """Run python then vector; assert identical emissions; build one row."""
    python_emitted, python_seconds = runner("python")
    vector_emitted, vector_seconds = runner("vector")
    assert vector_emitted == python_emitted, (
        f"vector backend diverged from python on the {workload} workload"
    )
    speedup = (
        python_seconds / vector_seconds if vector_seconds > 0 else None
    )
    return {
        "workload": workload,
        "snapshots": n_snapshots,
        "python_rate": safe_rate(n_snapshots, python_seconds),
        "vector_rate": safe_rate(n_snapshots, vector_seconds),
        "speedup": speedup,
        "python_seconds": python_seconds,
        "vector_seconds": vector_seconds,
        "convoys": sum(len(batch) for batch in python_emitted),
        "dispatch": None,
    }


def run_all(smoke):
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    churn_scale = SMOKE_CHURN if smoke else FULL_CHURN
    snapshots, clusters = make_workload(scale)
    ticks = list(churn_stream(
        churn_scale["n_objects"], churn_scale["n_snapshots"], seed=42,
        eps=EPS, churn=0.15, area=36.0 * EPS,
    ))
    rows = [
        compare_backends(
            "tracker",
            lambda backend: run_tracker(snapshots, clusters, backend),
            len(snapshots),
        ),
        compare_backends(
            "dbscan",
            lambda backend: run_dbscan(snapshots, clusters, backend),
            len(snapshots),
        ),
        compare_backends(
            "incremental",
            lambda backend: run_incremental(ticks, backend),
            len(ticks),
        ),
    ]
    # The incremental row is the small-delta regime where the batched
    # vector join loses (the historical 0.83x): re-run it under the
    # auto kernel dispatcher and record the ratio.  The dispatcher
    # settles on the scalar kernel here; the residual loss it cannot
    # recover is the vector backend's delta-patching overhead, which no
    # match-kernel choice touches — the clean kernel-policy comparison
    # (same backend, kernels only) is bench_match_kernel's small-delta
    # regime, asserted at >=0.95x there.  Both sides of this ratio
    # exclude the same warmup window so the dispatcher's one-time
    # exploration probes are not billed to the settled policy.
    warmup = min(8, len(ticks) // 2)
    _, python_warm = run_incremental(ticks, "python", warmup=warmup)
    auto_emitted, auto_warm = run_incremental(
        ticks, "vector", "auto", warmup=warmup
    )
    incremental = rows[-1]
    assert (
        sum(len(batch) for batch in auto_emitted)
        == incremental["convoys"]
    ), "auto dispatch diverged on the incremental workload"
    incremental["dispatch"] = (
        python_warm / auto_warm if auto_warm > 0 else None
    )
    return scale, churn_scale, rows


def fmt_rate(rate):
    return round(rate, 1) if rate is not None else "-"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny workloads, equivalence assertions only "
        "(timings are not meaningful)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(rates, speedups, git SHA)",
    )
    args = parser.parse_args(argv)
    numpy_available = have_numpy()
    scale, churn_scale, rows = run_all(args.smoke)
    table_rows = [[
        row["workload"],
        row["snapshots"],
        fmt_rate(row["python_rate"]),
        fmt_rate(row["vector_rate"]),
        f"{row['speedup']:.2f}x" if row["speedup"] is not None else "-",
    ] for row in rows]
    print_report(
        format_table(
            "Vector numeric backend vs python backend "
            f"(m={M}, k={K}, e={EPS:g}, numpy="
            f"{'yes' if numpy_available else 'no — fallback kernels'}; "
            "identical convoys asserted every run)",
            ["workload", "snapshots", "python snap/s", "vector snap/s",
             "speedup"],
            table_rows,
        )
    )
    if args.json:
        write_bench_json(
            args.json, "vector_kernel",
            dict(m=M, k=K, eps=EPS, smoke=args.smoke,
                 numpy=numpy_available, tracker_scale=scale,
                 churn_scale=churn_scale),
            rows,
        )
        print(f"json results written to {args.json}")
    if args.smoke:
        print("smoke ok: vector backend agrees with the python backend "
              "on every workload")
        return 0
    tracker = rows[0]
    if not numpy_available:
        print(
            "note: numpy unavailable — the fallback kernels only promise "
            f"equivalence, so the {VECTOR_BAR:.1f}x tracker bar is "
            f"skipped (observed {tracker['speedup']:.2f}x)"
        )
        return 0
    if tracker["speedup"] is None or tracker["speedup"] < VECTOR_BAR:
        raise SystemExit(
            f"acceptance failure: vector backend reached "
            f"{tracker['speedup']:.2f}x on the tracker-bound workload, "
            f"below the {VECTOR_BAR:.1f}x bar"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
