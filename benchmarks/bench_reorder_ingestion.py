"""Out-of-order ingestion — snapshots/sec and buffer occupancy by lateness.

The reorder buffer buys out-of-order tolerance with two bounded costs:
latency (a snapshot waits until the watermark passes it) and memory (the
pending heap).  This bench charts both against the ``allowed_lateness``
setting, for all three clusterer pipelines, on identically jittered
``churn_stream`` feeds:

* ``full``  — fresh DBSCAN per tick + classic candidate advance;
* ``pr2``   — incremental clustering, delta withheld (classic advance);
* ``delta`` — incremental clustering with the cluster diff propagated
  into the candidate tracker.

Each lateness row feeds a stream jittered to just fit the watermark
(``jitter = allowed_lateness``), so the buffer genuinely reorders on
most ticks; every run's convoys are asserted identical to the in-order,
bufferless run of the same pipeline (the differential suite in
``tests/streaming/test_reorder_equivalence.py`` proves the general
claim, the bench re-checks it on its own data).  The headline numbers
are snapshots/sec through the buffered path and the buffer's peak
occupancy, which must stay within the watermark bound (about
``jitter`` pending snapshots, never the whole stream).

Run ``python benchmarks/bench_reorder_ingestion.py`` for the table,
``--smoke`` for a seconds-long CI-sized run (equivalence and
occupancy-bound assertions only), and ``--json PATH`` to write the
machine-readable record CI uploads as a perf-trajectory artifact.
"""

import argparse
import time

import pytest

from benchmarks.common import print_report, write_bench_json
from repro.bench import format_table
from repro.clustering.incremental import IncrementalSnapshotClusterer
from repro.streaming import StreamingConvoyMiner, churn_stream

M, K, EPS = 3, 10, 10.0
CHURN = 0.05

#: lateness settings swept by the CLI report (time units of watermark lag).
LATENESS_LEVELS = (2, 8, 32)

PIPELINES = ("full", "pr2", "delta")

FULL_SCALE = dict(n_objects=600, n_snapshots=120, turnover=0.01,
                  area=30.0 * EPS)
SMOKE_SCALE = dict(n_objects=100, n_snapshots=30, turnover=0.01,
                   area=12.0 * EPS)


class ClusterOnly:
    """Hide ``cluster_with_delta``: PR 2's pipeline, byte for byte."""

    def __init__(self, inner):
        self.inner = inner

    def cluster(self, snapshot):
        return self.inner.cluster(snapshot)


def make_ticks(jitter, *, n_objects, n_snapshots, turnover, area, seed=42):
    """One jittered churn stream, materialized so every pipeline and the
    in-order baseline see the same data."""
    return list(churn_stream(
        n_objects, n_snapshots, seed=seed, eps=EPS, churn=CHURN,
        turnover=turnover, area=area, jitter=jitter,
    ))


def make_miner(pipeline, lateness=None):
    clusterer = None
    if pipeline != "full":
        clusterer = IncrementalSnapshotClusterer(EPS, M)
        if pipeline == "pr2":
            clusterer = ClusterOnly(clusterer)
    reorder = None if lateness is None else dict(allowed_lateness=lateness)
    return StreamingConvoyMiner(M, K, EPS, clusterer=clusterer,
                                reorder=reorder)


def run_pipeline(pipeline, ticks, lateness=None):
    """Feed one pipeline; return (convoys, counters, seconds)."""
    miner = make_miner(pipeline, lateness)
    convoys = []
    started = time.perf_counter()
    for t, snapshot in ticks:
        convoys.extend(miner.feed(t, snapshot))
    convoys.extend(miner.flush())
    seconds = time.perf_counter() - started
    counters = dict(miner.counters)
    if miner.reorder is not None:
        counters.update(miner.reorder.counters)
    return convoys, counters, seconds


def inorder_baselines(scale):
    """One in-order, bufferless run per pipeline.

    Jitter only permutes arrival order, so the sorted stream — and hence
    the baseline — is identical for every lateness level; measuring it
    once keeps the bench from re-paying the slowest runs per row.
    """
    inorder = make_ticks(0, **scale)
    return {
        pipeline: run_pipeline(pipeline, inorder)
        for pipeline in PIPELINES
    }


def compare(lateness, scale, baselines):
    """Run all pipelines at one lateness; assert buffered == in-order
    convoys per pipeline and the occupancy bound; return the result row."""
    jittered = make_ticks(lateness, **scale)
    row = {"lateness": lateness, "snapshots": len(jittered)}
    for pipeline in PIPELINES:
        base_convoys, _c, base_seconds = baselines[pipeline]
        convoys, counters, seconds = run_pipeline(
            pipeline, jittered, lateness=lateness
        )
        assert convoys == base_convoys, (
            f"{pipeline} pipeline through the reorder buffer diverged "
            f"from its in-order run at lateness={lateness}"
        )
        assert counters["late_dropped"] == 0, (
            f"jitter within lateness must never drop: {counters}"
        )
        assert counters["peak_pending"] <= lateness + 1, (
            f"buffer occupancy {counters['peak_pending']} exceeded the "
            f"watermark bound at lateness={lateness}"
        )
        n = len(jittered)
        row[f"{pipeline}_rate"] = n / seconds
        row[f"{pipeline}_inorder_rate"] = n / base_seconds
        if pipeline == "delta":
            row["convoys"] = len(convoys)
            row["reordered_snapshots"] = counters["reordered_snapshots"]
            row["peak_pending"] = counters["peak_pending"]
            row["overhead_pct"] = 100.0 * (seconds / base_seconds - 1.0)
    return row


@pytest.mark.parametrize("lateness", [2, 8])
def test_reorder_ingestion_benchmark(benchmark, lateness):
    ticks = make_ticks(lateness, **SMOKE_SCALE)

    def run():
        return run_pipeline("delta", ticks, lateness=lateness)

    _convoys, counters, seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["snapshots_per_sec"] = round(
        len(ticks) / seconds, 1
    )
    benchmark.extra_info["peak_pending"] = counters["peak_pending"]


def test_buffered_equals_inorder_all_pipelines():
    """The bench's own equivalence check, exercised at test time too."""
    baselines = inorder_baselines(SMOKE_SCALE)
    for lateness in (2, 8):
        compare(lateness, SMOKE_SCALE, baselines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny stream, equivalence and occupancy-bound "
        "assertions only (timings are not meaningful)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(params, rates, occupancy, git SHA)",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    baselines = inorder_baselines(scale)
    rows = []
    table_rows = []
    for lateness in LATENESS_LEVELS:
        row = compare(lateness, scale, baselines)
        rows.append(row)
        table_rows.append([
            lateness,
            row["snapshots"],
            row["convoys"],
            row["reordered_snapshots"],
            row["peak_pending"],
            round(row["full_rate"], 1),
            round(row["pr2_rate"], 1),
            round(row["delta_rate"], 1),
            f"{row['delta_rate'] / row['delta_inorder_rate']:.2f}x",
        ])
        if args.smoke and row["reordered_snapshots"] == 0:
            raise SystemExit(
                f"smoke failure: the buffer never reordered at lateness "
                f"{lateness}"
            )
    print_report(
        format_table(
            "Out-of-order ingestion — jittered churn_stream "
            f"({scale['n_objects']} objects, churn {CHURN:.0%}, m={M}, "
            f"k={K}, e={EPS:g}; buffered convoys == in-order convoys "
            "asserted for every pipeline)",
            ["lateness", "snapshots", "convoys", "reordered", "peak buf",
             "full snap/s", "pr2 snap/s", "delta snap/s", "vs in-order"],
            table_rows,
        )
    )
    if args.json:
        write_bench_json(
            args.json, "reorder_ingestion",
            dict(m=M, k=K, eps=EPS, churn=CHURN, smoke=args.smoke,
                 lateness_levels=list(LATENESS_LEVELS), **scale),
            rows,
        )
        print(f"json results written to {args.json}")
    if args.smoke:
        print("smoke ok: buffered == in-order for every pipeline, "
              "occupancy within the watermark bound, reordering exercised")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
