"""Multi-tenant ingestion service — tenants × snapshots/sec, per-tick
latency percentiles, and the backpressure isolation proof.

The service multiplexes many tenants' miners over one bounded worker
pool (``repro.service``); this bench measures what that sharing costs
and proves what it must not cost:

* **solo** — one tenant on the service: the per-tenant baseline rate
  and per-tick latency distribution (p50/p95/p99);
* **fleet** — eight tenants (alternating full-pass and incremental
  pipelines) ingesting concurrently, each on its own connection: the
  fair-share throughput under saturation;
* **backpressure** — one deliberately slow tenant (``tick_delay`` in
  its worker step, a small ``max_queue`` high-water mark) next to a
  fast default tenant.  The bench asserts the contract: the slow
  tenant's queue stays bounded at its high-water mark with throttled
  enqueues observed (credit-based backpressure engaged, nothing
  dropped), and the fast tenant's per-step throughput stays within 20%
  of the solo baseline — one tenant's slowness must not starve the
  others.

Per-tick latency is measured by the dispatcher around each worker step,
so the percentiles isolate miner service time from client I/O; the
fast-vs-solo bar uses the same step clock (``step_rate``) because wall
rates on second-long smoke runs drown in connection setup noise.

Run ``python benchmarks/bench_service_ingestion.py`` for the table,
``--smoke`` for a seconds-long CI-sized run (backpressure assertions
only), and ``--json PATH`` for the machine-readable record CI uploads
(``BENCH_service_ingestion.json``).
"""

import argparse
import asyncio
import math
import time

import pytest

from benchmarks.common import print_report, safe_rate, write_bench_json
from repro.bench import format_table
from repro.service import IngestionServer, ServiceClient
from repro.streaming import churn_stream

M, K, EPS = 3, 3, 6.0

BASE_CONFIG = dict(m=M, k=K, eps=EPS)

#: The slow tenant's per-tick sleep and high-water mark.
SLOW_TICK_DELAY = 0.003
SLOW_MAX_QUEUE = 8

FULL_SCALE = dict(n_objects=40, n_snapshots=200)
SMOKE_SCALE = dict(n_objects=12, n_snapshots=30)

FLEET_SIZE = 8

#: Fields every result row carries (pinned by the schema guard in
#: ``tests/test_bench_harness.py``).
ROW_KEYS = {
    "run", "tenant", "snapshots", "rate", "step_rate", "p50_ms",
    "p95_ms", "p99_ms", "peak_queue", "throttled_waits", "convoys",
}


def tenant_ticks(index, scale):
    """Each tenant's own deterministic churn workload."""
    return list(churn_stream(
        seed=500 + index, eps=EPS, churn=0.15, turnover=0.05,
        area=60.0, **scale,
    ))


def percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending-sorted list."""
    if not sorted_values:
        return None
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[min(len(sorted_values) - 1, max(0, rank - 1))]


async def drive(server, name, config, ticks, batch=8):
    """One tenant's full ingestion on its own connection.

    Returns ``(answer, session, wall_seconds)`` — the session object is
    kept past retirement for its latency samples and service counters.
    """
    started = time.perf_counter()
    async with ServiceClient("127.0.0.1", server.port) as client:
        await client.hello(name, config)
        session = server.sessions[name]
        for start in range(0, len(ticks), batch):
            await client.feed(name, ticks[start:start + batch])
        answer = await client.flush(name)
    return answer, session, time.perf_counter() - started


def make_row(run, name, answer, session, seconds, n_ticks):
    latencies = sorted(session.latencies)
    step_seconds = sum(latencies)
    return {
        "run": run,
        "tenant": name,
        "snapshots": n_ticks,
        "rate": safe_rate(n_ticks, seconds),
        "step_rate": safe_rate(n_ticks, step_seconds),
        "p50_ms": _ms(percentile(latencies, 50)),
        "p95_ms": _ms(percentile(latencies, 95)),
        "p99_ms": _ms(percentile(latencies, 99)),
        "peak_queue": session.service_counters["peak_queue"],
        "throttled_waits": session.service_counters["throttled_waits"],
        "convoys": len(answer["convoys"]),
    }


def _ms(seconds):
    return None if seconds is None else round(seconds * 1000.0, 4)


def run_tenants(run_name, specs, scale, max_workers):
    """Run ``specs`` (name -> config) concurrently; one row per tenant."""
    feeds = {
        name: tenant_ticks(i, scale)
        for i, name in enumerate(specs)
    }

    async def go():
        async with IngestionServer(max_workers=max_workers) as server:
            results = await asyncio.gather(*(
                drive(server, name, specs[name], feeds[name])
                for name in specs
            ))
        return results

    results = asyncio.run(go())
    rows = []
    for name, (answer, session, seconds) in zip(specs, results):
        assert answer["counters"]["snapshots"] == len(feeds[name]), (
            f"tenant {name} lost snapshots: {answer['counters']}"
        )
        rows.append(make_row(
            run_name, name, answer, session, seconds, len(feeds[name])
        ))
    return rows


def fleet_specs():
    """Eight tenants alternating full-pass and incremental pipelines."""
    specs = {}
    for i in range(FLEET_SIZE):
        config = dict(BASE_CONFIG)
        if i % 2:
            config["clusterer"] = "incremental"
        specs[f"tenant-{i}"] = config
    return specs


def run_suite(smoke=False):
    """All three runs; returns the rows with the backpressure contract
    already asserted."""
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    rows = run_tenants(
        "solo", {"solo": dict(BASE_CONFIG)}, scale, max_workers=2
    )
    solo = rows[0]
    rows += run_tenants("fleet", fleet_specs(), scale, max_workers=4)
    slow_config = dict(
        BASE_CONFIG, tick_delay=SLOW_TICK_DELAY,
        max_queue=SLOW_MAX_QUEUE,
    )
    bp_rows = run_tenants(
        "backpressure",
        {"slow": slow_config, "fast": dict(BASE_CONFIG)},
        scale, max_workers=2,
    )
    rows += bp_rows
    slow = next(r for r in bp_rows if r["tenant"] == "slow")
    fast = next(r for r in bp_rows if r["tenant"] == "fast")

    # The backpressure contract.  Queue bounded at the high-water mark
    # with real throttled waits: the feed was flow-controlled, never
    # buffered without bound and never dropped.
    assert slow["throttled_waits"] > 0, (
        f"the slow tenant never hit its high-water mark: {slow}"
    )
    # Tick enqueues wait at the mark; control steps (drain/flush) skip
    # the throttle, so the hard bound is the mark plus one.
    assert slow["peak_queue"] <= SLOW_MAX_QUEUE + 1, (
        f"slow tenant queue {slow['peak_queue']} exceeded its "
        f"high-water mark {SLOW_MAX_QUEUE}"
    )
    # Isolation: the slow tenant sleeps in its worker slot; the fast
    # tenant's per-step throughput must stay within 20% of solo.
    assert fast["step_rate"] >= 0.8 * solo["step_rate"], (
        f"a slow neighbor degraded the fast tenant: "
        f"{fast['step_rate']:.1f}/s vs solo {solo['step_rate']:.1f}/s"
    )
    return rows


def test_backpressure_bounds_queue_and_isolates_tenants():
    """The bench's own contract, exercised at test time on smoke scale."""
    rows = run_suite(smoke=True)
    assert {row["run"] for row in rows} == {
        "solo", "fleet", "backpressure"
    }
    for row in rows:
        assert set(row) == ROW_KEYS


def test_service_ingestion_benchmark(benchmark):
    ticks_per_tenant = SMOKE_SCALE["n_snapshots"]

    def run():
        return run_tenants(
            "fleet", fleet_specs(), SMOKE_SCALE, max_workers=4
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    total = FLEET_SIZE * ticks_per_tenant
    seconds = sum(
        row["snapshots"] / row["rate"] for row in rows if row["rate"]
    ) or None
    benchmark.extra_info["tenants"] = FLEET_SIZE
    benchmark.extra_info["snapshots"] = total
    if seconds:
        benchmark.extra_info["snapshots_per_sec"] = round(
            total / seconds, 1
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny streams, backpressure assertions only "
        "(timings are not meaningful)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as machine-readable JSON "
        "(rates, latency percentiles, queue counters, git SHA)",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    rows = run_suite(smoke=args.smoke)
    table_rows = [
        [
            row["run"], row["tenant"], row["snapshots"],
            round(row["rate"], 1) if row["rate"] else None,
            round(row["step_rate"], 1) if row["step_rate"] else None,
            row["p50_ms"], row["p95_ms"], row["p99_ms"],
            row["peak_queue"], row["throttled_waits"],
        ]
        for row in rows
    ]
    print_report(
        format_table(
            "Multi-tenant ingestion service — churn_stream "
            f"({scale['n_objects']} objects x {scale['n_snapshots']} "
            f"ticks per tenant, m={M}, k={K}, e={EPS:g}; backpressure "
            "bounds and fast-tenant isolation asserted)",
            ["run", "tenant", "snapshots", "snap/s", "step/s",
             "p50 ms", "p95 ms", "p99 ms", "peak q", "throttled"],
            table_rows,
        )
    )
    if args.json:
        write_bench_json(
            args.json, "service_ingestion",
            dict(m=M, k=K, eps=EPS, smoke=args.smoke,
                 fleet_size=FLEET_SIZE, slow_tick_delay=SLOW_TICK_DELAY,
                 slow_max_queue=SLOW_MAX_QUEUE, **scale),
            rows,
        )
        print(f"json results written to {args.json}")
    if args.smoke:
        print("smoke ok: slow tenant throttled at its high-water mark, "
              "fast tenant within 20% of solo step rate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
