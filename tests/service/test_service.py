"""Unit and integration suite for the ingestion service.

Everything runs in-process: an :class:`~repro.service.IngestionServer`
on a loopback socket, driven by
:class:`~repro.service.client.ServiceClient` inside ``asyncio.run``
(the test extra has no async plugin, so every test is a sync function
owning its own event loop).

Covers the session/dispatcher mechanics (credit-based backpressure,
least-recently-served fairness, error isolation, the idle-drain seam)
and the service-level counter contract (aggregation across tenants;
no counter aliasing between sessions).
"""

import asyncio

import pytest

from repro.service import (
    IngestionServer,
    ProtocolError,
    ServiceClient,
    ServiceError,
    TenantSession,
    build_miner,
)
from repro.service.protocol import encode, encode_snapshot
from repro.streaming import synthetic_stream

CFG = {"m": 3, "k": 3, "eps": 2.5}


def feed_ticks(n_objects=12, n_snapshots=12, seed=3, eps=2.5):
    return list(synthetic_stream(n_objects, n_snapshots, seed=seed, eps=eps))


class TestBuildMiner:
    def test_unknown_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown config key"):
            build_miner(dict(CFG, bogus=1))

    def test_missing_required_key_rejected(self):
        with pytest.raises(ProtocolError, match="missing required key 'eps'"):
            build_miner({"m": 3, "k": 3})

    def test_bad_miner_parameters_rejected(self):
        with pytest.raises(ProtocolError, match="bad miner config"):
            build_miner(dict(CFG, eps=-1.0))
        with pytest.raises(ProtocolError, match="bad miner config"):
            build_miner(dict(CFG, executor="thread"))  # executor sans shards

    def test_bad_service_knobs_rejected(self):
        with pytest.raises(ProtocolError, match="tick_delay"):
            build_miner(dict(CFG, tick_delay=-0.5))
        with pytest.raises(ProtocolError, match="max_queue"):
            build_miner(dict(CFG, max_queue=0))

    def test_non_dict_config_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            build_miner([1, 2])


class TestSessionBackpressure:
    def test_enqueue_waits_at_the_high_water_mark(self):
        async def run():
            miner, _, _ = build_miner(CFG)
            session = TenantSession("a", miner, max_queue=2)
            await session.enqueue(0, {})
            await session.enqueue(1, {})
            blocked = asyncio.ensure_future(session.enqueue(2, {}))
            await asyncio.sleep(0.02)
            assert not blocked.done(), "third enqueue should be throttled"
            assert session.service_counters["throttled_waits"] == 1
            # Draining below the mark grants credit and unblocks it.
            session.pop_step()
            session.grant_credit()
            await asyncio.wait_for(blocked, timeout=2)
            assert len(session) == 2
            assert session.service_counters["peak_queue"] == 2
            session.abort_sync()
        asyncio.run(run())

    def test_abort_releases_a_throttled_writer(self):
        async def run():
            miner, _, _ = build_miner(CFG)
            session = TenantSession("a", miner, max_queue=1)
            await session.enqueue(0, {})
            blocked = asyncio.ensure_future(session.enqueue(1, {}))
            await asyncio.sleep(0.02)
            session.abort_sync("gone")
            with pytest.raises(ProtocolError, match="failed: gone"):
                await asyncio.wait_for(blocked, timeout=2)
        asyncio.run(run())


class TestDispatcherFairness:
    def test_least_recently_served_alternates_under_one_worker(self):
        from repro.service.dispatcher import Dispatcher

        order = []

        class Spy(TenantSession):
            def step_sync(self, kind, t, snapshot):
                if kind == "tick":
                    order.append(self.tenant)
                return super().step_sync(kind, t, snapshot)

        async def run():
            dispatcher = Dispatcher(max_workers=1)
            dispatcher.start()
            sessions = []
            for name in ("a", "b", "c"):
                miner, _, _ = build_miner({"m": 2, "k": 2, "eps": 1.0})
                session = Spy(name, miner, max_queue=16)
                for t in range(4):
                    await session.enqueue(t, {"x": (0.0, 0.0)})
                sessions.append(session)
            for session in sessions:
                dispatcher.notify(session)
            while any(len(s) or s.in_flight for s in sessions):
                await asyncio.sleep(0.01)
            await dispatcher.stop()
            for session in sessions:
                session.abort_sync()
        asyncio.run(run())
        # With every queue pre-filled and one worker, LRS is exact
        # round-robin: each tenant appears once per consecutive triple.
        assert len(order) == 12
        for i in range(0, 12, 3):
            assert set(order[i:i + 3]) == {"a", "b", "c"}, order


class TestServiceEndToEnd:
    def test_two_tenants_one_connection(self):
        ticks = feed_ticks()

        async def run():
            async with IngestionServer(max_workers=2) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.hello("a", CFG)
                    await client.hello("b", dict(CFG, backend="vector"))
                    for start in range(0, len(ticks), 5):
                        chunk = ticks[start:start + 5]
                        await client.feed("a", chunk)
                        await client.feed("b", chunk)
                    first = await client.flush("a")
                    second = await client.flush("b")
                return first, second, server.aggregate()

        first, second, totals = asyncio.run(run())
        assert first["convoys"] == second["convoys"]
        assert first["counters"]["snapshots"] == len(ticks)
        assert totals["tenants"] == 2
        assert totals["ticks"] == 2 * len(ticks)
        assert totals["failed_steps"] == 0

    def test_duplicate_tenant_rejected(self):
        async def run():
            async with IngestionServer() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.hello("a", CFG)
                    with pytest.raises(ServiceError, match="already open"):
                        await client.hello("a", CFG)
        asyncio.run(run())

    def test_unknown_tenant_rejected(self):
        async def run():
            async with IngestionServer() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ServiceError, match="unknown tenant"):
                        await client.flush("ghost")
        asyncio.run(run())

    def test_bad_config_fails_only_the_hello(self):
        async def run():
            async with IngestionServer() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ServiceError, match="bad miner config"):
                        await client.hello("a", dict(CFG, eps=-2.0))
                    # The connection survives; the name is still free.
                    await client.hello("a", CFG)
                    answer = await client.flush("a")
                    assert answer["convoys"] == []
        asyncio.run(run())

    def test_failed_feed_kills_only_its_session(self):
        async def run():
            async with IngestionServer() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.hello("bad", dict(CFG, m=2, k=2))
                    await client.hello("good", dict(CFG, m=2, k=2))
                    snapshot = {"x": (0.0, 0.0), "y": (0.5, 0.0)}
                    # Disordered feed without a reorder buffer: the
                    # second tick's step raises inside the miner.
                    await client.feed("bad", [(5, snapshot), (3, snapshot)])
                    with pytest.raises(
                        (ServiceError, ConnectionError)
                    ):
                        await client.flush("bad")
                    await client.feed("good", [(0, snapshot), (1, snapshot)])
                    answer = await client.flush("good")
                    assert len(answer["convoys"]) == 1
                    return server.aggregate()
            return None

        totals = asyncio.run(run())
        assert totals["failed_steps"] == 1

    def test_drain_releases_a_capacity_only_buffer(self):
        snapshot = {"x": (0.0, 0.0), "y": (0.5, 0.0)}

        async def run():
            async with IngestionServer() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    config = dict(
                        CFG, m=2, k=2, reorder={"max_pending": 100}
                    )
                    await client.hello("a", config)
                    await client.feed(
                        "a", [(t, snapshot) for t in range(6)]
                    )
                    await client.drain("a")
                    answer = await client.flush("a")
                return answer

        answer = asyncio.run(run())
        # The capacity-only buffer (far below max_pending) would have
        # held every tick; the drain pushed them through.
        assert answer["convoys"] == [
            {"objects": ["x", "y"], "t_start": 0, "t_end": 5}
        ]
        assert answer["service"]["drains"] == 1
        assert answer["counters"]["snapshots"] == 6

    def test_feed_frame_larger_than_asyncio_default_limit(self):
        """One NDJSON frame well past asyncio's 64 KiB readline default
        must survive both directions (regression: the default limit
        truncated large batches and killed the connection)."""
        ticks = feed_ticks(n_objects=60, n_snapshots=80, seed=9)
        frame = encode({
            "type": "feed",
            "tenant": "big",
            "ticks": [[t, encode_snapshot(s)] for t, s in ticks],
        })
        assert len(frame) > 64 * 1024

        async def run():
            async with IngestionServer(max_workers=2) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.hello("big", CFG)
                    await client.feed("big", ticks)  # one frame
                    return await client.flush("big")

        answer = asyncio.run(run())
        assert answer["counters"]["snapshots"] == len(ticks)


class TestCounterContract:
    def test_sessions_never_alias_counter_state(self):
        """Two concurrent sessions: miner counters, service counters,
        and latency logs are all distinct objects (satellite: no
        shared-mutable-default leaks across sessions)."""
        async def run():
            async with IngestionServer() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.hello("a", dict(CFG, m=2, k=2))
                    await client.hello("b", dict(CFG, m=2, k=2))
                    one = server.sessions["a"]
                    two = server.sessions["b"]
                    assert one.miner.counters is not two.miner.counters
                    assert (one.service_counters
                            is not two.service_counters)
                    assert one.latencies is not two.latencies
                    snapshot = {"x": (0.0, 0.0), "y": (0.5, 0.0)}
                    await client.feed("a", [(0, snapshot), (1, snapshot)])
                    first = await client.flush("a")
                    second = await client.flush("b")
                return first, second

        first, second = asyncio.run(run())
        assert first["counters"]["snapshots"] == 2
        assert second["counters"]["snapshots"] == 0
        assert first["service"]["ticks"] == 2
        assert second["service"]["ticks"] == 0

    def test_service_counters_never_leak_into_miner_counters(self):
        ticks = feed_ticks(n_objects=8, n_snapshots=8)

        async def run():
            async with IngestionServer() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.hello("a", CFG)
                    await client.feed("a", ticks)
                    return await client.flush("a")

        answer = asyncio.run(run())
        for key in answer["service"]:
            assert key not in answer["counters"], (
                f"service bookkeeping key {key!r} leaked into the "
                "miner's counters"
            )

    def test_aggregate_sums_finished_and_live_sessions(self):
        ticks = feed_ticks(n_objects=8, n_snapshots=10)

        async def run():
            async with IngestionServer() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.hello("a", CFG)
                    await client.hello("b", CFG)
                    await client.feed("a", ticks)
                    await client.feed("b", ticks[:4])
                    await client.flush("a")  # a finishes; b stays live
                    live = server.sessions["b"]
                    while len(live) or live.in_flight:
                        await asyncio.sleep(0.01)
                    totals = server.aggregate()
                    assert totals["tenants"] == 2
                    assert totals["ticks"] == len(ticks) + 4
                    assert totals["peak_queue"] >= 1
                    await client.flush("b")
                    after = server.aggregate()
                assert after["ticks"] == len(ticks) + 4
                assert after["connections"] == 1
        asyncio.run(run())
