"""Subprocess suite for the ``serve`` CLI subcommand.

Runs the real ``repro-convoy serve`` process on loopback and proves the
two ends of its lifecycle:

* **round trip** — tenants driven through the real socket get exactly
  the answer a direct in-process run of the same miner config produces;
* **SIGINT** — interrupting the server mid-ingestion exits 130 with an
  ``interrupted`` summary, and a tenant's write-through store holds a
  clean committed tick-prefix of its feed (the same contract the
  ``stream`` Ctrl-C path and the SIGKILL crash test pin).
"""

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.verification import normalize_convoys
from repro.service import ServiceClient
from repro.service.protocol import encode_convoy
from repro.store import SQLiteConvoyStore, convoy_identity
from repro.streaming import StreamingConvoyMiner, churn_stream

QUERY = dict(m=3, k=3, eps=6.0)
WORKLOAD = dict(n_objects=24, n_snapshots=120, seed=11, eps=6.0,
                churn=0.15, turnover=0.06, area=60.0)
DEADLINE = 60.0


def workload_ticks():
    return list(churn_stream(**WORKLOAD))


def cumulative_prefixes():
    """identity->convoy maps of everything emitted up to each tick."""
    miner = StreamingConvoyMiner(QUERY["m"], QUERY["k"], QUERY["eps"])
    prefixes, emitted = {}, {}
    with miner:
        for t, snapshot in workload_ticks():
            for convoy in miner.feed(t, snapshot):
                emitted[convoy_identity(convoy)] = convoy
            prefixes[t] = dict(emitted)
        miner.flush()
    return prefixes


def start_server(*extra_args):
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--workers", "2",
         *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    banner = proc.stdout.readline()
    if not banner:
        proc.kill()
        raise AssertionError(
            "server printed no banner: " + proc.stderr.read()
        )
    # "serving on HOST:PORT (...)" — printed once the socket is bound.
    port = int(banner.split()[2].rsplit(":", 1)[1])
    return proc, port


def finish(proc, timeout=30):
    try:
        stdout, stderr = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        stdout, stderr = proc.communicate(timeout=timeout)
        pytest.fail("server did not exit after SIGINT")
    return stdout, stderr


def store_count(db_path):
    try:
        with SQLiteConvoyStore(db_path) as store:
            return store.count()
    except Exception:
        return 0  # not created yet


class TestServeRoundTrip:
    def test_two_tenants_match_direct_runs_then_sigint_exits_clean(self):
        proc, port = start_server()
        ticks = workload_ticks()[:40]
        try:
            async def drive():
                async with ServiceClient("127.0.0.1", port) as client:
                    await client.hello("a", dict(QUERY))
                    await client.hello(
                        "b", dict(QUERY, clusterer="incremental")
                    )
                    for start in range(0, len(ticks), 10):
                        chunk = ticks[start:start + 10]
                        await client.feed("a", chunk)
                        await client.feed("b", chunk)
                    return (await client.flush("a"),
                            await client.flush("b"))

            first, second = asyncio.run(drive())
            counters = {}
            miner = StreamingConvoyMiner(counters=counters, **QUERY)
            convoys = []
            with miner:
                for t, snapshot in ticks:
                    convoys.extend(miner.feed(t, snapshot))
                convoys.extend(miner.flush())
            want = [encode_convoy(c) for c in normalize_convoys(convoys)]
            assert first["convoys"] == want
            assert second["convoys"] == want
            assert first["counters"] == counters
        finally:
            proc.send_signal(signal.SIGINT)
            stdout, stderr = finish(proc)
        assert proc.returncode == 130, stderr
        assert "interrupted: served 2 tenant(s)" in stdout
        assert f"{2 * len(ticks)} snapshot(s)" in stdout


class TestServeSigint:
    def test_sigint_mid_ingestion_commits_store_prefix(self, tmp_path):
        prefixes = cumulative_prefixes()
        db_path = str(tmp_path / "tenant.db")
        proc, port = start_server()
        try:
            async def drive():
                async with ServiceClient("127.0.0.1", port) as client:
                    await client.hello("slow", dict(
                        QUERY, store=db_path, tick_delay=0.01,
                    ))
                    # One big batch: the server paces through it at
                    # tick_delay while we interrupt it from outside.
                    await client.feed("slow", workload_ticks())
                    deadline = time.monotonic() + DEADLINE
                    while store_count(db_path) < 3:
                        if time.monotonic() > deadline:
                            pytest.fail("store never filled")
                        await asyncio.sleep(0.02)
                    proc.send_signal(signal.SIGINT)
                    # The server tears the connection down; the bye in
                    # close() may hit a dead socket, which it swallows.

            asyncio.run(drive())
            stdout, stderr = finish(proc)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 130, stderr
        assert "interrupted: served 1 tenant(s)" in stdout

        # Committed-prefix store state, through the real service stack.
        with SQLiteConvoyStore(db_path) as store:
            survived = store.all_convoys()
            assert all(store.bbox_of(c) is not None for c in survived)
        survived_ids = {convoy_identity(c) for c in survived}
        matches = [t for t, prefix in prefixes.items()
                   if survived_ids == set(prefix)]
        assert matches, (
            f"store is not a clean tick-prefix: holds "
            f"{len(survived_ids)} identities"
        )
        assert len(survived_ids) >= 3