"""The service's differential proof.

For every tenant, the service's answer — convoys, the miner's counter
dict, and (when persistence is on) the store's contents — must be
**bit-for-bit** what driving the same miner configuration directly over
the same arrival sequence produces.  Concurrency may change the
schedule; it must never change the answer.

Eight tenants run concurrently over one connection with interleaved
feed batches, spanning ≥2 pipelines (full-pass and incremental
clustering, plus sharded and vector-backend variants), both candidate
semantics, jittered feeds through reorder buffers, and per-tenant
SQLite stores — each against its own distinct seeded workload.
"""

import asyncio

from repro.core.verification import normalize_convoys
from repro.service import IngestionServer, ServiceClient
from repro.service.protocol import encode_convoy
from repro.store import SQLiteConvoyStore
from repro.streaming import (
    StreamingConvoyMiner,
    churn_stream,
    jitter_ticks,
    synthetic_stream,
)

EPS = 2.5

#: tenant -> (miner config sans store, jitter).  Two pipelines (full +
#: incremental), both semantics, jittered feeds, shards, and the vector
#: backend; four tenants persist to per-tenant stores.
TENANTS = {
    "full": (dict(m=3, k=3, eps=EPS), 0),
    "paper": (dict(m=3, k=3, eps=EPS, paper_semantics=True), 0),
    "incremental": (dict(m=3, k=3, eps=EPS, clusterer="incremental"), 0),
    "incremental-paper": (
        dict(m=3, k=3, eps=EPS, clusterer="incremental",
             paper_semantics=True),
        0,
    ),
    "jittered": (
        dict(m=3, k=3, eps=EPS, reorder={"allowed_lateness": 3}), 3,
    ),
    "jittered-incremental": (
        dict(m=3, k=4, eps=EPS, clusterer="incremental",
             paper_semantics=True, reorder={"allowed_lateness": 2}),
        2,
    ),
    "sharded": (dict(m=3, k=3, eps=EPS, shards=2), 0),
    "vector": (dict(m=2, k=4, eps=EPS, backend="vector"), 0),
}

STORED_TENANTS = ("full", "paper", "jittered-incremental", "vector")


def tenant_feed(index, name, jitter):
    """Each tenant's own deterministic arrival sequence."""
    if index % 2:
        ticks = list(churn_stream(
            n_objects=14, n_snapshots=24, seed=100 + index, eps=EPS,
            churn=0.2, turnover=0.08, area=30.0,
        ))
    else:
        ticks = list(synthetic_stream(
            14, 24, seed=100 + index, eps=EPS,
        ))
    if jitter:
        ticks = list(jitter_ticks(ticks, jitter, seed=index))
    return ticks


def direct_answer(config, ticks, store_path=None):
    """Drive the same miner directly; return the service-shaped answer."""
    counters = {}
    miner = StreamingConvoyMiner(
        counters=counters, store=store_path, **config
    )
    convoys = []
    with miner:
        for t, snapshot in ticks:
            convoys.extend(miner.feed(t, snapshot))
        convoys.extend(miner.flush())
    return {
        "convoys": [
            encode_convoy(c) for c in normalize_convoys(convoys)
        ],
        "counters": counters,
    }


class TestDifferential:
    def test_eight_concurrent_tenants_match_direct_runs(self, tmp_path):
        names = list(TENANTS)
        feeds = {
            name: tenant_feed(i, name, TENANTS[name][1])
            for i, name in enumerate(names)
        }
        configs = {}
        for name in names:
            config = dict(TENANTS[name][0])
            if name in STORED_TENANTS:
                config["store"] = str(tmp_path / f"{name}.service.db")
            configs[name] = config

        async def run():
            answers = {}
            async with IngestionServer(max_workers=4) as server:
                async with ServiceClient(
                    "127.0.0.1", server.port
                ) as client:
                    for name in names:
                        await client.hello(name, configs[name])
                    # Interleave small batches across all tenants so
                    # the dispatcher genuinely multiplexes them.
                    longest = max(len(f) for f in feeds.values())
                    for start in range(0, longest, 4):
                        for name in names:
                            chunk = feeds[name][start:start + 4]
                            if chunk:
                                await client.feed(name, chunk)
                    for name in names:
                        answers[name] = await client.flush(name)
            return answers

        answers = asyncio.run(run())

        for name in names:
            config = dict(TENANTS[name][0])
            store_path = None
            if name in STORED_TENANTS:
                store_path = str(tmp_path / f"{name}.direct.db")
            want = direct_answer(config, feeds[name], store_path)
            got = answers[name]
            assert got["convoys"] == want["convoys"], name
            assert got["counters"] == want["counters"], name
            assert got["counters"]["snapshots"] == len(feeds[name]), name
            if name in STORED_TENANTS:
                with SQLiteConvoyStore(
                    tmp_path / f"{name}.service.db"
                ) as via_service, SQLiteConvoyStore(
                    tmp_path / f"{name}.direct.db"
                ) as via_direct:
                    service_rows = via_service.all_convoys()
                    assert service_rows == via_direct.all_convoys(), name
                    for convoy in service_rows:
                        assert via_service.bbox_of(
                            convoy
                        ) == via_direct.bbox_of(convoy), name

    def test_differential_holds_across_separate_connections(self, tmp_path):
        """Same proof with each tenant on its own connection — the
        multi-client shape the CLI service actually serves."""
        names = ["full", "incremental", "jittered", "sharded"]
        feeds = {
            name: tenant_feed(i, name, TENANTS[name][1])
            for i, name in enumerate(names)
        }

        async def drive(server, name):
            async with ServiceClient("127.0.0.1", server.port) as client:
                await client.hello(name, dict(TENANTS[name][0]))
                for start in range(0, len(feeds[name]), 6):
                    await client.feed(
                        name, feeds[name][start:start + 6]
                    )
                    await asyncio.sleep(0)  # yield between batches
                return await client.flush(name)

        async def run():
            async with IngestionServer(max_workers=3) as server:
                results = await asyncio.gather(
                    *(drive(server, name) for name in names)
                )
            return dict(zip(names, results))

        answers = asyncio.run(run())
        for name in names:
            want = direct_answer(dict(TENANTS[name][0]), feeds[name])
            assert answers[name]["convoys"] == want["convoys"], name
            assert answers[name]["counters"] == want["counters"], name
