"""Wire-contract suite for :mod:`repro.service.protocol`.

Round-trips every payload shape — messages, snapshots, convoys — and
pins the property the differential proof leans on: object ids cross the
wire with their Python types intact (``5`` and ``"5"`` stay distinct),
which is exactly why snapshots travel as triples and not JSON objects.
"""

import pytest

from repro.core.convoy import Convoy
from repro.service.protocol import (
    ProtocolError,
    decode,
    decode_convoy,
    decode_snapshot,
    encode,
    encode_convoy,
    encode_snapshot,
)


class TestMessageFraming:
    def test_round_trip(self):
        message = {"type": "feed", "tenant": "a", "ticks": []}
        line = encode(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode(line) == message

    def test_deterministic_encoding(self):
        assert encode({"b": 1, "a": 2, "type": "x"}) == encode(
            {"a": 2, "type": "x", "b": 1}
        )

    def test_garbage_line_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode(b"{not json\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="objects with a 'type'"):
            decode(b"[1, 2, 3]\n")

    def test_missing_type_rejected(self):
        with pytest.raises(ProtocolError, match="objects with a 'type'"):
            decode(b'{"tenant": "a"}\n')


class TestSnapshots:
    def test_round_trip_preserves_id_types(self):
        snapshot = {5: (0.0, 1.0), "5": (2.0, 3.0), "a": (4.5, -1.25)}
        triples = encode_snapshot(snapshot)
        # Through actual JSON framing, as on the wire.
        decoded = decode_snapshot(
            decode(encode({"type": "feed", "ticks": triples}))["ticks"]
        )
        assert decoded == snapshot
        assert {type(k) for k in decoded} == {int, str}

    def test_wire_order_is_deterministic(self):
        a = encode_snapshot({"b": (1.0, 2.0), "a": (0.0, 0.0)})
        b = encode_snapshot({"a": (0.0, 0.0), "b": (1.0, 2.0)})
        assert a == b

    def test_bad_shapes_rejected(self):
        with pytest.raises(ProtocolError, match="must be a list"):
            decode_snapshot({"a": [0, 0]})
        with pytest.raises(ProtocolError, match=r"\[object_id, x, y\]"):
            decode_snapshot([["a", 0.0]])
        with pytest.raises(ProtocolError, match="str or int"):
            decode_snapshot([[None, 0.0, 0.0]])
        with pytest.raises(ProtocolError, match="numbers"):
            decode_snapshot([["a", "0", 0.0]])
        with pytest.raises(ProtocolError, match="numbers"):
            decode_snapshot([["a", True, 0.0]])

    def test_duplicate_id_rejected(self):
        with pytest.raises(ProtocolError, match="repeats"):
            decode_snapshot([["a", 0.0, 0.0], ["a", 1.0, 1.0]])


class TestConvoys:
    def test_round_trip(self):
        convoy = Convoy({1, "1", "b"}, 3, 9)
        assert decode_convoy(encode_convoy(convoy)) == convoy

    def test_members_canonically_sorted(self):
        one = encode_convoy(Convoy(["b", "a", 3], 0, 2))
        two = encode_convoy(Convoy([3, "a", "b"], 0, 2))
        assert one == two

    def test_bad_payload_rejected(self):
        with pytest.raises(ProtocolError, match="bad convoy"):
            decode_convoy({"objects": [], "t_start": 0, "t_end": 1})
        with pytest.raises(ProtocolError, match="bad convoy"):
            decode_convoy({"objects": ["a"], "t_start": 0})
