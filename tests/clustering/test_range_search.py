"""Tests for the reference multi-step range search (Section 5.2)."""

import math
import random

import pytest

from repro.clustering.polyline import PartitionPolyline
from repro.clustering.range_search import (
    PolylineRangeSearcher,
    polyline_omega,
    polylines_within,
)
from repro.trajectory.segment import TimestampedSegment


def polyline(object_id, segs, tols=None):
    segments = tuple(TimestampedSegment(a, b, t0, t1) for a, b, t0, t1 in segs)
    if tols is None:
        tols = tuple(0.0 for _ in segments)
    return PartitionPolyline(object_id, segments, tuple(tols))


class TestOmega:
    def test_parallel_synchronous(self):
        a = polyline("a", [((0, 0), (10, 0), 0, 10)])
        b = polyline("b", [((0, 4), (10, 4), 0, 10)])
        assert polyline_omega(a, b, "dll") == pytest.approx(4.0)
        assert polyline_omega(a, b, "cpa") == pytest.approx(4.0)

    def test_tolerances_subtract(self):
        a = polyline("a", [((0, 0), (10, 0), 0, 10)], [1.5])
        b = polyline("b", [((0, 4), (10, 4), 0, 10)], [0.5])
        assert polyline_omega(a, b, "dll") == pytest.approx(2.0)

    def test_temporally_disjoint_is_inf(self):
        a = polyline("a", [((0, 0), (10, 0), 0, 4)])
        b = polyline("b", [((0, 1), (10, 1), 5, 9)])
        assert polyline_omega(a, b, "dll") == math.inf

    def test_min_over_segment_pairs(self):
        # Two segments each; the closest time-overlapping pair wins.
        a = polyline(
            "a", [((0, 0), (10, 0), 0, 5), ((10, 0), (20, 0), 5, 10)]
        )
        b = polyline(
            "b", [((0, 50), (10, 50), 0, 5), ((10, 2), (20, 2), 5, 10)]
        )
        assert polyline_omega(a, b, "dll") == pytest.approx(2.0)

    def test_cpa_mode_never_below_dll_mode(self):
        rng = random.Random(9)
        for _ in range(100):
            def rand_poly(oid):
                x, y, t = rng.uniform(-20, 20), rng.uniform(-20, 20), 0
                segs = []
                for _ in range(rng.randint(1, 4)):
                    nx, ny = x + rng.uniform(-8, 8), y + rng.uniform(-8, 8)
                    nt = t + rng.randint(1, 3)
                    segs.append(((x, y), (nx, ny), t, nt))
                    x, y, t = nx, ny, nt
                return polyline(oid, segs)

            a, b = rand_poly("a"), rand_poly("b")
            assert (
                polyline_omega(a, b, "cpa")
                >= polyline_omega(a, b, "dll") - 1e-9
            )

    def test_unknown_mode_rejected(self):
        a = polyline("a", [((0, 0), (1, 0), 0, 1)])
        with pytest.raises(ValueError):
            polyline_omega(a, a, "chebyshev")


class TestPolylinesWithin:
    def test_consistent_with_omega(self):
        rng = random.Random(10)
        for _ in range(100):
            def rand_poly(oid):
                x, y, t = rng.uniform(-20, 20), rng.uniform(-20, 20), 0
                segs, tols = [], []
                for _ in range(rng.randint(1, 4)):
                    nx, ny = x + rng.uniform(-8, 8), y + rng.uniform(-8, 8)
                    nt = t + rng.randint(1, 3)
                    segs.append(((x, y), (nx, ny), t, nt))
                    tols.append(rng.uniform(0, 2))
                    x, y, t = nx, ny, nt
                return polyline(oid, segs, tols)

            a, b = rand_poly("a"), rand_poly("b")
            eps = rng.uniform(0.5, 15)
            assert polylines_within(a, b, eps, "dll") == (
                polyline_omega(a, b, "dll") <= eps
            )


class TestRangeSearcher:
    def _grid_of_polylines(self, spacing, count):
        return [
            polyline(f"o{i}", [((i * spacing, 0), (i * spacing + 1, 0), 0, 5)])
            for i in range(count)
        ]

    def test_neighbors_chain(self):
        items = self._grid_of_polylines(2.0, 5)
        searcher = PolylineRangeSearcher(items, eps=2.5)
        # Polyline i spans [2i, 2i+1]; gap to the next is 1.0 <= 2.5, gap
        # to i+2 is 3.0 > 2.5.
        assert sorted(searcher.neighbors_of(2)) == [1, 2, 3]

    def test_includes_self(self):
        items = self._grid_of_polylines(100.0, 3)
        searcher = PolylineRangeSearcher(items, eps=1.0)
        assert searcher.neighbors_of(1) == [1]

    def test_lemma2_pruning_counts(self):
        items = self._grid_of_polylines(1000.0, 12)
        searcher = PolylineRangeSearcher(items, eps=1.0, bucket_capacity=2)
        searcher.neighbors_of(0)
        assert searcher.stats["buckets_pruned"] > 0

    def test_disabling_lemma2_same_answer(self):
        rng = random.Random(11)
        items = []
        for i in range(15):
            x = rng.uniform(0, 60)
            items.append(
                polyline(f"o{i}", [((x, 0), (x + 3, 2), 0, 5)], [rng.uniform(0, 1)])
            )
        fast = PolylineRangeSearcher(items, eps=5.0, use_lemma2=True)
        slow = PolylineRangeSearcher(items, eps=5.0, use_lemma2=False)
        for i in range(len(items)):
            assert sorted(fast.neighbors_of(i)) == sorted(slow.neighbors_of(i))

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            PolylineRangeSearcher([], eps=0.0)
