"""Tests for the uniform grid index."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clustering.grid_index import GridIndex

coord = st.floats(min_value=-200, max_value=200, allow_nan=False)


class TestConstruction:
    def test_rejects_non_positive_cell(self):
        with pytest.raises(ValueError):
            GridIndex(0)
        with pytest.raises(ValueError):
            GridIndex(-1)

    def test_bulk_load(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (5, 5)})
        assert len(index) == 2
        assert "a" in index

    def test_duplicate_id_rejected(self):
        index = GridIndex(1.0, {"a": (0, 0)})
        with pytest.raises(ValueError):
            index.insert("a", (1, 1))

    def test_location_of(self):
        index = GridIndex(1.0, {"a": (3, 4)})
        assert index.location_of("a") == (3, 4)


class TestNeighborQueries:
    def test_includes_self(self):
        index = GridIndex(1.0, {"a": (0, 0)})
        assert index.neighbors_of("a", 1.0) == ["a"]

    def test_boundary_distance_included(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (1.0, 0)})
        assert set(index.neighbors_of("a", 1.0)) == {"a", "b"}

    def test_just_outside_excluded(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (1.0001, 0)})
        assert set(index.neighbors_of("a", 1.0)) == {"a"}

    def test_negative_radius_rejected(self):
        index = GridIndex(1.0, {"a": (0, 0)})
        with pytest.raises(ValueError):
            index.neighbors_within((0, 0), -1)

    def test_radius_larger_than_cell(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (4.5, 0), "c": (6, 0)})
        assert set(index.neighbors_of("a", 5.0)) == {"a", "b"}

    def test_radius_smaller_than_cell(self):
        index = GridIndex(10.0, {"a": (0, 0), "b": (2, 0), "c": (9, 0)})
        assert set(index.neighbors_of("a", 3.0)) == {"a", "b"}

    def test_negative_coordinates(self):
        index = GridIndex(1.0, {"a": (-5.5, -5.5), "b": (-5.0, -5.5)})
        assert set(index.neighbors_of("a", 0.6)) == {"a", "b"}

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=60),
        st.floats(min_value=0.1, max_value=50),
        st.floats(min_value=0.5, max_value=30),
    )
    def test_matches_brute_force(self, pts, cell, radius):
        """The index returns exactly the brute-force e-neighbourhood."""
        points = {i: p for i, p in enumerate(pts)}
        index = GridIndex(cell, points)
        query = pts[0]
        expected = {
            i
            for i, (x, y) in points.items()
            if math.hypot(x - query[0], y - query[1]) <= radius
        }
        assert set(index.neighbors_within(query, radius)) == expected

    def test_large_random_consistency(self):
        rng = random.Random(42)
        points = {
            i: (rng.uniform(-100, 100), rng.uniform(-100, 100))
            for i in range(500)
        }
        index = GridIndex(7.0, points)
        for probe in range(20):
            qid = rng.randrange(500)
            qx, qy = points[qid]
            expected = {
                i
                for i, (x, y) in points.items()
                if math.hypot(x - qx, y - qy) <= 7.0
            }
            assert set(index.neighbors_of(qid, 7.0)) == expected


def brute_force_neighbors(points, query, radius):
    qx, qy = query
    return {
        item_id
        for item_id, (x, y) in points.items()
        if math.hypot(x - qx, y - qy) <= radius
    }


class TestEdgeCases:
    """Degenerate geometry the streaming per-tick indexes must survive."""

    def test_points_exactly_on_cell_boundaries(self):
        """Coordinates that are exact multiples of cell_size land in a
        definite cell and are still found from the adjacent cells."""
        points = {
            "origin": (0.0, 0.0),
            "east": (1.0, 0.0),
            "corner": (1.0, 1.0),
            "far": (2.0, 0.0),
            "west_edge": (-1.0, 0.0),
        }
        index = GridIndex(1.0, points)
        for item_id in points:
            assert set(index.neighbors_of(item_id, 1.0)) == \
                brute_force_neighbors(points, points[item_id], 1.0)

    def test_negative_boundary_coordinates(self):
        """floor-division cell mapping: -1.0 // 1.0 is -1, not 0 — points
        on negative cell boundaries must not shift a cell."""
        points = {
            "a": (-2.0, -2.0),
            "b": (-1.0, -2.0),
            "c": (-2.0, -1.0),
            "d": (-0.5, -0.5),
        }
        index = GridIndex(1.0, points)
        for item_id, location in points.items():
            for radius in (0.5, 1.0, 1.5):
                assert set(index.neighbors_of(item_id, radius)) == \
                    brute_force_neighbors(points, location, radius)

    def test_duplicate_positions_distinct_ids(self):
        """Several objects can report the same location (a parked fleet);
        all of them must appear in each other's neighbourhood."""
        points = {f"p{i}": (3.5, -2.5) for i in range(5)}
        points["q"] = (3.5, -1.6)
        index = GridIndex(1.0, points)
        assert set(index.neighbors_of("p0", 0.0)) == {f"p{i}" for i in range(5)}
        assert set(index.neighbors_of("q", 1.0)) == set(points)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_cell_size_equals_eps_matches_brute_force(self, seed):
        """The engine's natural configuration (cell_size == eps): query
        results are exactly the brute-force e-neighbourhood on random sets
        that include cell-aligned and duplicated points."""
        rng = random.Random(seed)
        eps = 2.5
        points = {}
        for i in range(120):
            roll = rng.random()
            if roll < 0.2:  # snap onto the grid lines
                x = eps * rng.randint(-8, 8)
                y = eps * rng.randint(-8, 8)
            elif roll < 0.3 and points:  # duplicate an earlier position
                x, y = points[rng.randrange(len(points))]
            else:
                x = rng.uniform(-20, 20)
                y = rng.uniform(-20, 20)
            points[i] = (x, y)
        index = GridIndex(eps, points)
        for qid in range(0, 120, 7):
            assert set(index.neighbors_of(qid, eps)) == \
                brute_force_neighbors(points, points[qid], eps)
