"""Tests for the uniform grid index."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clustering.grid_index import GridIndex

coord = st.floats(min_value=-200, max_value=200, allow_nan=False)


class TestConstruction:
    def test_rejects_non_positive_cell(self):
        with pytest.raises(ValueError):
            GridIndex(0)
        with pytest.raises(ValueError):
            GridIndex(-1)

    def test_bulk_load(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (5, 5)})
        assert len(index) == 2
        assert "a" in index

    def test_duplicate_id_rejected(self):
        index = GridIndex(1.0, {"a": (0, 0)})
        with pytest.raises(ValueError):
            index.insert("a", (1, 1))

    def test_location_of(self):
        index = GridIndex(1.0, {"a": (3, 4)})
        assert index.location_of("a") == (3, 4)


class TestNeighborQueries:
    def test_includes_self(self):
        index = GridIndex(1.0, {"a": (0, 0)})
        assert index.neighbors_of("a", 1.0) == ["a"]

    def test_boundary_distance_included(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (1.0, 0)})
        assert set(index.neighbors_of("a", 1.0)) == {"a", "b"}

    def test_just_outside_excluded(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (1.0001, 0)})
        assert set(index.neighbors_of("a", 1.0)) == {"a"}

    def test_negative_radius_rejected(self):
        index = GridIndex(1.0, {"a": (0, 0)})
        with pytest.raises(ValueError):
            index.neighbors_within((0, 0), -1)

    def test_radius_larger_than_cell(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (4.5, 0), "c": (6, 0)})
        assert set(index.neighbors_of("a", 5.0)) == {"a", "b"}

    def test_radius_smaller_than_cell(self):
        index = GridIndex(10.0, {"a": (0, 0), "b": (2, 0), "c": (9, 0)})
        assert set(index.neighbors_of("a", 3.0)) == {"a", "b"}

    def test_negative_coordinates(self):
        index = GridIndex(1.0, {"a": (-5.5, -5.5), "b": (-5.0, -5.5)})
        assert set(index.neighbors_of("a", 0.6)) == {"a", "b"}

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=60),
        st.floats(min_value=0.1, max_value=50),
        st.floats(min_value=0.5, max_value=30),
    )
    def test_matches_brute_force(self, pts, cell, radius):
        """The index returns exactly the brute-force e-neighbourhood."""
        points = {i: p for i, p in enumerate(pts)}
        index = GridIndex(cell, points)
        query = pts[0]
        expected = {
            i
            for i, (x, y) in points.items()
            if math.hypot(x - query[0], y - query[1]) <= radius
        }
        assert set(index.neighbors_within(query, radius)) == expected

    def test_large_random_consistency(self):
        rng = random.Random(42)
        points = {
            i: (rng.uniform(-100, 100), rng.uniform(-100, 100))
            for i in range(500)
        }
        index = GridIndex(7.0, points)
        for probe in range(20):
            qid = rng.randrange(500)
            qx, qy = points[qid]
            expected = {
                i
                for i, (x, y) in points.items()
                if math.hypot(x - qx, y - qy) <= 7.0
            }
            assert set(index.neighbors_of(qid, 7.0)) == expected


def brute_force_neighbors(points, query, radius):
    qx, qy = query
    return {
        item_id
        for item_id, (x, y) in points.items()
        if math.hypot(x - qx, y - qy) <= radius
    }


class TestEdgeCases:
    """Degenerate geometry the streaming per-tick indexes must survive."""

    def test_points_exactly_on_cell_boundaries(self):
        """Coordinates that are exact multiples of cell_size land in a
        definite cell and are still found from the adjacent cells."""
        points = {
            "origin": (0.0, 0.0),
            "east": (1.0, 0.0),
            "corner": (1.0, 1.0),
            "far": (2.0, 0.0),
            "west_edge": (-1.0, 0.0),
        }
        index = GridIndex(1.0, points)
        for item_id in points:
            assert set(index.neighbors_of(item_id, 1.0)) == \
                brute_force_neighbors(points, points[item_id], 1.0)

    def test_negative_boundary_coordinates(self):
        """floor-division cell mapping: -1.0 // 1.0 is -1, not 0 — points
        on negative cell boundaries must not shift a cell."""
        points = {
            "a": (-2.0, -2.0),
            "b": (-1.0, -2.0),
            "c": (-2.0, -1.0),
            "d": (-0.5, -0.5),
        }
        index = GridIndex(1.0, points)
        for item_id, location in points.items():
            for radius in (0.5, 1.0, 1.5):
                assert set(index.neighbors_of(item_id, radius)) == \
                    brute_force_neighbors(points, location, radius)

    def test_duplicate_positions_distinct_ids(self):
        """Several objects can report the same location (a parked fleet);
        all of them must appear in each other's neighbourhood."""
        points = {f"p{i}": (3.5, -2.5) for i in range(5)}
        points["q"] = (3.5, -1.6)
        index = GridIndex(1.0, points)
        assert set(index.neighbors_of("p0", 0.0)) == {f"p{i}" for i in range(5)}
        assert set(index.neighbors_of("q", 1.0)) == set(points)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_cell_size_equals_eps_matches_brute_force(self, seed):
        """The engine's natural configuration (cell_size == eps): query
        results are exactly the brute-force e-neighbourhood on random sets
        that include cell-aligned and duplicated points."""
        rng = random.Random(seed)
        eps = 2.5
        points = {}
        for i in range(120):
            roll = rng.random()
            if roll < 0.2:  # snap onto the grid lines
                x = eps * rng.randint(-8, 8)
                y = eps * rng.randint(-8, 8)
            elif roll < 0.3 and points:  # duplicate an earlier position
                x, y = points[rng.randrange(len(points))]
            else:
                x = rng.uniform(-20, 20)
                y = rng.uniform(-20, 20)
            points[i] = (x, y)
        index = GridIndex(eps, points)
        for qid in range(0, 120, 7):
            assert set(index.neighbors_of(qid, eps)) == \
                brute_force_neighbors(points, points[qid], eps)


class TestMutations:
    """The remove/move API the incremental clusterer drives every tick."""

    def test_remove_absent_id_raises_cleanly(self):
        index = GridIndex(1.0, {"a": (0, 0)})
        with pytest.raises(KeyError, match="ghost"):
            index.remove("ghost")
        index.remove("a")
        with pytest.raises(KeyError, match="'a'"):
            index.remove("a")  # double remove is absent too
        assert len(index) == 0

    def test_move_absent_id_raises_cleanly(self):
        index = GridIndex(1.0)
        with pytest.raises(KeyError):
            index.move("ghost", (1.0, 1.0))

    def test_removed_point_disappears_from_queries(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (0.5, 0)})
        index.remove("b")
        assert "b" not in index
        assert set(index.neighbors_of("a", 1.0)) == {"a"}

    def test_reinsert_after_remove(self):
        index = GridIndex(1.0, {"a": (0, 0), "b": (0.5, 0)})
        index.remove("a")
        index.insert("a", (5.0, 5.0))
        assert index.location_of("a") == (5.0, 5.0)
        assert set(index.neighbors_within((5.0, 5.0), 0.1)) == {"a"}
        assert set(index.neighbors_within((0.0, 0.0), 1.0)) == {"b"}

    def test_move_across_cell_boundary_and_back(self):
        index = GridIndex(1.0, {"a": (0.5, 0.5), "b": (0.6, 0.5)})
        index.move("a", (3.5, 0.5))       # leaves the 3x3 block around b
        assert set(index.neighbors_of("b", 1.0)) == {"b"}
        assert set(index.neighbors_of("a", 1.0)) == {"a"}
        index.move("a", (0.5, 0.5))       # and back to the original cell
        assert set(index.neighbors_of("b", 1.0)) == {"a", "b"}
        assert index.location_of("a") == (0.5, 0.5)

    def test_move_within_cell_updates_distance_filtering(self):
        index = GridIndex(2.0, {"a": (0.1, 0.1), "b": (1.9, 0.1)})
        assert set(index.neighbors_of("a", 1.0)) == {"a"}
        index.move("b", (0.9, 0.1))       # same cell, now within radius
        assert set(index.neighbors_of("a", 1.0)) == {"a", "b"}

    def test_move_onto_negative_boundary(self):
        index = GridIndex(1.0, {"a": (0.5, 0.5), "b": (-0.5, 0.5)})
        index.move("a", (-1.0, 0.5))      # exact negative cell boundary
        assert set(index.neighbors_of("b", 0.5)) == {"a", "b"}

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_interleaved_mutations_match_brute_force_oracle(self, seed):
        """Random insert/move/remove interleavings: queries always equal
        the brute-force e-neighbourhood of the surviving points."""
        rng = random.Random(seed)
        index = GridIndex(2.0)
        points = {}
        next_id = 0
        for step in range(300):
            op = rng.random()
            if op < 0.4 or not points:
                xy = (rng.uniform(-15, 15), rng.uniform(-15, 15))
                points[next_id] = xy
                index.insert(next_id, xy)
                next_id += 1
            elif op < 0.7:
                target = rng.choice(sorted(points))
                xy = (rng.uniform(-15, 15), rng.uniform(-15, 15))
                points[target] = xy
                index.move(target, xy)
            else:
                target = rng.choice(sorted(points))
                del points[target]
                index.remove(target)
            if step % 10 == 0 and points:
                assert len(index) == len(points)
                probe = points[rng.choice(sorted(points))]
                radius = rng.choice([0.5, 2.0, 5.0])
                assert set(index.neighbors_within(probe, radius)) == \
                    brute_force_neighbors(points, probe, radius)

    def test_empty_buckets_are_reclaimed(self):
        """Long-lived streaming indexes must not accumulate ghost cells as
        points drift across the grid."""
        index = GridIndex(1.0, {"a": (0.5, 0.5)})
        for step in range(1, 200):
            index.move("a", (0.5 + step, 0.5))
        assert len(index._cells) == 1
        index.remove("a")
        assert len(index._cells) == 0


class TestNonFiniteCoordinates:
    """Regression: NaN/inf coordinates used to corrupt cell hashing (NaN //
    cell_size is NaN, int(NaN) raises far from the insert; inf overflows) —
    they are now rejected up front with a clear error."""

    @pytest.mark.parametrize("bad", [
        (math.nan, 0.0), (0.0, math.nan),
        (math.inf, 0.0), (0.0, -math.inf),
    ])
    def test_insert_rejects_non_finite(self, bad):
        index = GridIndex(1.0, {"a": (0, 0)})
        with pytest.raises(ValueError, match="finite"):
            index.insert("bad", bad)
        # the rejected point must leave no trace
        assert "bad" not in index
        assert len(index) == 1
        assert set(index.neighbors_within((0.0, 0.0), 2.0)) == {"a"}

    @pytest.mark.parametrize("bad", [
        (math.nan, 0.0), (math.inf, math.inf),
    ])
    def test_move_rejects_non_finite_and_keeps_old_position(self, bad):
        index = GridIndex(1.0, {"a": (1.5, 1.5)})
        with pytest.raises(ValueError, match="finite"):
            index.move("a", bad)
        assert index.location_of("a") == (1.5, 1.5)
        assert set(index.neighbors_of("a", 0.5)) == {"a"}

    def test_bulk_load_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            GridIndex(1.0, {"a": (0, 0), "b": (math.nan, 1.0)})
