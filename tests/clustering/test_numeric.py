"""Tests for the vectorized numeric backend.

Three layers of proof, each run twice — with numpy and with the
``array('d')``/memoryview fallback (``numeric.np`` monkeypatched to
None, the exact seam the kernels consult at call time):

* unit tests for :class:`PositionStore` and :class:`VectorGridIndex`
  (swap-remove bookkeeping, GridIndex-identical single-query answers);
* hypothesis oracle properties — batched neighbourhood queries equal
  the O(N²) scan, vector cell ids equal the scalar floor-divide,
  ``dbscan(backend="vector")`` equals ``dbscan_brute_force``, and
  :func:`match_candidates_vector` equals the pure-Python kernel on
  random id sets (including overlapping cluster families);
* an import-shim test reloading the module with ``numpy`` masked out of
  ``sys.modules``, pinning that a numpy-less host imports cleanly.
"""

import importlib
import math
import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.clustering.numeric as numeric
from repro.clustering.dbscan import dbscan, dbscan_brute_force
from repro.clustering.grid_index import GridIndex
from repro.clustering.numeric import (
    NUMERIC_BACKENDS,
    PositionStore,
    VectorGridIndex,
    match_candidates_vector,
    validate_backend,
)
from repro.core.candidates import match_candidates, resolve_match_kernel

coord = st.floats(min_value=-200, max_value=200, allow_nan=False)


@pytest.fixture(params=["numpy", "fallback"])
def numeric_mode(request, monkeypatch):
    """Run a test against both kernel modes of the vector backend."""
    if request.param == "fallback":
        monkeypatch.setattr(numeric, "np", None)
    elif numeric.np is None:
        pytest.skip("numpy not installed")
    return request.param


class TestBackendNames:
    def test_names(self):
        assert NUMERIC_BACKENDS == ("python", "vector")

    def test_validate_accepts_none_as_python(self):
        assert validate_backend(None) == "python"
        assert validate_backend("vector") == "vector"

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="fortran"):
            validate_backend("fortran")

    def test_resolve_match_kernel(self):
        assert resolve_match_kernel("python") is match_candidates
        assert resolve_match_kernel(None) is match_candidates
        assert resolve_match_kernel("vector") is match_candidates_vector


class TestPositionStore:
    def test_add_get_len(self):
        store = PositionStore()
        store.add("a", 1.5, -2.0)
        store.add("b", 3.0, 4.0)
        assert len(store) == 2
        assert "a" in store and "c" not in store
        assert store.get("a") == (1.5, -2.0)
        assert store.ids() == ["a", "b"]

    def test_duplicate_add_rejected(self):
        store = PositionStore()
        store.add("a", 0.0, 0.0)
        with pytest.raises(ValueError, match="duplicate"):
            store.add("a", 1.0, 1.0)

    def test_swap_remove_keeps_columns_dense(self):
        store = PositionStore()
        for i in range(5):
            store.add(f"o{i}", float(i), float(-i))
        store.remove("o1")  # o4 swaps into row 1
        assert len(store) == 4
        assert store.get("o4") == (4.0, -4.0)
        assert store.row_of("o4") == 1
        xs, ys = store.columns()
        assert list(xs) == [0.0, 4.0, 2.0, 3.0]
        assert list(ys) == [0.0, -4.0, -2.0, -3.0]

    def test_remove_last_row(self):
        store = PositionStore()
        store.add("a", 1.0, 2.0)
        store.remove("a")
        assert len(store) == 0
        with pytest.raises(KeyError):
            store.remove("a")

    def test_set_overwrites_in_place(self):
        store = PositionStore()
        store.add("a", 1.0, 2.0)
        store.set("a", 9.0, 8.0)
        assert store.get("a") == (9.0, 8.0)
        assert len(store) == 1

    @settings(max_examples=40, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_random_churn_matches_dict(self, rng):
        """The store under random add/remove/set equals a plain dict."""
        store = PositionStore()
        reference = {}
        for step in range(120):
            op = rng.random()
            if op < 0.5 or not reference:
                key = f"k{rng.randrange(40)}"
                x, y = rng.uniform(-9, 9), rng.uniform(-9, 9)
                if key in reference:
                    store.set(key, x, y)
                else:
                    store.add(key, x, y)
                reference[key] = (x, y)
            else:
                key = rng.choice(sorted(reference))
                store.remove(key)
                del reference[key]
        assert len(store) == len(reference)
        assert {k: store.get(k) for k in store.ids()} == reference


class TestVectorGridIndexUnit:
    def test_rejects_non_positive_cell(self, numeric_mode):
        with pytest.raises(ValueError):
            VectorGridIndex(0)

    def test_matches_grid_index_single_queries(self, numeric_mode):
        points = {f"o{i}": (i * 0.7, -i * 0.3) for i in range(30)}
        scalar = GridIndex(2.5, points)
        vector = VectorGridIndex(2.5, points)
        for o, xy in points.items():
            assert (
                set(vector.neighbors_within(xy, 2.5))
                == set(scalar.neighbors_within(xy, 2.5))
            )
            assert set(vector.neighbors_of(o, 2.5)) == set(
                scalar.neighbors_of(o, 2.5)
            )

    def test_insert_remove_move_contract(self, numeric_mode):
        index = VectorGridIndex(1.0, {"a": (0, 0)})
        with pytest.raises(ValueError):
            index.insert("a", (1, 1))
        with pytest.raises(ValueError):
            index.insert("b", (math.nan, 0))
        with pytest.raises(KeyError):
            index.remove("missing")
        with pytest.raises(KeyError):
            index.move("missing", (0, 0))
        index.insert("b", (5, 5))
        index.move("b", (0.5, 0.0))
        assert set(index.neighbors_within((0, 0), 1.0)) == {"a", "b"}
        index.remove("a")
        assert set(index.neighbors_within((0, 0), 1.0)) == {"b"}
        assert index.location_of("b") == (0.5, 0.0)

    def test_boundary_distance_included(self, numeric_mode):
        index = VectorGridIndex(1.0, {"a": (0, 0), "b": (1.0, 0)})
        assert set(index.neighbors_of("a", 1.0)) == {"a", "b"}
        index2 = VectorGridIndex(1.0, {"a": (0, 0), "b": (1.0001, 0)})
        assert set(index2.neighbors_of("a", 1.0)) == {"a"}

    def test_negative_radius_rejected(self, numeric_mode):
        index = VectorGridIndex(1.0, {"a": (0, 0)})
        with pytest.raises(ValueError):
            index.neighbors_within_batch([(0, 0)], -1)

    def test_empty_index_batch(self, numeric_mode):
        index = VectorGridIndex(1.0)
        assert index.neighbors_within_batch([(0, 0), (5, 5)], 2.0) == [[], []]
        assert index.all_neighbors(2.0) == {}

    def test_all_neighbors_covers_every_point(self, numeric_mode):
        points = {f"o{i}": (i % 7 * 1.3, i // 7 * 1.1) for i in range(25)}
        index = VectorGridIndex(2.0, points)
        answer = index.all_neighbors(2.0)
        assert set(answer) == set(points)
        for o, neighbors in answer.items():
            assert o in neighbors  # distance zero to itself


class TestVectorGridIndexProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=40),
        st.lists(st.tuples(coord, coord), min_size=1, max_size=10),
        st.floats(min_value=0.1, max_value=50),
    )
    def test_batch_queries_match_brute_force(self, locs, queries, radius):
        points = {i: xy for i, xy in enumerate(locs)}
        index = VectorGridIndex(radius, points)
        results = index.neighbors_within_batch(queries, radius)
        r2 = radius * radius
        for (qx, qy), found in zip(queries, results):
            expected = {
                i for i, (x, y) in points.items()
                if (x - qx) ** 2 + (y - qy) ** 2 <= r2
            }
            assert set(found) == expected
            assert len(found) == len(set(found))  # no duplicate ids

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=40),
        st.floats(min_value=0.05, max_value=40),
    )
    def test_bulk_cell_ids_match_scalar_floor_divide(self, locs, cell):
        """The vectorized floor-divide bucketing must agree with the
        scalar ``int(v // cell)`` of GridIndex for every coordinate —
        the invariant that makes the two grids interchangeable."""
        points = {i: xy for i, xy in enumerate(locs)}
        index = VectorGridIndex(cell, points)
        for i, (x, y) in points.items():
            scalar_cell = (int(x // cell), int(y // cell))
            assert index._cell_of((x, y)) == scalar_cell
            bucket = index._cells[scalar_cell]
            assert i in bucket

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=60),
            st.tuples(coord, coord), min_size=0, max_size=40,
        ),
        st.floats(min_value=0.5, max_value=30),
        st.integers(min_value=1, max_value=6),
    )
    def test_vector_dbscan_matches_brute_force(self, points, eps, min_pts):
        assert dbscan(points, eps, min_pts, backend="vector") == (
            dbscan_brute_force(points, eps, min_pts)
        )


def random_match_case(rng):
    """One random matching instance: members, jobs (mixed scans), m."""
    universe = range(rng.randrange(1, 80))
    n_clusters = rng.randrange(0, 8)
    if rng.random() < 0.3:
        # Overlapping families exercise the merge-intersection path.
        members = [
            frozenset(rng.sample(universe, min(len(universe),
                                               rng.randrange(1, 12))))
            for _ in range(n_clusters)
        ]
    else:
        # Disjoint families (the DBSCAN shape) exercise the owner join.
        pool = list(universe)
        rng.shuffle(pool)
        members, cursor = [], 0
        for _ in range(n_clusters):
            size = rng.randrange(1, 9)
            chunk = pool[cursor:cursor + size]
            cursor += size
            if chunk:
                members.append(frozenset(chunk))
    jobs = []
    for pos in range(rng.randrange(0, 10)):
        objects = frozenset(
            rng.sample(universe, min(len(universe), rng.randrange(0, 15)))
        )
        if members and rng.random() < 0.5:
            scan = tuple(sorted(rng.sample(
                range(len(members)), rng.randrange(0, len(members) + 1)
            )))
        else:
            scan = None
        jobs.append((pos, objects, scan))
    return members, jobs, rng.randrange(1, 5)


class TestMatchKernelEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_vector_equals_python_kernel(self, rng):
        members, jobs, m = random_match_case(rng)
        assert match_candidates_vector(members, jobs, m) == (
            match_candidates(members, jobs, m)
        )

    def test_fallback_equals_python_kernel(self, monkeypatch):
        monkeypatch.setattr(numeric, "np", None)
        rng = random.Random(99)
        for _ in range(150):
            members, jobs, m = random_match_case(rng)
            assert match_candidates_vector(members, jobs, m) == (
                match_candidates(members, jobs, m)
            )

    def test_string_object_ids(self, numeric_mode):
        members = [frozenset({"a", "b", "c"}), frozenset({"d", "e"})]
        jobs = [(0, frozenset({"a", "b", "z"}), None),
                (1, frozenset({"d", "e"}), (1,))]
        assert match_candidates_vector(members, jobs, 2) == (
            match_candidates(members, jobs, 2)
        )

    def test_empty_members_short_circuit(self, numeric_mode):
        jobs = [(3, frozenset({"a"}), None), (7, frozenset(), ())]
        assert match_candidates_vector([], jobs, 1) == [(3, []), (7, [])]
        assert match_candidates_vector([], [], 1) == []

    def test_kernel_is_picklable(self):
        import pickle

        for backend in NUMERIC_BACKENDS:
            kernel = pickle.loads(pickle.dumps(resolve_match_kernel(backend)))
            assert kernel is resolve_match_kernel(backend)


class TestFallbackParity:
    """The two kernel modes (numpy / memoryview) must agree bit for bit."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=30),
        st.floats(min_value=0.5, max_value=20),
    )
    def test_neighborhoods_agree(self, locs, eps):
        if numeric.np is None:
            pytest.skip("numpy not installed")
        points = {i: xy for i, xy in enumerate(locs)}
        with_numpy = VectorGridIndex(eps, points).all_neighbors(eps)
        saved = numeric.np
        try:
            numeric.np = None
            without = VectorGridIndex(eps, points).all_neighbors(eps)
        finally:
            numeric.np = saved
        assert {k: set(v) for k, v in with_numpy.items()} == (
            {k: set(v) for k, v in without.items()}
        )


class TestImportShim:
    def test_module_imports_without_numpy(self):
        """A numpy-less interpreter must import the module cleanly and
        land on the fallback kernels (ImportError branch, not call-time
        monkeypatching)."""
        saved_numeric = sys.modules.pop("repro.clustering.numeric")
        saved_numpy = {
            name: sys.modules[name]
            for name in list(sys.modules)
            if name == "numpy" or name.startswith("numpy.")
        }
        for name in saved_numpy:
            del sys.modules[name]
        sys.modules["numpy"] = None  # import numpy raises ImportError
        try:
            shimmed = importlib.import_module("repro.clustering.numeric")
            assert shimmed.np is None
            assert not shimmed.have_numpy()
            index = shimmed.VectorGridIndex(
                1.0, {"a": (0, 0), "b": (0.5, 0), "c": (9, 9)}
            )
            assert set(index.neighbors_within((0, 0), 1.0)) == {"a", "b"}
            out = shimmed.match_candidates_vector(
                [frozenset({"a", "b"})], [(0, frozenset({"a", "b"}), None)], 2
            )
            assert out == [(0, [(0, frozenset({"a", "b"}))])]
        finally:
            del sys.modules["numpy"]
            sys.modules.update(saved_numpy)
            sys.modules["repro.clustering.numeric"] = saved_numeric
