"""ClusterDelta contract tests and the adaptive churn-threshold policy.

The :class:`~repro.clustering.incremental.ClusterDelta` returned by
``cluster_with_delta`` is what the candidate tracker's splice path trusts,
so its contract is checked against a brute-force oracle: replaying the
stream while remembering every ``{id: member set}`` from the previous tick
and verifying each classification literally — ``unchanged`` really means
the identical member set, ``vanished`` is exactly the disappeared ids, and
ids are never reused.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.incremental import (
    APPEARED,
    CHANGED,
    UNCHANGED,
    AdaptiveChurnThreshold,
    ClusterDelta,
    IncrementalSnapshotClusterer,
)
from repro.streaming import churn_stream


def assert_delta_contract(snapshots, eps, m, **kwargs):
    """Replay a stream checking every delta against the previous tick."""
    clusterer = IncrementalSnapshotClusterer(eps, m, **kwargs)
    previous = {}   # id -> frozenset(members) as of the last tick
    ever = set()    # every id that has ever appeared
    for tick, snapshot in enumerate(snapshots):
        clusters, delta = clusterer.cluster_with_delta(snapshot)
        assert clusters == dbscan(snapshot, eps, m), f"tick {tick}"
        assert len(delta.ids) == len(clusters) == len(delta.status)
        assert len(set(delta.ids)) == len(delta.ids), "duplicate ids"
        current = {}
        for members, cid, status in zip(clusters, delta.ids, delta.status):
            current[cid] = frozenset(members)
            if status == UNCHANGED:
                assert previous.get(cid) == frozenset(members), (
                    f"tick {tick}: cluster {cid} marked unchanged but "
                    f"was {previous.get(cid)} -> {sorted(members)}"
                )
            elif status == CHANGED:
                assert cid in previous, f"tick {tick}: changed id {cid} is new"
                assert previous[cid] != frozenset(members), (
                    f"tick {tick}: cluster {cid} marked changed but is equal"
                )
            elif status == APPEARED:
                assert cid not in ever, f"tick {tick}: id {cid} reused"
            else:
                raise AssertionError(f"unknown status {status!r}")
        assert set(delta.vanished) == set(previous) - set(current), (
            f"tick {tick}: vanished {delta.vanished}"
        )
        assert list(delta.vanished) == sorted(delta.vanished)
        ever.update(current)
        previous = current
    return clusterer


def churn_snapshots(churn, *, n=80, ticks=35, turnover=0.03, seed=5,
                    eps=5.0, area=None):
    return [
        snap for _t, snap in churn_stream(
            n, ticks, seed=seed, eps=eps, churn=churn, turnover=turnover,
            area=area,
        )
    ]


class TestDeltaContract:
    @pytest.mark.parametrize("churn", [0.0, 0.05, 0.2, 0.6])
    def test_churn_stream(self, churn):
        assert_delta_contract(churn_snapshots(churn), 5.0, 3)

    def test_dense_stream_with_border_contention(self):
        """Small area: clusters merge/split constantly, borders contested."""
        assert_delta_contract(
            churn_snapshots(0.1, n=90, area=60.0), 5.0, 3
        )

    def test_key_order_shuffles_flip_changed(self):
        """Shuffling keys without moving anyone can only yield unchanged or
        changed (border ties flipping) — never appeared/vanished."""
        rng = random.Random(3)
        pos = {f"o{i}": (rng.uniform(0, 25), rng.uniform(0, 25))
               for i in range(60)}
        snapshots = []
        for _ in range(20):
            items = list(pos.items())
            rng.shuffle(items)
            snapshots.append(dict(items))
        clusterer = IncrementalSnapshotClusterer(3.0, 2)
        clusterer.cluster(snapshots[0])
        for snapshot in snapshots[1:]:
            _clusters, delta = clusterer.cluster_with_delta(snapshot)
            assert delta.vanished == ()
            assert all(s in (UNCHANGED, CHANGED) for s in delta.status)
        assert_delta_contract(snapshots, 3.0, 2)

    def test_full_pass_marks_everything_appeared(self):
        snapshots = churn_snapshots(0.05, ticks=6)
        clusterer = IncrementalSnapshotClusterer(5.0, 3, churn_threshold=0.0)
        previous_ids = set()
        for snapshot in snapshots:
            clusters, delta = clusterer.cluster_with_delta(snapshot)
            assert all(s == APPEARED for s in delta.status)
            assert set(delta.vanished) == previous_ids
            previous_ids = set(delta.ids)
        assert clusterer.counters["full_passes"] == len(snapshots)

    def test_frozen_world_is_all_unchanged(self):
        snapshot = churn_snapshots(0.0, ticks=1)[0]
        clusterer = IncrementalSnapshotClusterer(5.0, 3)
        _clusters, first = clusterer.cluster_with_delta(dict(snapshot))
        clusters, delta = clusterer.cluster_with_delta(dict(snapshot))
        assert all(s == APPEARED for s in first.status)
        assert all(s == UNCHANGED for s in delta.status)
        assert delta.ids == first.ids
        assert delta.vanished == ()
        assert delta.unchanged_count == len(clusters)

    def test_cluster_and_cluster_with_delta_agree(self):
        snapshots = churn_snapshots(0.1, ticks=10)
        a = IncrementalSnapshotClusterer(5.0, 3)
        b = IncrementalSnapshotClusterer(5.0, 3)
        for snapshot in snapshots:
            assert a.cluster(snapshot) == b.cluster_with_delta(snapshot)[0]

    def test_delta_validates_parallel_lengths(self):
        with pytest.raises(ValueError, match="mismatch"):
            ClusterDelta(ids=(1, 2), status=(UNCHANGED,), vanished=())


class TestAdaptiveChurnThreshold:
    def test_initial_threshold_until_fit_is_identifiable(self):
        policy = AdaptiveChurnThreshold(initial=0.4)
        assert policy.threshold == 0.4
        policy.observe_full(1000, 0.1)
        assert policy.threshold == 0.4  # no delta observation yet
        policy.observe_delta(100, 1000, 0.05)
        policy.observe_delta(100, 1000, 0.06)
        # Every delta pass so far ran at the same churn fraction: the
        # fixed/variable split is unidentifiable, so the threshold holds.
        assert policy.threshold == 0.4

    def test_crossover_math_on_affine_data(self):
        # Exact affine observations pin the fit regardless of EWMA
        # weights: u = 3e-5 + 2e-4 * c, full passes at 1e-4 s/point
        # -> crossover (1e-4 - 3e-5) / 2e-4 = 0.35.
        policy = AdaptiveChurnThreshold(initial=0.9, alpha=0.5)
        policy.observe_full(1000, 0.1)
        policy.observe_delta(100, 1000, 0.05)   # c=0.1, u=5e-5
        policy.observe_delta(300, 1000, 0.09)   # c=0.3, u=9e-5
        assert policy.threshold == pytest.approx(0.35)

    def test_low_churn_fixed_cost_does_not_ratchet_to_floor(self):
        """Regression: a naive seconds-per-churned-point model folds the
        O(n) fixed delta cost into the slope, so cheap low-churn passes
        looked expensive and the threshold ratcheted to the floor.  The
        affine fit must keep the true crossover instead."""
        policy = AdaptiveChurnThreshold(initial=0.35, floor=0.02)
        policy.observe_full(800, 0.08)           # phi = 1e-4
        # Delta passes at 1% and 2% churn, dominated by a fixed cost of
        # 2e-5 s/point with slope 1e-4: u(0.01)=2.1e-5, u(0.02)=2.2e-5.
        # Naive per-churned-point units would be 2.1e-3 and 1.1e-3 —
        # 10-20x the full unit, i.e. "never use delta".
        for _ in range(10):
            policy.observe_delta(8, 800, 0.0168)
            policy.observe_delta(16, 800, 0.0176)
        assert policy.threshold == pytest.approx(0.8, rel=1e-6)

    def test_zero_churn_passes_anchor_the_intercept(self):
        policy = AdaptiveChurnThreshold()
        policy.observe_full(1000, 0.1)            # phi = 1e-4
        policy.observe_delta(0, 1000, 0.02)       # c=0, u=2e-5 (intercept)
        policy.observe_delta(200, 1000, 0.06)     # c=0.2, u=6e-5 -> b=2e-4
        assert policy.threshold == pytest.approx(0.4)

    def test_clamped_to_floor_and_ceiling(self):
        policy = AdaptiveChurnThreshold(floor=0.1, ceiling=0.8)
        policy.observe_full(1000, 0.001)          # phi = 1e-6: full is free
        policy.observe_delta(0, 1000, 0.01)
        policy.observe_delta(500, 1000, 0.5)      # steep, costly delta
        assert policy.threshold == 0.1
        fast = AdaptiveChurnThreshold(floor=0.1, ceiling=0.8)
        fast.observe_full(1000, 1.0)              # phi = 1e-3: full is slow
        fast.observe_delta(0, 1000, 0.00001)
        fast.observe_delta(500, 1000, 0.00002)    # near-free delta
        assert fast.threshold == 0.8

    def test_negative_slope_is_ignored_as_noise(self):
        policy = AdaptiveChurnThreshold(initial=0.3)
        policy.observe_full(1000, 0.1)
        policy.observe_delta(100, 1000, 0.09)    # higher churn...
        policy.observe_delta(500, 1000, 0.01)    # ...measured cheaper
        assert policy.threshold == 0.3

    def test_degenerate_observations_ignored(self):
        policy = AdaptiveChurnThreshold(initial=0.3)
        policy.observe_full(0, 1.0)
        policy.observe_delta(-1, 1000, 1.0)
        policy.observe_delta(10, 0, 1.0)
        policy.observe_full(10, 0.0)
        policy.observe_delta(10, 1000, 0.0)
        assert policy.threshold == 0.3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveChurnThreshold(initial=1.5)
        with pytest.raises(ValueError):
            AdaptiveChurnThreshold(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveChurnThreshold(floor=0.5, ceiling=0.2)

    def test_clusterer_accepts_adaptive_forms(self):
        snapshots = churn_snapshots(0.05, ticks=12)
        for form in ("adaptive", AdaptiveChurnThreshold(initial=0.5)):
            clusterer = assert_delta_contract(
                snapshots, 5.0, 3, churn_threshold=form
            )
            assert 0.0 <= clusterer.churn_threshold <= 1.0

    def test_clusterer_rejects_bad_threshold_values(self):
        with pytest.raises(ValueError, match="adaptive"):
            IncrementalSnapshotClusterer(1.0, 2, churn_threshold=1.5)
        with pytest.raises(ValueError, match="adaptive"):
            IncrementalSnapshotClusterer(1.0, 2, churn_threshold="fast")


class TestAdaptiveChurnThresholdProperties:
    """Edge-case properties: no observation sequence may crash the fit
    (division by zero) or drive the threshold outside its clamp, and
    degenerate streams must leave the policy stable, not oscillating."""

    @given(
        observations=st.lists(
            st.tuples(
                st.booleans(),                       # full pass?
                st.integers(min_value=0, max_value=2000),   # churned
                st.integers(min_value=0, max_value=2000),   # n_points
                st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
            ),
            max_size=60,
        )
    )
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_any_observation_sequence_keeps_threshold_clamped(
        self, observations
    ):
        policy = AdaptiveChurnThreshold(floor=0.05, ceiling=0.9)
        for is_full, churned, n_points, seconds in observations:
            if is_full:
                policy.observe_full(n_points, seconds)
            else:
                policy.observe_delta(churned, n_points, seconds)
            assert 0.05 <= policy.threshold <= 0.9

    def test_zero_observed_samples(self):
        """A policy that never observes anything keeps its initial
        threshold; asking for it must not divide by zero."""
        policy = AdaptiveChurnThreshold(initial=0.42)
        for _ in range(3):
            assert policy.threshold == 0.42

    def test_all_equal_pass_costs_hold_the_threshold_steady(self):
        """Identical costs at one churn level make the slope
        unidentifiable (zero churn spread): the threshold must neither
        crash nor drift, however many samples arrive."""
        policy = AdaptiveChurnThreshold(initial=0.35)
        for _ in range(50):
            policy.observe_full(1000, 0.1)
            policy.observe_delta(200, 1000, 0.05)
        assert policy.threshold == 0.35

    def test_single_tick_stream_with_adaptive_policy(self):
        """One snapshot, then silence: the first (full) pass is the only
        observation and the policy must stay at its initial value."""
        clusterer = IncrementalSnapshotClusterer(
            5.0, 2, churn_threshold="adaptive"
        )
        snapshot = {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (40.0, 40.0)}
        assert clusterer.cluster(snapshot) == dbscan(snapshot, 5.0, 2)
        assert clusterer.churn_threshold == pytest.approx(0.35)

    def test_consistent_costs_do_not_oscillate(self):
        """Once the fit has converged on self-consistent affine costs,
        further identical observations must not move the threshold — the
        EWMA settles instead of ringing."""
        policy = AdaptiveChurnThreshold(initial=0.9, alpha=0.5)
        def one_round():
            policy.observe_full(1000, 0.1)           # phi = 1e-4
            policy.observe_delta(100, 1000, 0.05)    # u(0.1) = 5e-5
            policy.observe_delta(300, 1000, 0.09)    # u(0.3) = 9e-5
        for _ in range(5):
            one_round()
        settled = [policy.threshold]
        for _ in range(20):
            one_round()
            settled.append(policy.threshold)
        assert max(settled) - min(settled) < 1e-9
        assert settled[0] == pytest.approx(0.35)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(deadline=None, max_examples=15)
    def test_adaptive_clusterer_still_exact_under_any_seed(self, seed):
        """Whatever thresholds the measured costs produce, the clustering
        itself must remain exactly dbscan's."""
        rng = random.Random(seed)
        clusterer = IncrementalSnapshotClusterer(
            4.0, 2, churn_threshold="adaptive"
        )
        positions = {
            f"p{i}": (rng.uniform(0, 25), rng.uniform(0, 25))
            for i in range(20)
        }
        for _tick in range(6):
            for obj in rng.sample(sorted(positions), rng.randint(0, 6)):
                positions[obj] = (rng.uniform(0, 25), rng.uniform(0, 25))
            snapshot = dict(positions)
            assert clusterer.cluster(snapshot) == dbscan(snapshot, 4.0, 2)
