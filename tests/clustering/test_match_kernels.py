"""Tests for the bitset match tier and the adaptive kernel dispatcher.

Four layers of proof:

* naming/validation — :data:`MATCH_KERNELS`, ``validate_match_kernel``
  and the two-argument ``resolve_match_kernel`` raise a
  :class:`ValueError` that names the offending value and lists the
  valid choices (never a bare :class:`KeyError`), at every entry layer
  (kernel registry, miner, ``cmc()``);
* kernel equivalence — hypothesis and seeded-random properties holding
  ``bitset == merge == scalar`` on overlapping/disjoint id families
  (int and str ids, empty candidate sets, full-population candidates
  that exercise the subset fast path), with numpy and on the pure
  ``int``-bitmask fallback, under forced block chunking, and across a
  shared-remap bucket split (the sharded tracker's shape);
* resident rows — a worker's maintained bitset rows always decode to
  its authoritative object-set state after arbitrary put/drop delta
  sequences, and a bitset step answers exactly like a scalar step on a
  twin worker;
* dispatcher policy — exploration order, the explore floor, the
  decisive-gain bias, the staleness probe, and parameter validation of
  :class:`KernelDispatch`.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.clustering.numeric as numeric
from repro.clustering.numeric import (
    MATCH_KERNELS,
    KernelDispatch,
    bitset_remap,
    match_candidates_bitset,
    match_candidates_merge,
    match_candidates_vector,
    validate_match_kernel,
)
from repro.core.candidates import (
    FIXED_MATCH_KERNELS,
    match_candidates,
    resolve_match_kernel,
)
from repro.core.cmc import cmc
from repro.streaming import StreamingConvoyMiner, churn_stream
from repro.streaming.executor import ResidentProtocolError, ResidentShardWorker
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


@pytest.fixture(params=["numpy", "fallback"])
def numeric_mode(request, monkeypatch):
    """Run a test against both kernel modes of the vector backend."""
    if request.param == "fallback":
        monkeypatch.setattr(numeric, "np", None)
    elif numeric.np is None:
        pytest.skip("numpy not installed")
    return request.param


class TestKernelNames:
    def test_names(self):
        assert MATCH_KERNELS == ("auto", "scalar", "merge", "bitset")

    def test_fixed_registry(self):
        assert FIXED_MATCH_KERNELS == {
            "scalar": match_candidates,
            "merge": match_candidates_merge,
            "bitset": match_candidates_bitset,
        }

    def test_validate_passes_none_and_known_names(self):
        assert validate_match_kernel(None) is None
        for name in MATCH_KERNELS:
            assert validate_match_kernel(name) == name

    def test_validate_rejects_unknown_naming_value_and_choices(self):
        with pytest.raises(ValueError) as exc:
            validate_match_kernel("turbo")
        message = str(exc.value)
        assert "'turbo'" in message
        for name in MATCH_KERNELS:
            assert name in message

    def test_kernels_are_picklable_by_reference(self):
        for fn in FIXED_MATCH_KERNELS.values():
            assert pickle.loads(pickle.dumps(fn)) is fn


class TestResolveMatchKernel:
    def test_backend_decides_without_kernel(self):
        assert resolve_match_kernel("python") is match_candidates
        assert resolve_match_kernel(None) is match_candidates
        assert resolve_match_kernel("vector") is match_candidates_vector

    def test_fixed_kernel_overrides_backend(self):
        assert resolve_match_kernel("python", "merge") is (
            match_candidates_merge
        )
        assert resolve_match_kernel("vector", "scalar") is match_candidates
        assert resolve_match_kernel("python", "bitset") is (
            match_candidates_bitset
        )

    def test_rejects_auto(self):
        with pytest.raises(ValueError, match="auto"):
            resolve_match_kernel("python", "auto")

    def test_rejects_unknown_kernel_with_choices(self):
        with pytest.raises(ValueError) as exc:
            resolve_match_kernel("python", "turbo")
        message = str(exc.value)
        assert "'turbo'" in message
        assert "bitset" in message


def random_match_case(rng, ids="int"):
    """One random matching instance over int or str object ids."""
    size = rng.randrange(1, 80)
    if ids == "str":
        universe = [f"obj{i}" for i in range(size)]
    else:
        universe = list(range(size))
    n_clusters = rng.randrange(0, 8)
    if rng.random() < 0.4:
        # Overlapping families exercise the merge-intersection path.
        members = [
            frozenset(rng.sample(universe, rng.randrange(1, min(12, size + 1))))
            for _ in range(n_clusters)
        ]
    else:
        pool = list(universe)
        rng.shuffle(pool)
        members, cursor = [], 0
        for _ in range(n_clusters):
            chunk = pool[cursor:cursor + rng.randrange(1, 9)]
            cursor += len(chunk)
            if chunk:
                members.append(frozenset(chunk))
    jobs = []
    for pos in range(rng.randrange(0, 10)):
        roll = rng.random()
        if roll < 0.1:
            objects = frozenset()  # empty candidate
        elif roll < 0.25:
            objects = frozenset(universe)  # full population: subset path
        else:
            objects = frozenset(
                rng.sample(universe, rng.randrange(0, min(15, size + 1)))
            )
        if members and rng.random() < 0.5:
            scan = tuple(sorted(rng.sample(
                range(len(members)), rng.randrange(0, len(members) + 1)
            )))
        else:
            scan = None
        jobs.append((pos, objects, scan))
    return members, jobs, rng.randrange(1, 5)


class TestKernelEquivalence:
    """bitset == merge == scalar, everywhere the kernels can diverge."""

    def assert_all_equal(self, members, jobs, m):
        expected = match_candidates(members, jobs, m)
        assert match_candidates_merge(members, jobs, m) == expected
        assert match_candidates_bitset(members, jobs, m) == expected

    @settings(max_examples=120, deadline=None)
    @given(st.randoms(use_true_random=False), st.sampled_from(["int", "str"]))
    def test_random_families(self, rng, ids):
        members, jobs, m = random_match_case(rng, ids)
        self.assert_all_equal(members, jobs, m)

    def test_random_families_both_modes(self, numeric_mode):
        rng = random.Random(7)
        for _ in range(120):
            members, jobs, m = random_match_case(
                rng, ids=rng.choice(["int", "str"])
            )
            self.assert_all_equal(members, jobs, m)

    def test_full_population_candidate_subset_path(self, numeric_mode):
        # The candidate holds the whole population, so every common
        # count equals len(objects) and the intersection must be the
        # candidate set itself (the steady-state convoy shortcut).
        universe = frozenset(range(40))
        members = [frozenset(range(40)), frozenset(range(5))]
        jobs = [(0, universe, None)]
        expected = [(0, [(0, universe), (1, frozenset(range(5)))])]
        assert match_candidates(members, jobs, 1) == expected
        self.assert_all_equal(members, jobs, 1)

    def test_forced_block_chunking(self, monkeypatch):
        if numeric.np is None:
            pytest.skip("numpy not installed")
        monkeypatch.setattr(numeric, "_BITSET_BLOCK_WORDS", 1)
        rng = random.Random(11)
        for _ in range(60):
            members, jobs, m = random_match_case(rng)
            self.assert_all_equal(members, jobs, m)

    def test_shared_remap_bucket_split(self, numeric_mode):
        # The sharded tracker builds one remap over the whole tick and
        # ships it to every shard; rows packed per bucket over that
        # shared remap must answer exactly like the unsharded join.
        rng = random.Random(23)
        for _ in range(60):
            members, jobs, m = random_match_case(rng)
            expected = match_candidates(members, jobs, m)
            remap = bitset_remap(jobs)
            half = len(jobs) // 2
            out = []
            for bucket in (jobs[:half], jobs[half:]):
                out.extend(
                    match_candidates_bitset(members, bucket, m, remap)
                )
            assert sorted(out) == sorted(expected)


def random_worker_ops(rng, steps=40):
    """A random resident delta sequence: (ops, reference state) pairs."""
    state = {}
    sequence = []
    next_chain = 0
    for _ in range(steps):
        ops = []
        for _ in range(rng.randrange(0, 4)):
            if state and rng.random() < 0.35:
                victim = rng.choice(sorted(state, key=str))
                del state[victim]
                ops.append(("drop", victim))
            else:
                chain = f"c{next_chain}" if rng.random() < 0.5 else next_chain
                next_chain += 1
                objects = frozenset(
                    rng.sample(range(60), rng.randrange(1, 12))
                )
                state[chain] = objects
                ops.append(("put", chain, objects))
        sequence.append((ops, dict(state)))
    return sequence


class TestResidentBitsetRows:
    M = 2

    def make_worker(self, entries=()):
        worker = ResidentShardWorker()
        assert worker.handle(("init", self.M, "python", list(entries)))[0] == (
            "ok"
        )
        return worker

    @settings(max_examples=30, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_rows_track_state_under_random_deltas(self, rng):
        worker = self.make_worker()
        for ops, expected in random_worker_ops(rng):
            worker.handle(("step", [], ops, []))
            assert worker._objects == expected
            assert worker.bitset_rows() == expected
            # A worker rebuilt from scratch over the current state must
            # decode to the same rows, despite a different remap.
            rebuilt = self.make_worker(worker.handle(("snapshot",)).items())
            assert rebuilt.bitset_rows() == expected

    @settings(max_examples=30, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_bitset_step_equals_scalar_step(self, rng):
        twins = (self.make_worker(), self.make_worker())
        for ops, state in random_worker_ops(rng, steps=20):
            members = [
                frozenset(rng.sample(range(60), rng.randrange(1, 12)))
                for _ in range(rng.randrange(0, 5))
            ]
            jobs = []
            for pos, chain in enumerate(sorted(state, key=str)):
                if members and rng.random() < 0.5:
                    scan = tuple(sorted(rng.sample(
                        range(len(members)),
                        rng.randrange(0, len(members) + 1),
                    )))
                else:
                    scan = None
                jobs.append((pos, chain, scan))
            answers = [
                worker.handle(("step", members, ops, jobs, kernel))
                for worker, kernel in zip(twins, ("bitset", "scalar"))
            ]
            assert answers[0] == answers[1]

    def test_bitset_step_unknown_chain_raises(self):
        worker = self.make_worker([("a", frozenset({1, 2}))])
        with pytest.raises(ResidentProtocolError, match="ghost"):
            worker.handle(
                ("step", [frozenset({1, 2})], [], [(0, "ghost", None)],
                 "bitset")
            )


def _stats(scan_ids, pairs, population):
    """Hand-built plan stats for driving the dispatcher directly."""
    from repro.clustering.numeric import MatchPlanStats

    return MatchPlanStats(
        jobs=10, clusters=5, pairs=pairs, job_ids=population,
        member_ids=population, scan_ids=scan_ids, population=population,
    )


class TestKernelDispatch:
    def run_tick(self, dispatch, stats, seconds_by_kernel):
        name = dispatch.choose(stats)
        dispatch.observe(name, stats, seconds_by_kernel[name])
        return name

    def test_parameter_validation(self):
        for kwargs in (
            dict(alpha=0.0), dict(alpha=1.5), dict(explore_rounds=0),
            dict(explore_floor=-1), dict(refresh_every=0),
            dict(refresh_margin=0.5), dict(batch_margin=0.9),
        ):
            with pytest.raises(ValueError):
                KernelDispatch(**kwargs)

    def test_exploration_order_is_fixed(self):
        dispatch = KernelDispatch(explore_rounds=2)
        stats = _stats(scan_ids=100_000, pairs=50, population=4_000)
        picks = [
            self.run_tick(
                dispatch, stats,
                {"scalar": 0.01, "merge": 0.01, "bitset": 0.01},
            )
            for _ in range(6)
        ]
        assert picks == ["scalar", "scalar", "merge", "merge",
                         "bitset", "bitset"]

    def test_exploration_runs_even_below_floor(self):
        dispatch = KernelDispatch(explore_rounds=1, explore_floor=4096)
        tiny = _stats(scan_ids=10, pairs=1, population=10)
        picks = [
            self.run_tick(
                dispatch, tiny,
                {"scalar": 0.001, "merge": 0.001, "bitset": 0.001},
            )
            for _ in range(4)
        ]
        # All three kernels are priced on tiny ticks too, then the
        # floor takes over.
        assert picks == ["scalar", "merge", "bitset", "scalar"]

    def test_floor_forces_scalar_after_exploration(self):
        dispatch = KernelDispatch(explore_rounds=1, explore_floor=4096)
        tiny = _stats(scan_ids=100, pairs=1, population=100)
        costs = {"scalar": 0.5, "merge": 0.0001, "bitset": 0.0001}
        for _ in range(3):
            self.run_tick(dispatch, tiny, costs)
        # Scalar is observed as by far the slowest, yet below the floor
        # it is still chosen unconditionally.
        assert all(
            self.run_tick(dispatch, tiny, costs) == "scalar"
            for _ in range(10)
        )

    def test_learns_decisively_cheaper_batch_kernel(self):
        dispatch = KernelDispatch(explore_rounds=1)
        stats = _stats(scan_ids=500_000, pairs=200, population=10_000)
        costs = {"scalar": 0.050, "merge": 0.080, "bitset": 0.004}
        for _ in range(3):
            self.run_tick(dispatch, stats, costs)
        picks = [self.run_tick(dispatch, stats, costs) for _ in range(20)]
        assert set(picks) == {"bitset"}

    def test_close_race_goes_to_scalar(self):
        # bitset measures a touch cheaper than scalar, but not by the
        # decisive batch margin — the simple kernel must win.
        dispatch = KernelDispatch(explore_rounds=1, refresh_every=1000)
        stats = _stats(scan_ids=500_000, pairs=200, population=10_000)
        costs = {"scalar": 0.010, "merge": 0.030, "bitset": 0.009}
        for _ in range(3):
            self.run_tick(dispatch, stats, costs)
        picks = [self.run_tick(dispatch, stats, costs) for _ in range(20)]
        assert set(picks) == {"scalar"}

    def test_staleness_probe_refreshes_near_miss_only(self):
        dispatch = KernelDispatch(explore_rounds=1, refresh_every=4,
                                  refresh_margin=2.0)
        stats = _stats(scan_ids=500_000, pairs=200, population=10_000)
        costs = {"scalar": 0.010, "merge": 0.100, "bitset": 0.016}
        for _ in range(3):
            self.run_tick(dispatch, stats, costs)
        picks = [self.run_tick(dispatch, stats, costs) for _ in range(24)]
        # The near-miss kernel keeps being re-priced; the hopeless one
        # (10x, outside the margin) is never paid for again.
        assert "bitset" in picks
        assert "merge" not in picks
        assert picks.count("scalar") > picks.count("bitset")

    def test_observe_rejects_unknown_kernel(self):
        dispatch = KernelDispatch()
        stats = _stats(scan_ids=100, pairs=1, population=100)
        with pytest.raises(ValueError, match="turbo"):
            dispatch.observe("turbo", stats, 0.01)


def tiny_snapshots(n_ticks=10, n_objects=40, seed=3):
    return list(churn_stream(
        n_objects, n_ticks, seed=seed, eps=10.0, churn=0.2, area=120.0,
    ))


def run_miner(ticks, **kwargs):
    miner = StreamingConvoyMiner(2, 3, 10.0, clusterer="incremental",
                                 **kwargs)
    emitted = []
    with miner:
        for t, snapshot in ticks:
            emitted.append(miner.feed(t, snapshot))
        emitted.append(miner.flush())
    return emitted, dict(miner.counters)


class TestMinerMatchKernel:
    def test_every_kernel_and_transport_agrees(self):
        ticks = tiny_snapshots()
        baseline, _counters = run_miner(ticks)
        for kernel in ("scalar", "merge", "bitset", "auto"):
            for transport in (
                dict(),
                dict(shards=2, executor="serial"),
                dict(shards=2, executor="serial", resident=True),
            ):
                emitted, _counters = run_miner(
                    ticks, match_kernel=kernel, **transport
                )
                assert emitted == baseline, (kernel, transport)

    def test_auto_reports_dispatch_counters(self):
        ticks = tiny_snapshots()
        _emitted, counters = run_miner(ticks, match_kernel="auto")
        picks = sum(
            counters.get(f"dispatch_{name}", 0)
            for name in ("scalar", "merge", "bitset")
        )
        assert picks > 0

    def test_fixed_kernels_report_no_dispatch_counters(self):
        ticks = tiny_snapshots()
        _emitted, counters = run_miner(ticks, match_kernel="bitset")
        assert not any(key.startswith("dispatch_") for key in counters)

    def test_miner_rejects_unknown_kernel(self):
        with pytest.raises(ValueError) as exc:
            StreamingConvoyMiner(2, 3, 10.0, match_kernel="turbo")
        message = str(exc.value)
        assert "'turbo'" in message
        assert "bitset" in message


class TestCmcMatchKernel:
    def database(self):
        return TrajectoryDatabase([
            Trajectory("a", [(0.0, float(t), t) for t in range(6)]),
            Trajectory("b", [(1.0, float(t), t) for t in range(6)]),
        ])

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError) as exc:
            cmc(self.database(), 2, 3, 5.0, match_kernel="turbo")
        message = str(exc.value)
        assert "'turbo'" in message
        assert "bitset" in message

    def test_kernels_agree(self):
        expected = cmc(self.database(), 2, 3, 5.0)
        assert expected  # the pair a/b is a convoy
        for kernel in ("scalar", "merge", "bitset", "auto"):
            assert cmc(
                self.database(), 2, 3, 5.0, match_kernel=kernel
            ) == expected
