"""Tests for the plane-sweep ε-adjacency join.

The inlined float kernels must agree exactly with the readable geometry
reference implementations, and the sweep must return the same adjacency as
the brute-force all-pairs test.
"""

import random

from repro.clustering.polyline import PartitionPolyline
from repro.clustering.range_search import polyline_omega
from repro.clustering.spatial_join import (
    JoinPolyline,
    pair_within,
    polyline_adjacency,
)
from repro.trajectory.segment import TimestampedSegment


def random_polyline(rng, object_id, t0, num_segments, step=5.0, tol_max=3.0):
    """Random time-contiguous polyline in both representations."""
    x, y = rng.uniform(-50, 50), rng.uniform(-50, 50)
    t = t0
    segments = []
    tolerances = []
    for _ in range(num_segments):
        nx, ny = x + rng.uniform(-step, step), y + rng.uniform(-step, step)
        duration = rng.randint(1, 4)
        segments.append(TimestampedSegment((x, y), (nx, ny), t, t + duration))
        tolerances.append(rng.uniform(0, tol_max))
        x, y, t = nx, ny, t + duration
    partition = PartitionPolyline(object_id, tuple(segments), tuple(tolerances))
    return partition, JoinPolyline.from_partition_polyline(partition)


class TestPairWithinMatchesOmega:
    def _check(self, rng, mode):
        part_a, join_a = random_polyline(rng, "a", rng.randint(0, 3), rng.randint(1, 5))
        part_b, join_b = random_polyline(rng, "b", rng.randint(0, 3), rng.randint(1, 5))
        eps = rng.uniform(0.5, 30)
        expected = polyline_omega(part_a, part_b, mode) <= eps
        got = pair_within(join_a, join_b, eps, mode)
        assert got == expected, (
            f"mode={mode} eps={eps} omega={polyline_omega(part_a, part_b, mode)}"
        )

    def test_dll_many_random(self):
        rng = random.Random(100)
        for _ in range(300):
            self._check(rng, "dll")

    def test_cpa_many_random(self):
        rng = random.Random(200)
        for _ in range(300):
            self._check(rng, "cpa")

    def test_self_pair_is_within(self):
        rng = random.Random(1)
        _part, join = random_polyline(rng, "a", 0, 3)
        assert pair_within(join, join, 0.5, "dll")
        assert pair_within(join, join, 0.5, "cpa")

    def test_temporally_disjoint_never_within(self):
        a = JoinPolyline("a", [(0, 0, 1, 0, 0.0, 5.0, 0.0)])
        b = JoinPolyline("b", [(0, 0, 1, 0, 6.0, 9.0, 0.0)])
        assert not pair_within(a, b, 1000.0, "dll")
        assert not pair_within(a, b, 1000.0, "cpa")

    def test_tolerances_loosen_the_test(self):
        # Segments 10 apart; eps 5 fails without tolerances, passes when
        # each side carries tolerance 3 (bound = 5 + 3 + 3 = 11 >= 10).
        tight_a = JoinPolyline("a", [(0, 0, 1, 0, 0.0, 5.0, 0.0)])
        tight_b = JoinPolyline("b", [(0, 10, 1, 10, 0.0, 5.0, 0.0)])
        loose_a = JoinPolyline("a", [(0, 0, 1, 0, 0.0, 5.0, 3.0)])
        loose_b = JoinPolyline("b", [(0, 10, 1, 10, 0.0, 5.0, 3.0)])
        assert not pair_within(tight_a, tight_b, 5.0, "dll")
        assert pair_within(loose_a, loose_b, 5.0, "dll")


class TestAdjacency:
    def _random_partition(self, rng, n):
        parts = []
        joins = []
        for i in range(n):
            part, join = random_polyline(rng, f"o{i}", rng.randint(0, 2), rng.randint(1, 4))
            parts.append(part)
            joins.append(join)
        return parts, joins

    def test_sweep_equals_brute_force(self):
        rng = random.Random(5)
        for trial in range(40):
            _parts, joins = self._random_partition(rng, rng.randint(2, 15))
            eps = rng.uniform(1, 25)
            mode = rng.choice(["dll", "cpa"])
            swept = polyline_adjacency(joins, eps, mode, use_sweep=True)
            brute = polyline_adjacency(joins, eps, mode, use_sweep=False)
            assert [sorted(a) for a in swept] == [sorted(a) for a in brute]

    def test_adjacency_is_symmetric(self):
        rng = random.Random(6)
        _parts, joins = self._random_partition(rng, 12)
        adjacency = polyline_adjacency(joins, 10.0, "dll")
        for i, neighbors in enumerate(adjacency):
            for j in neighbors:
                assert i in adjacency[j]

    def test_every_item_is_own_neighbor(self):
        rng = random.Random(7)
        _parts, joins = self._random_partition(rng, 8)
        adjacency = polyline_adjacency(joins, 0.001, "cpa")
        for i, neighbors in enumerate(adjacency):
            assert i in neighbors

    def test_stats_counters(self):
        rng = random.Random(8)
        _parts, joins = self._random_partition(rng, 10)
        stats = {}
        polyline_adjacency(joins, 5.0, "dll", stats=stats)
        assert stats["pairs_considered"] >= stats["pairs_linked"]

    def test_sweep_prunes_far_pairs(self):
        # Two clusters far apart: the sweep should consider fewer pairs
        # than the brute-force n*(n-1)/2.
        joins = []
        for i in range(10):
            x = 0.0 if i < 5 else 10_000.0
            joins.append(JoinPolyline(f"o{i}", [(x + i, 0, x + i, 1, 0.0, 4.0, 0.0)]))
        stats = {}
        polyline_adjacency(joins, 5.0, "dll", stats=stats)
        assert stats["pairs_considered"] < 45


class TestJoinPolyline:
    def test_bounds_and_tol(self):
        poly = JoinPolyline(
            "a",
            [(0, 0, 4, 2, 0.0, 3.0, 1.0), (4, 2, -1, 5, 3.0, 6.0, 2.5)],
        )
        assert poly.bounds == (-1, 0, 4, 5)
        assert poly.max_tol == 2.5

    def test_from_partition_polyline(self):
        seg = TimestampedSegment((1, 2), (3, 4), 5, 8)
        part = PartitionPolyline("a", (seg,), (0.7,))
        join = JoinPolyline.from_partition_polyline(part)
        assert join.segs == [(1, 2, 3, 4, 5.0, 8.0, 0.7)]
        assert join.object_id == "a"
