"""Tests for snapshot DBSCAN — against hand-built cases and the brute-force
reference implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import dbscan, dbscan_brute_force

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


def as_point_map(pts):
    return {i: p for i, p in enumerate(pts)}


class TestBasicBehaviour:
    def test_empty(self):
        assert dbscan({}, 1.0, 2) == []

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            dbscan({"a": (0, 0)}, 0.0, 2)

    def test_single_cluster(self):
        points = {"a": (0, 0), "b": (1, 0), "c": (2, 0)}
        clusters = dbscan(points, 1.5, 2)
        assert clusters == [{"a", "b", "c"}]

    def test_noise_excluded(self):
        points = {"a": (0, 0), "b": (1, 0), "far": (50, 50)}
        clusters = dbscan(points, 1.5, 2)
        assert clusters == [{"a", "b"}]

    def test_two_separate_clusters(self):
        points = {
            "a": (0, 0), "b": (1, 0),
            "c": (100, 0), "d": (101, 0),
        }
        clusters = dbscan(points, 1.5, 2)
        assert len(clusters) == 2
        assert {"a", "b"} in clusters and {"c", "d"} in clusters

    def test_chain_is_density_connected(self):
        # A chain of points each within e of the next: one cluster even
        # though the ends are far apart — the arbitrary-shape property the
        # convoy definition is built on.
        points = {i: (i * 1.0, 0.0) for i in range(10)}
        clusters = dbscan(points, 1.0, 2)
        assert clusters == [{i for i in range(10)}]

    def test_min_pts_counts_self(self):
        # |NH_e(q)| includes q itself: two mutually-close points each have
        # neighbourhood size 2, so m=2 makes both core.
        points = {"a": (0, 0), "b": (1, 0)}
        assert dbscan(points, 1.5, 2) == [{"a", "b"}]
        assert dbscan(points, 1.5, 3) == []

    def test_cluster_at_least_min_pts(self):
        rng = random.Random(7)
        points = {
            i: (rng.uniform(0, 50), rng.uniform(0, 50)) for i in range(80)
        }
        for cluster in dbscan(points, 4.0, 4):
            assert len(cluster) >= 4

    def test_border_point_joins_one_cluster(self):
        # x is within e of cores from two different clusters but is not
        # core itself (m=4): classic border point; it must appear in
        # exactly one cluster.
        points = {
            "a1": (0, 0), "a2": (0, 1), "a3": (1, 0), "a4": (1, 1),
            "x": (2.5, 0.5),
            "b1": (5, 0), "b2": (5, 1), "b3": (4, 0), "b4": (4, 1),
        }
        clusters = dbscan(points, 1.8, 4)
        membership = [c for c in clusters if "x" in c]
        assert len(membership) == 1

    def test_lossy_flock_scenario(self):
        # Figure 1: o4 is too far from the disc centre but density-chained
        # through o3 — density clustering keeps the natural group together.
        points = {
            "o1": (0.0, 0.0),
            "o2": (1.0, 0.2),
            "o3": (2.0, 0.0),
            "o4": (3.0, 0.1),
        }
        clusters = dbscan(points, 1.2, 2)
        assert clusters == [{"o1", "o2", "o3", "o4"}]


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=50),
        st.floats(min_value=0.5, max_value=30),
        st.integers(min_value=1, max_value=6),
    )
    def test_grid_equals_brute_force(self, pts, eps, min_pts):
        """Same clusters with and without the grid index.

        Cluster identity is compared as a set of frozensets: border-point
        assignment depends on visit order, which both implementations share
        (both use index order), so the outputs must match exactly.
        """
        points = as_point_map(pts)
        fast = dbscan(points, eps, min_pts)
        slow = dbscan_brute_force(points, eps, min_pts)
        assert [set(c) for c in fast] == [set(c) for c in slow]

    def test_dense_random_field(self):
        rng = random.Random(3)
        points = {
            i: (rng.gauss(0, 10), rng.gauss(0, 10)) for i in range(300)
        }
        fast = dbscan(points, 2.0, 3)
        slow = dbscan_brute_force(points, 2.0, 3)
        assert [set(c) for c in fast] == [set(c) for c in slow]


class TestClusterInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=40, unique=True),
        st.floats(min_value=0.5, max_value=20),
        st.integers(min_value=2, max_value=5),
    )
    def test_clusters_disjoint_and_dense(self, pts, eps, min_pts):
        points = as_point_map(pts)
        clusters = dbscan(points, eps, min_pts)
        seen = set()
        for cluster in clusters:
            assert len(cluster) >= min_pts
            assert not (cluster & seen), "clusters must be disjoint"
            seen |= cluster
