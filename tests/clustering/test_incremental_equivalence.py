"""Differential suite: incremental clustering == fresh DBSCAN, always.

:class:`~repro.clustering.incremental.IncrementalSnapshotClusterer` promises
*exact* equality with :func:`~repro.clustering.dbscan.dbscan` at every tick
— same member sets and same cluster order — while reusing the previous
tick's state.  These tests are the teeth of that promise: seeded streams
across churn levels, object turnover, eps/m regimes, degenerate geometry
(grid-snapped ties, duplicates), snapshot key-order shuffles, and fallback
thresholds, each compared tick-for-tick against the fresh pass; plus the
end-to-end claim that a :class:`~repro.streaming.StreamingConvoyMiner`
running the incremental strategy emits identical convoys to the default
miner under both candidate-semantics modes.
"""

import math
import random

import pytest

from repro.clustering.dbscan import dbscan
from repro.clustering.incremental import IncrementalSnapshotClusterer
from repro.core.cmc import cmc
from repro.datasets import synthetic_dataset
from repro.streaming import (
    StreamingConvoyMiner,
    churn_stream,
    mine_stream,
    replay_database,
    synthetic_stream,
)

SEMANTICS = (False, True)


def assert_stream_equivalent(snapshots, eps, m, **clusterer_kwargs):
    """Feed snapshots to one clusterer; compare each answer to dbscan()."""
    clusterer = IncrementalSnapshotClusterer(eps, m, **clusterer_kwargs)
    for tick, snapshot in enumerate(snapshots):
        got = clusterer.cluster(snapshot)
        want = dbscan(snapshot, eps, m)
        assert got == want, (
            f"tick {tick}: incremental {sorted(map(sorted, got))} != "
            f"fresh {sorted(map(sorted, want))}"
        )
    return clusterer


def walk_stream(seed, *, n=60, ticks=40, churn=0.2, eps=3.0, area=50.0,
                leave=0.06, arrive=2, shuffle=0.0):
    """Seeded random-walk snapshots with appearance/disappearance."""
    rng = random.Random(seed)
    alive = {f"o{i}": (rng.uniform(0, area), rng.uniform(0, area))
             for i in range(n)}
    next_id = n
    snapshots = []
    for _ in range(ticks):
        movers = rng.sample(sorted(alive), max(1, int(churn * len(alive))))
        for o in movers:
            x, y = alive[o]
            alive[o] = (
                min(max(x + rng.uniform(-3 * eps, 3 * eps), 0.0), area),
                min(max(y + rng.uniform(-3 * eps, 3 * eps), 0.0), area),
            )
        for o in rng.sample(sorted(alive), int(leave * len(alive))):
            del alive[o]
        for _ in range(rng.randint(0, arrive)):
            alive[f"o{next_id}"] = (rng.uniform(0, area), rng.uniform(0, area))
            next_id += 1
        items = list(alive.items())
        if rng.random() < shuffle:
            rng.shuffle(items)
        snapshots.append(dict(items))
    return snapshots


class TestTickForTickEquality:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("eps,m", [(3.0, 3), (6.0, 2), (1.5, 4)])
    def test_random_walks(self, seed, eps, m):
        assert_stream_equivalent(walk_stream(seed, eps=eps), eps, m)

    @pytest.mark.parametrize("churn", [0.0, 0.02, 0.1, 0.3, 0.7])
    def test_churn_stream_all_levels(self, churn):
        snapshots = [
            snap for _t, snap in churn_stream(
                80, 30, seed=11, eps=5.0, churn=churn, turnover=0.03
            )
        ]
        clusterer = assert_stream_equivalent(snapshots, 5.0, 3)
        if churn <= 0.1:
            # The low-churn regime must actually exercise the delta path,
            # or this whole suite is vacuous.
            assert clusterer.counters["incremental_passes"] >= 28

    @pytest.mark.parametrize("seed", range(4))
    def test_grid_snapped_ties_and_duplicates(self, seed):
        """Exact-eps distances and shared borders between clusters."""
        rng = random.Random(900 + seed)
        eps, m = 2.0, 3
        pos = {i: (eps * rng.randint(0, 12) / 2.0,
                   eps * rng.randint(0, 12) / 2.0) for i in range(70)}
        snapshots = []
        for _ in range(40):
            for o in rng.sample(sorted(pos), rng.randint(0, 12)):
                pos[o] = (eps * rng.randint(0, 12) / 2.0,
                          eps * rng.randint(0, 12) / 2.0)
            if rng.random() < 0.3 and len(pos) > 5:
                del pos[rng.choice(sorted(pos))]
            if rng.random() < 0.3:
                pos[max(pos) + 1] = (eps * rng.randint(0, 12) / 2.0,
                                     eps * rng.randint(0, 12) / 2.0)
            items = sorted(pos.items())
            rng.shuffle(items)
            snapshots.append(dict(items))
        assert_stream_equivalent(snapshots, eps, m)

    def test_key_order_shuffles_without_movement(self):
        """Snapshot key order is data: DBSCAN's scan order breaks border
        ties, so reordering keys alone can re-assign a shared border even
        though no object moved.  The incremental pass must follow."""
        rng = random.Random(7)
        pos = {f"o{i}": (rng.uniform(0, 20), rng.uniform(0, 20))
               for i in range(50)}
        snapshots = []
        for _ in range(25):
            items = list(pos.items())
            rng.shuffle(items)
            snapshots.append(dict(items))
        clusterer = assert_stream_equivalent(snapshots, 3.0, 2)
        assert clusterer.counters["incremental_passes"] == 24

    def test_min_pts_one_and_empty_snapshots(self):
        rng = random.Random(5)
        pos = {}
        snapshots = []
        for _ in range(40):
            if rng.random() < 0.15:
                pos = {}
            else:
                for _ in range(rng.randint(0, 4)):
                    pos[f"p{rng.randint(0, 20)}"] = (
                        float(rng.randint(0, 6)), float(rng.randint(0, 6))
                    )
                for o in list(pos):
                    if rng.random() < 0.1:
                        del pos[o]
            snapshots.append(dict(pos))
        assert_stream_equivalent(snapshots, 1.0, 1)

    def test_output_is_stateless_copy(self):
        """Returned sets are fresh objects; mutating them must not corrupt
        the clusterer's spliced state."""
        snapshots = [snap for _t, snap in churn_stream(40, 10, seed=3,
                                                       eps=5.0, churn=0.05)]
        clusterer = IncrementalSnapshotClusterer(5.0, 2)
        for snapshot in snapshots:
            for cluster in clusterer.cluster(snapshot):
                cluster.clear()  # caller abuse
            assert clusterer.cluster(dict(snapshot)) == dbscan(
                snapshot, 5.0, 2
            )

    def test_interleaved_resume_after_gap_sized_delta(self):
        """Output is history-independent: skipping ticks (as the miner does
        below m objects) just makes a bigger delta."""
        snapshots = walk_stream(17, churn=0.1)
        clusterer = IncrementalSnapshotClusterer(3.0, 3)
        for tick, snapshot in enumerate(snapshots):
            if tick % 3 == 0:
                continue  # the clusterer never sees these snapshots
            assert clusterer.cluster(snapshot) == dbscan(snapshot, 3.0, 3)


class TestFallbackThresholds:
    @pytest.mark.parametrize("threshold", [0.0, 0.2, 1.0])
    def test_any_threshold_is_exact(self, threshold):
        snapshots = walk_stream(23, churn=0.35)
        assert_stream_equivalent(
            snapshots, 3.0, 3, churn_threshold=threshold
        )

    def test_threshold_zero_always_runs_full_passes(self):
        snapshots = walk_stream(29, ticks=10)
        clusterer = assert_stream_equivalent(
            snapshots, 3.0, 3, churn_threshold=0.0
        )
        assert clusterer.counters["full_passes"] == 10
        assert clusterer.counters["incremental_passes"] == 0

    def test_threshold_one_never_falls_back(self):
        snapshots = walk_stream(31, ticks=10, churn=0.9)
        clusterer = assert_stream_equivalent(
            snapshots, 3.0, 3, churn_threshold=1.0
        )
        assert clusterer.counters["full_passes"] == 1  # first tick only

    def test_reset_drops_state(self):
        clusterer = IncrementalSnapshotClusterer(3.0, 2)
        snapshots = walk_stream(37, ticks=6, churn=0.05)
        for snapshot in snapshots[:3]:
            clusterer.cluster(snapshot)
        clusterer.reset()
        for snapshot in snapshots[3:]:
            assert clusterer.cluster(snapshot) == dbscan(snapshot, 3.0, 2)
        assert clusterer.counters["full_passes"] == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            IncrementalSnapshotClusterer(0.0, 2)
        with pytest.raises(ValueError):
            IncrementalSnapshotClusterer(1.0, 0)
        with pytest.raises(ValueError):
            IncrementalSnapshotClusterer(1.0, 2, churn_threshold=1.5)

    def test_rejects_non_finite_coordinates_in_delta(self):
        clusterer = IncrementalSnapshotClusterer(1.0, 2)
        clusterer.cluster({"a": (0.0, 0.0), "b": (1.0, 0.0)})
        with pytest.raises(ValueError, match="finite"):
            clusterer.cluster({"a": (0.0, 0.0), "b": (math.nan, 0.0)})


class TestMinerEquivalence:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("churn", [0.05, 0.3])
    def test_churn_stream_convoys_identical(self, paper_semantics, churn):
        def run(clusterer):
            return mine_stream(
                churn_stream(60, 60, seed=19, eps=8.0, churn=churn,
                             turnover=0.02),
                m=3, k=5, eps=8.0, paper_semantics=paper_semantics,
                clusterer=clusterer,
            )

        assert run("incremental") == run(None)

    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_synthetic_stream_convoys_identical(self, paper_semantics):
        def run(clusterer):
            return mine_stream(
                synthetic_stream(50, 60, seed=2, eps=10.0),
                m=3, k=8, eps=10.0, paper_semantics=paper_semantics,
                clusterer=clusterer,
            )

        assert run("incremental") == run(None)

    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_database_replay_with_gaps_identical(self, paper_semantics):
        spec = synthetic_dataset(
            "inc-replay", 13, n_objects=30, t_domain=40, eps=5.0, m=3, k=6,
            episode_count=4, episode_size=(3, 5),
            alive_fraction=(0.4, 0.9), keep_probability=0.8,
        )

        def run(clusterer):
            return mine_stream(
                replay_database(spec.database), m=3, k=6, eps=5.0,
                paper_semantics=paper_semantics, clusterer=clusterer,
            )

        assert run("incremental") == run(None)

    def test_incremental_path_actually_used_by_miner(self):
        miner = StreamingConvoyMiner(3, 5, 8.0, clusterer="incremental")
        for t, snapshot in churn_stream(60, 30, seed=41, eps=8.0,
                                        churn=0.05):
            miner.feed(t, snapshot)
        miner.flush()
        assert miner.clusterer.counters["incremental_passes"] >= 28

    def test_offline_cmc_accepts_clusterer(self):
        spec = synthetic_dataset(
            "inc-cmc", 3, n_objects=25, t_domain=30, eps=5.0, m=3, k=5,
            episode_count=3, episode_size=(3, 4),
        )
        base = cmc(spec.database, 3, 5, 5.0)
        assert cmc(spec.database, 3, 5, 5.0, clusterer="incremental") == base


class TestClustererStrategyParameter:
    def test_default_and_full_have_no_clusterer_object(self):
        assert StreamingConvoyMiner(2, 3, 1.0).clusterer is None
        assert StreamingConvoyMiner(2, 3, 1.0, clusterer="full").clusterer \
            is None

    def test_custom_clusterer_object_is_used(self):
        calls = []

        class Recorder:
            def cluster(self, snapshot):
                calls.append(dict(snapshot))
                return dbscan(snapshot, 2.0, 2)

        miner = StreamingConvoyMiner(2, 3, 2.0, clusterer=Recorder())
        miner.feed(0, {"a": (0.0, 0.0), "b": (1.0, 0.0)})
        miner.feed(1, {"a": (0.0, 0.0), "b": (1.0, 0.0)})
        assert len(calls) == 2

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="clusterer"):
            StreamingConvoyMiner(2, 3, 1.0, clusterer="fastest")
        with pytest.raises(ValueError, match="clusterer"):
            StreamingConvoyMiner(2, 3, 1.0, clusterer=object())
