"""Tests for the neighbourhood-oracle DBSCAN skeleton."""

import pytest

from repro.clustering.generic_dbscan import density_cluster


def adjacency_fn(adjacency):
    return lambda i: adjacency[i]


class TestBasicBehaviour:
    def test_no_items(self):
        assert density_cluster(0, lambda i: [i], 2) == []

    def test_rejects_bad_min_pts(self):
        with pytest.raises(ValueError):
            density_cluster(3, lambda i: [i], 0)

    def test_all_singletons_are_noise(self):
        clusters = density_cluster(5, lambda i: [i], 2)
        assert clusters == []

    def test_min_pts_one_makes_every_item_a_cluster(self):
        clusters = density_cluster(3, lambda i: [i], 1)
        assert [set(c) for c in clusters] == [{0}, {1}, {2}]

    def test_single_component(self):
        adjacency = {0: [0, 1], 1: [0, 1, 2], 2: [1, 2]}
        clusters = density_cluster(3, adjacency_fn(adjacency), 2)
        assert [set(c) for c in clusters] == [{0, 1, 2}]

    def test_two_components(self):
        adjacency = {0: [0, 1], 1: [0, 1], 2: [2, 3], 3: [2, 3]}
        clusters = density_cluster(4, adjacency_fn(adjacency), 2)
        assert [set(c) for c in clusters] == [{0, 1}, {2, 3}]


class TestCoreBorderNoise:
    def test_border_item_attaches_to_core(self):
        # 1 is core (3 neighbours); 0 and 2 are border (2 neighbours each
        # with min_pts 3); both join 1's cluster.
        adjacency = {0: [0, 1], 1: [0, 1, 2], 2: [1, 2]}
        clusters = density_cluster(3, adjacency_fn(adjacency), 3)
        assert [set(c) for c in clusters] == [{0, 1, 2}]

    def test_chain_through_cores_only(self):
        # 0-1-2-3-4 path adjacency: with min_pts 3, items 1..3 are core;
        # the ends are border but reachable, so one cluster of all 5.
        adjacency = {
            0: [0, 1],
            1: [0, 1, 2],
            2: [1, 2, 3],
            3: [2, 3, 4],
            4: [3, 4],
        }
        clusters = density_cluster(5, adjacency_fn(adjacency), 3)
        assert [set(c) for c in clusters] == [{0, 1, 2, 3, 4}]

    def test_border_does_not_bridge(self):
        # 2 is border between two cores 1 and 3 (min_pts 3): 1 and 3 are
        # NOT density-connected through the non-core 2, so two clusters
        # result and 2 joins the first that reached it.
        adjacency = {
            0: [0, 1], 1: [0, 1, 2], 2: [1, 2, 3], 3: [2, 3, 4], 4: [3, 4],
        }
        # Make 2 non-core by bumping min_pts to 3: |NH(2)| = 3 — still
        # core.  Use a sparser middle instead.
        adjacency = {
            0: [0, 1, 5], 1: [0, 1, 5], 5: [0, 1, 5, 2],
            2: [5, 2, 3],
            3: [2, 3, 4, 6], 4: [3, 4, 6], 6: [3, 4, 6],
        }
        clusters = density_cluster(7, adjacency_fn(adjacency), 3)
        # 2 has |NH| = 3 — core here; adjust expectation accordingly: all
        # linked through 2.
        assert [set(c) for c in clusters] == [{0, 1, 5, 2, 3, 4, 6}]

    def test_noise_item_in_no_cluster(self):
        adjacency = {0: [0, 1], 1: [0, 1], 2: [2]}
        clusters = density_cluster(3, adjacency_fn(adjacency), 2)
        assert [set(c) for c in clusters] == [{0, 1}]


class TestDeterminism:
    def test_discovery_order_is_stable(self):
        adjacency = {0: [0, 1], 1: [0, 1], 2: [2, 3], 3: [2, 3]}
        first = density_cluster(4, adjacency_fn(adjacency), 2)
        second = density_cluster(4, adjacency_fn(adjacency), 2)
        assert first == second

    def test_neighbors_fn_called_lazily_for_noise(self):
        calls = []

        def tracking(i):
            calls.append(i)
            return [i]

        density_cluster(3, tracking, 2)
        # Noise items are looked up exactly once each (no expansion).
        assert calls == [0, 1, 2]
