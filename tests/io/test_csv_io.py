"""Tests for CSV import/export."""

import pytest

from repro.io.csv_io import load_trajectories_csv, save_trajectories_csv
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def db_of(*specs):
    return TrajectoryDatabase(Trajectory(oid, pts) for oid, pts in specs)


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        db = db_of(
            ("a", [(0.5, -1.25, 0), (1.5, 2.0, 3)]),
            ("b", [(9.0, 9.0, 1)]),
        )
        path = tmp_path / "trajectories.csv"
        save_trajectories_csv(db, path)
        loaded = load_trajectories_csv(path)
        assert set(loaded.object_ids) == {"a", "b"}
        assert list(loaded["a"]) == list(db["a"])
        assert list(loaded["b"]) == list(db["b"])

    def test_save_without_header(self, tmp_path):
        db = db_of(("a", [(1, 2, 3)]))
        path = tmp_path / "plain.csv"
        save_trajectories_csv(db, path, header=False)
        content = path.read_text().strip()
        assert content == "a,3,1.0,2.0"

    def test_load_headerless_auto(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a,0,1.0,2.0\na,1,2.0,3.0\n")
        loaded = load_trajectories_csv(path)
        assert len(loaded["a"]) == 2

    def test_load_with_header_auto(self, tmp_path):
        path = tmp_path / "with_header.csv"
        path.write_text("object_id,t,x,y\na,0,1.0,2.0\n")
        loaded = load_trajectories_csv(path)
        assert len(loaded["a"]) == 1

    def test_explicit_header_flag(self, tmp_path):
        path = tmp_path / "f.csv"
        path.write_text("object_id,t,x,y\na,0,1.0,2.0\n")
        loaded = load_trajectories_csv(path, has_header=True)
        assert len(loaded["a"]) == 1


class TestErrors:
    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,0,1.0\n")
        with pytest.raises(ValueError, match="line 1"):
            load_trajectories_csv(path, has_header=False)

    def test_unparsable_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,0,one,2.0\n")
        with pytest.raises(ValueError, match="line 1"):
            load_trajectories_csv(path, has_header=False)

    def test_duplicate_sample_time(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("a,0,1.0,2.0\na,0,3.0,4.0\n")
        with pytest.raises(ValueError, match="duplicate"):
            load_trajectories_csv(path, has_header=False)

    def test_duplicate_error_names_both_lines(self, tmp_path):
        """Load-time duplicates must point at both offending file lines —
        the deferred Trajectory.__init__ error carried no line at all."""
        path = tmp_path / "dup.csv"
        path.write_text("a,0,1.0,2.0\nb,0,9.0,9.0\na,0,3.0,4.0\n")
        with pytest.raises(ValueError, match=r"line 3.*'a'.*t=0.*line 1"):
            load_trajectories_csv(path, has_header=False)

    def test_duplicate_under_header_counts_file_lines(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("object_id,t,x,y\na,7,1.0,2.0\na,7,3.0,4.0\n")
        with pytest.raises(ValueError, match=r"line 3.*t=7.*line 2"):
            load_trajectories_csv(path)

    def test_duplicate_split_across_blank_row(self, tmp_path):
        """A duplicate separated by a blank row used to slip through the
        blank-line skip and only explode later inside Trajectory."""
        path = tmp_path / "dup_blank.csv"
        path.write_text("a,0,1.0,2.0\n\na,0,3.0,4.0\n")
        with pytest.raises(ValueError, match=r"line 3.*duplicate.*line 1"):
            load_trajectories_csv(path, has_header=False)

    def test_same_time_different_objects_is_legal(self, tmp_path):
        path = tmp_path / "ok.csv"
        path.write_text("a,0,1.0,2.0\nb,0,3.0,4.0\n")
        loaded = load_trajectories_csv(path, has_header=False)
        assert len(loaded["a"]) == 1 and len(loaded["b"]) == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        loaded = load_trajectories_csv(path)
        assert len(loaded) == 0

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("a,0,1.0,2.0\n\na,1,2.0,3.0\n")
        loaded = load_trajectories_csv(path)
        assert len(loaded["a"]) == 2


class TestRowOrdering:
    def test_unsorted_rows_accepted(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text("a,5,5.0,0.0\na,1,1.0,0.0\na,3,3.0,0.0\n")
        loaded = load_trajectories_csv(path)
        assert [p.t for p in loaded["a"]] == [1, 3, 5]

    def test_interleaved_objects(self, tmp_path):
        path = tmp_path / "interleaved.csv"
        path.write_text("a,0,0,0\nb,0,1,1\na,1,2,2\nb,1,3,3\n")
        loaded = load_trajectories_csv(path)
        assert len(loaded["a"]) == 2 and len(loaded["b"]) == 2
