"""Tests for the movement primitives."""

import math
import random

import pytest

from repro.datasets.movers import (
    group_trajectories,
    irregular_sample,
    waypoint_positions,
)
from repro.trajectory.trajectory import Trajectory


class TestWaypointPositions:
    def test_length(self):
        rng = random.Random(0)
        assert len(waypoint_positions(rng, 50, 100.0, 3.0)) == 50

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            waypoint_positions(random.Random(0), 0, 100.0, 3.0)

    def test_stays_in_area(self):
        rng = random.Random(1)
        for x, y in waypoint_positions(rng, 200, 50.0, 5.0):
            assert 0 <= x <= 50 and 0 <= y <= 50

    def test_speed_bounded(self):
        rng = random.Random(2)
        positions = waypoint_positions(rng, 100, 500.0, 4.0)
        for (x1, y1), (x2, y2) in zip(positions, positions[1:]):
            assert math.hypot(x2 - x1, y2 - y1) <= 4.0 + 1e-9

    def test_deterministic(self):
        a = waypoint_positions(random.Random(7), 30, 100.0, 3.0)
        b = waypoint_positions(random.Random(7), 30, 100.0, 3.0)
        assert a == b

    def test_explicit_start(self):
        rng = random.Random(3)
        positions = waypoint_positions(rng, 10, 100.0, 3.0, start=(5.0, 6.0))
        assert positions[0] == (5.0, 6.0)


class TestGroupTrajectories:
    def test_members_follow_leader(self):
        rng = random.Random(4)
        leader = waypoint_positions(rng, 40, 100.0, 3.0)
        members = group_trajectories(
            rng, leader, 10, ["a", "b", "c"], spread_fn=lambda s: 1.0
        )
        assert len(members) == 3
        for trajectory in members:
            assert trajectory.start_time == 10
            assert trajectory.end_time == 49
            for step, point in enumerate(trajectory):
                lx, ly = leader[step]
                assert math.hypot(point.x - lx, point.y - ly) <= 1.0 + 1e-9

    def test_spread_function_controls_distance(self):
        rng = random.Random(5)
        leader = [(0.0, 0.0)] * 20
        members = group_trajectories(
            rng, leader, 0, ["a"],
            spread_fn=lambda s: 0.5 if s < 10 else 10.0,
        )
        trajectory = members[0]
        assert math.hypot(*trajectory[0].xy) <= 0.5 + 1e-9
        assert math.hypot(*trajectory[-1].xy) >= 9.9


class TestIrregularSample:
    def _line(self, n=50):
        return Trajectory("o", [(float(t), 0.0, t) for t in range(n)])

    def test_keeps_endpoints(self):
        rng = random.Random(6)
        thinned = irregular_sample(self._line(), rng, 0.2)
        assert thinned.start_time == 0
        assert thinned.end_time == 49

    def test_keep_probability_one_is_identity(self):
        tr = self._line()
        assert irregular_sample(tr, random.Random(0), 1.0) is tr

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            irregular_sample(self._line(), random.Random(0), 0.0)

    def test_thinning_reduces_points(self):
        rng = random.Random(7)
        thinned = irregular_sample(self._line(200), rng, 0.3)
        assert len(thinned) < 200
        assert len(thinned) >= 2

    def test_short_trajectory_untouched(self):
        tr = Trajectory("o", [(0, 0, 0), (1, 1, 1)])
        assert irregular_sample(tr, random.Random(0), 0.1) is tr
