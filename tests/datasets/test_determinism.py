"""Seed determinism of every data generator.

The equivalence suites, the benches, and CI all lean on seeded synthetic
data being a pure function of its seed: same seed => byte-identical data
across runs, different seeds => different data.  These tests guard that
for the four paper-like dataset generators and for the streaming synthetic
source.
"""

import pytest

from repro.datasets import DATASETS, synthetic_dataset
from repro.io.csv_io import save_trajectories_csv
from repro.streaming import synthetic_stream

#: Smallest scales that keep every generator's constraints satisfied.
TINY_SCALES = {"truck": 0.005, "cattle": 0.002, "car": 0.005, "taxi": 0.08}


def dataset_bytes(name, seed, tmp_path, tag):
    """Serialize one generated dataset to CSV and return the raw bytes."""
    spec = DATASETS[name](seed=seed, scale=TINY_SCALES[name])
    path = tmp_path / f"{name}-{tag}.csv"
    save_trajectories_csv(spec.database, path)
    return path.read_bytes()


class TestPaperLikeGenerators:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_same_seed_is_byte_identical(self, name, tmp_path):
        first = dataset_bytes(name, 123, tmp_path, "first")
        second = dataset_bytes(name, 123, tmp_path, "second")
        assert first == second

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_different_seeds_differ(self, name, tmp_path):
        first = dataset_bytes(name, 123, tmp_path, "a")
        second = dataset_bytes(name, 321, tmp_path, "b")
        assert first != second


class TestSyntheticDataset:
    def kwargs(self, seed):
        return dict(
            name="det", seed=seed, n_objects=20, t_domain=40, eps=5.0,
            m=3, k=5, episode_count=3, episode_size=(3, 4),
            alive_fraction=(0.4, 0.9), keep_probability=0.8,
        )

    def test_same_seed_reproduces_everything(self):
        first = synthetic_dataset(**self.kwargs(9))
        second = synthetic_dataset(**self.kwargs(9))
        assert first.planted == second.planted
        for left, right in zip(sorted(first.database, key=lambda tr: str(tr.object_id)),
                               sorted(second.database, key=lambda tr: str(tr.object_id))):
            assert left.object_id == right.object_id
            assert list(left) == list(right)

    def test_different_seeds_differ(self):
        first = synthetic_dataset(**self.kwargs(9))
        second = synthetic_dataset(**self.kwargs(10))
        assert any(
            list(first.database[oid]) != list(second.database[oid])
            for oid in first.database.object_ids
            if oid in second.database
        )


class TestSyntheticStreamSource:
    def test_same_seed_is_identical(self):
        first = list(synthetic_stream(25, 15, seed=4))
        second = list(synthetic_stream(25, 15, seed=4))
        assert first == second  # exact float equality, tick by tick

    def test_different_seeds_differ(self):
        first = list(synthetic_stream(25, 15, seed=4))
        second = list(synthetic_stream(25, 15, seed=5))
        assert first != second

    def test_generator_is_restartable(self):
        """Two independent iterations of fresh generators agree — state is
        not shared across calls."""
        gen = synthetic_stream(10, 5, seed=8)
        consumed = list(gen)
        assert consumed == list(synthetic_stream(10, 5, seed=8))
