"""Tests for the paper-like dataset generators (Table 3 emulation)."""

import pytest

from repro.core.cmc import cmc
from repro.core.verification import normalize_convoys
from repro.datasets.paperlike import (
    DATASETS,
    PAPER_TABLE3,
    synthetic_dataset,
    truck_dataset,
)

# Tiny scales so the whole module runs in a few seconds.
SMALL = {
    "truck": dict(scale=0.02),
    "cattle": dict(scale=0.002),
    "car": dict(scale=0.02),
    "taxi": dict(scale=0.15),
}


@pytest.fixture(scope="module")
def specs():
    return {name: gen(**SMALL[name]) for name, gen in DATASETS.items()}


class TestGeneratorShapes:
    def test_registry_covers_paper_datasets(self):
        assert set(DATASETS) == {"truck", "cattle", "car", "taxi"}
        assert set(PAPER_TABLE3) == set(DATASETS)

    def test_object_counts_match_table3(self, specs):
        for name, spec in specs.items():
            assert len(spec.database) == PAPER_TABLE3[name]["num_objects"]

    def test_m_and_eps_match_table3(self, specs):
        for name, spec in specs.items():
            assert spec.m == PAPER_TABLE3[name]["m"]
            assert spec.eps == PAPER_TABLE3[name]["eps"]

    def test_time_domain_scales(self, specs):
        for name, spec in specs.items():
            paper_T = PAPER_TABLE3[name]["time_domain_length"]
            measured = spec.database.time_domain_length
            assert measured <= paper_T
            assert measured >= 50

    def test_determinism(self):
        a = truck_dataset(scale=0.02)
        b = truck_dataset(scale=0.02)
        assert a.statistics() == b.statistics()
        assert a.planted == b.planted

    def test_seed_changes_data(self):
        a = truck_dataset(seed=1, scale=0.02)
        b = truck_dataset(seed=2, scale=0.02)
        assert a.database.snapshot(a.database.min_time + 5) != b.database.snapshot(
            b.database.min_time + 5
        )

    def test_cattle_full_lifetimes_regular_sampling(self, specs):
        spec = specs["cattle"]
        T = spec.database.time_domain_length
        for trajectory in spec.database:
            assert len(trajectory) == T  # every tick sampled

    def test_taxi_is_sparsely_sampled(self, specs):
        spec = specs["taxi"]
        stats = spec.statistics()
        density = stats["total_points"] / (
            stats["num_objects"] * stats["time_domain_length"]
        )
        assert density < 0.75  # plenty of missing ticks

    def test_car_lifetimes_heterogeneous(self, specs):
        spec = specs["car"]
        durations = [tr.duration for tr in spec.database]
        assert max(durations) > 3 * min(durations)


class TestPlantedDiscovery:
    @pytest.mark.parametrize("name", ["truck", "cattle", "car", "taxi"])
    def test_planted_convoys_detected(self, specs, name):
        spec = specs[name]
        assert spec.planted, "generator planted nothing"
        convoys = normalize_convoys(
            cmc(spec.database, spec.m, spec.k, spec.eps)
        )
        detected = sum(
            1
            for planted in spec.planted
            if planted.is_detected_by(convoys, spec.m)
        )
        # CMC's intersection semantics may clip edges near noise, but the
        # overwhelming majority of planted convoys must be detected.
        assert detected >= 0.7 * len(spec.planted)


class TestSyntheticDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_dataset(
                "x", seed=0, n_objects=0, t_domain=100, eps=5, m=2, k=5,
                episode_count=0, episode_size=(2, 2),
            )
        with pytest.raises(ValueError):
            synthetic_dataset(
                "x", seed=0, n_objects=3, t_domain=4, eps=5, m=2, k=10,
                episode_count=0, episode_size=(2, 2),
            )

    def test_custom_dataset(self):
        spec = synthetic_dataset(
            "custom", seed=5, n_objects=12, t_domain=120, eps=6.0, m=2, k=8,
            episode_count=2, episode_size=(2, 3),
        )
        assert spec.name == "custom"
        assert len(spec.database) == 12
        assert len(spec.planted) == 2
        assert spec.paper_stats == {}
