"""Tests for convoy planting and ground-truth records."""

import random

import pytest

from repro.core.cmc import cmc
from repro.core.convoy import Convoy
from repro.core.verification import normalize_convoys
from repro.datasets.planting import PlantedConvoy, plant_convoy_group
from repro.trajectory.database import TrajectoryDatabase


class TestPlantedConvoy:
    def test_lifetime(self):
        planted = PlantedConvoy(frozenset({"a"}), 5, 14)
        assert planted.lifetime == 10

    def test_is_covered_by(self):
        planted = PlantedConvoy(frozenset({"a", "b"}), 5, 10)
        assert planted.is_covered_by([Convoy(["a", "b", "c"], 4, 11)])
        assert not planted.is_covered_by([Convoy(["a", "b"], 6, 11)])
        assert not planted.is_covered_by([Convoy(["a", "c"], 0, 20)])

    def test_is_detected_by_tolerates_clipping(self):
        planted = PlantedConvoy(frozenset({"a", "b", "c"}), 10, 19)
        clipped = Convoy(["a", "b", "c"], 12, 19)  # 8/10 overlap
        assert planted.is_detected_by([clipped], min_members=3)
        assert not planted.is_detected_by(
            [Convoy(["a", "b", "c"], 17, 19)], min_members=3
        )


class TestPlantConvoyGroup:
    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            plant_convoy_group(
                random.Random(0), ["a"], 10, 5, eps=4.0, area=100.0, speed=2.0
            )

    def test_ground_truth_record(self):
        rng = random.Random(1)
        trajectories, planted = plant_convoy_group(
            rng, ["a", "b", "c"], 10, 25, eps=4.0, area=200.0, speed=2.0
        )
        assert planted.objects == frozenset({"a", "b", "c"})
        assert planted.t_start == 10 and planted.t_end == 25
        assert len(trajectories) == 3

    def test_members_tight_in_core_interval(self):
        rng = random.Random(2)
        eps = 4.0
        trajectories, planted = plant_convoy_group(
            rng, ["a", "b", "c"], 10, 25, eps=eps, area=200.0, speed=2.0
        )
        db = TrajectoryDatabase(trajectories)
        for t in range(planted.t_start, planted.t_end + 1):
            snap = db.snapshot(t)
            xs = [p[0] for p in snap.values()]
            ys = [p[1] for p in snap.values()]
            assert max(xs) - min(xs) <= eps
            assert max(ys) - min(ys) <= eps

    def test_members_disperse_outside(self):
        rng = random.Random(3)
        eps = 4.0
        trajectories, planted = plant_convoy_group(
            rng, ["a", "b", "c"], 30, 45, eps=eps, area=300.0, speed=2.0,
            ramp=10,
        )
        db = TrajectoryDatabase(trajectories)
        snap = db.snapshot(db.min_time)
        xs = [p[0] for p in snap.values()]
        ys = [p[1] for p in snap.values()]
        # Fully dispersed at the trajectory start (one full ramp away).
        assert max(max(xs) - min(xs), max(ys) - min(ys)) > 2 * eps

    @pytest.mark.parametrize("seed", range(5))
    def test_cmc_discovers_planted_convoy(self, seed):
        """Noise-free planting: the exact algorithm must cover the planted
        convoy strictly."""
        rng = random.Random(seed)
        eps = 5.0
        trajectories, planted = plant_convoy_group(
            rng, ["a", "b", "c", "d"], 20, 39, eps=eps, area=400.0, speed=3.0
        )
        db = TrajectoryDatabase(trajectories)
        convoys = normalize_convoys(cmc(db, 3, 10, eps))
        assert planted.is_covered_by(convoys), convoys
