"""Tests for the Trajectory polyline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trajectory.point import TrajectoryPoint
from repro.trajectory.trajectory import Trajectory


def make_trajectory(samples, object_id="o"):
    return Trajectory(object_id, [TrajectoryPoint(x, y, t) for x, y, t in samples])


class TestConstruction:
    def test_sorts_by_time(self):
        tr = make_trajectory([(2, 2, 2), (0, 0, 0), (1, 1, 1)])
        assert [p.t for p in tr] == [0, 1, 2]

    def test_accepts_plain_tuples(self):
        tr = Trajectory("o", [(0, 0, 0), (1, 1, 1)])
        assert len(tr) == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Trajectory("o", [])

    def test_rejects_duplicate_times(self):
        with pytest.raises(ValueError):
            make_trajectory([(0, 0, 0), (1, 1, 0)])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Trajectory("o", [(float("nan"), 0, 0)])

    def test_single_point_trajectory(self):
        tr = make_trajectory([(5, 5, 3)])
        assert tr.tau == (3, 3)
        assert tr.duration == 0


class TestTemporalExtent:
    def test_tau(self):
        tr = make_trajectory([(0, 0, 2), (1, 1, 9)])
        assert tr.tau == (2, 9)
        assert tr.start_time == 2
        assert tr.end_time == 9
        assert tr.duration == 7

    def test_is_alive_at(self):
        tr = make_trajectory([(0, 0, 2), (1, 1, 9)])
        assert tr.is_alive_at(2)
        assert tr.is_alive_at(5)  # between samples still alive
        assert tr.is_alive_at(9)
        assert not tr.is_alive_at(1)
        assert not tr.is_alive_at(10)

    def test_has_sample_at(self):
        tr = make_trajectory([(0, 0, 2), (1, 1, 5), (2, 2, 9)])
        assert tr.has_sample_at(5)
        assert not tr.has_sample_at(4)
        assert not tr.has_sample_at(99)


class TestLocationLookup:
    def test_exact_sample(self):
        tr = make_trajectory([(0, 0, 0), (10, 20, 10)])
        assert tr.location_at(0) == (0, 0)
        assert tr.location_at(10) == (10, 20)

    def test_interpolated_virtual_point(self):
        tr = make_trajectory([(0, 0, 0), (10, 20, 10)])
        assert tr.location_at(5) == (5.0, 10.0)

    def test_outside_tau_raises(self):
        tr = make_trajectory([(0, 0, 0), (10, 20, 10)])
        with pytest.raises(ValueError):
            tr.location_at(11)
        with pytest.raises(ValueError):
            tr.location_at(-1)

    def test_point_at_carries_time(self):
        tr = make_trajectory([(0, 0, 0), (10, 20, 10)])
        p = tr.point_at(5)
        assert p.t == 5 and p.xy == (5.0, 10.0)

    @given(st.integers(min_value=0, max_value=30))
    def test_interpolation_within_sample_hull(self, t):
        tr = make_trajectory([(0, 0, 0), (4, 8, 10), (2, -6, 20), (9, 1, 30)])
        x, y = tr.location_at(t)
        assert 0 - 1e-9 <= x <= 9 + 1e-9
        assert -6 - 1e-9 <= y <= 8 + 1e-9


class TestSlicing:
    def test_plain_slice(self):
        tr = make_trajectory([(i, i, i) for i in range(10)])
        piece = tr.sliced(3, 6)
        assert piece.tau == (3, 6)
        assert len(piece) == 4

    def test_disjoint_window_returns_none(self):
        tr = make_trajectory([(i, i, i) for i in range(5)])
        assert tr.sliced(10, 20) is None

    def test_reversed_window_rejected(self):
        tr = make_trajectory([(i, i, i) for i in range(5)])
        with pytest.raises(ValueError):
            tr.sliced(4, 2)

    def test_slice_synthesizes_boundary_samples(self):
        # Samples at 0 and 10 only; slicing [3, 7] must keep the object
        # alive over the whole window via interpolated boundary points.
        tr = make_trajectory([(0, 0, 0), (10, 0, 10)])
        piece = tr.sliced(3, 7)
        assert piece.tau == (3, 7)
        assert piece.location_at(3) == pytest.approx((3.0, 0.0))
        assert piece.location_at(7) == pytest.approx((7.0, 0.0))

    def test_slice_clamps_to_tau(self):
        tr = make_trajectory([(i, 0, i) for i in range(4, 9)])
        piece = tr.sliced(0, 100)
        assert piece.tau == (4, 8)

    @given(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    def test_slice_preserves_location_semantics(self, a, b):
        """o_sliced(t) == o(t) for every t the slice covers."""
        t_lo, t_hi = min(a, b), max(a, b)
        tr = make_trajectory(
            [(0, 0, 0), (7, 3, 5), (1, 9, 11), (4, 4, 16), (8, 0, 20)]
        )
        piece = tr.sliced(t_lo, t_hi)
        if piece is None:
            return
        for t in range(piece.start_time, piece.end_time + 1):
            expected = tr.location_at(t)
            got = piece.location_at(t)
            assert got[0] == pytest.approx(expected[0], abs=1e-9)
            assert got[1] == pytest.approx(expected[1], abs=1e-9)


class TestAccessors:
    def test_coordinates_parallel_arrays(self):
        tr = make_trajectory([(1, 2, 0), (3, 4, 1)])
        times, xs, ys = tr.coordinates()
        assert list(times) == [0, 1]
        assert list(xs) == [1, 3]
        assert list(ys) == [2, 4]

    def test_indexing(self):
        tr = make_trajectory([(1, 2, 0), (3, 4, 1)])
        assert tr[1] == TrajectoryPoint(3, 4, 1)
        assert tr[-1] == TrajectoryPoint(3, 4, 1)

    def test_bounding_box(self):
        tr = make_trajectory([(1, 2, 0), (3, -4, 1), (0, 0, 2)])
        box = tr.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, -4, 3, 2)

    def test_repr_mentions_id_and_tau(self):
        tr = make_trajectory([(0, 0, 2), (1, 1, 5)], object_id="truck-7")
        assert "truck-7" in repr(tr)
        assert "[2, 5]" in repr(tr)
