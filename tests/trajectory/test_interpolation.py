"""Tests for virtual-point interpolation (Section 4 semantics)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trajectory.interpolation import interpolate_position, virtual_point
from repro.trajectory.point import TrajectoryPoint


class TestInterpolatePosition:
    def test_exact_sample(self):
        assert interpolate_position([0, 10], [0, 10], [0, 20], 10) == (10, 20)

    def test_midpoint(self):
        assert interpolate_position([0, 10], [0, 10], [0, 20], 5) == (5.0, 10.0)

    def test_irregular_gaps(self):
        times = [0, 1, 7]
        xs = [0, 1, 7]
        ys = [0, 0, 0]
        assert interpolate_position(times, xs, ys, 4) == (4.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interpolate_position([], [], [], 0)

    def test_no_extrapolation(self):
        with pytest.raises(ValueError):
            interpolate_position([2, 5], [0, 0], [0, 0], 1)
        with pytest.raises(ValueError):
            interpolate_position([2, 5], [0, 0], [0, 0], 6)

    @given(st.integers(min_value=0, max_value=100))
    def test_always_inside_segment_hull(self, t):
        times = [0, 30, 100]
        xs = [0.0, 60.0, 10.0]
        ys = [5.0, -5.0, 0.0]
        x, y = interpolate_position(times, xs, ys, t)
        assert min(xs) - 1e-9 <= x <= max(xs) + 1e-9
        assert min(ys) - 1e-9 <= y <= max(ys) + 1e-9


class TestVirtualPoint:
    def test_between_points(self):
        a = TrajectoryPoint(0, 0, 0)
        b = TrajectoryPoint(10, 20, 10)
        assert virtual_point(a, b, 5) == (5.0, 10.0)

    def test_at_endpoints(self):
        a = TrajectoryPoint(0, 0, 0)
        b = TrajectoryPoint(10, 20, 10)
        assert virtual_point(a, b, 0) == (0.0, 0.0)
        assert virtual_point(a, b, 10) == (10.0, 20.0)

    def test_outside_rejected(self):
        a = TrajectoryPoint(0, 0, 0)
        b = TrajectoryPoint(10, 20, 10)
        with pytest.raises(ValueError):
            virtual_point(a, b, 11)

    def test_zero_duration_pair(self):
        a = TrajectoryPoint(3, 4, 5)
        assert virtual_point(a, a, 5) == (3, 4)
