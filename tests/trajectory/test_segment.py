"""Tests for TimestampedSegment."""

import math

import pytest

from repro.trajectory.segment import TimestampedSegment


def seg(start, end, t0, t1):
    return TimestampedSegment(start, end, t0, t1)


class TestConstruction:
    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            seg((0, 0), (1, 1), 5, 3)

    def test_degenerate_segment_allowed(self):
        s = seg((2, 2), (2, 2), 4, 4)
        assert s.duration == 0
        assert s.tau == (4, 4)

    def test_bbox(self):
        s = seg((3, -1), (0, 4), 0, 5)
        assert (s.bbox.min_x, s.bbox.min_y) == (0, -1)
        assert (s.bbox.max_x, s.bbox.max_y) == (3, 4)


class TestTime:
    def test_covers_time(self):
        s = seg((0, 0), (1, 1), 2, 6)
        assert s.covers_time(2) and s.covers_time(6) and s.covers_time(4)
        assert not s.covers_time(1) and not s.covers_time(7)

    def test_overlaps_interval(self):
        s = seg((0, 0), (1, 1), 2, 6)
        assert s.overlaps_interval(6, 9)  # boundary touch
        assert s.overlaps_interval(0, 2)
        assert not s.overlaps_interval(7, 9)

    def test_location_at_time_ratio(self):
        s = seg((0, 0), (10, 20), 0, 10)
        assert s.location_at(5) == (5.0, 10.0)
        assert s.location_at(0) == (0, 0)

    def test_location_outside_raises(self):
        s = seg((0, 0), (10, 20), 0, 10)
        with pytest.raises(ValueError):
            s.location_at(11)


class TestDistances:
    def test_spatial_distance(self):
        a = seg((0, 0), (10, 0), 0, 10)
        b = seg((0, 3), (10, 3), 0, 10)
        assert a.spatial_distance_to(b) == 3.0

    def test_cpa_distance_synchronous_parallel(self):
        a = seg((0, 0), (10, 0), 0, 10)
        b = seg((0, 3), (10, 3), 0, 10)
        assert a.cpa_distance_to(b) == pytest.approx(3.0)

    def test_cpa_distance_disjoint_time(self):
        a = seg((0, 0), (10, 0), 0, 5)
        b = seg((0, 3), (10, 3), 6, 10)
        assert a.cpa_distance_to(b) == math.inf
        assert a.spatial_distance_to(b) == 3.0  # DLL ignores time

    def test_cpa_at_least_dll(self):
        a = seg((0, 0), (10, 0), 0, 10)
        b = seg((10, 2), (0, 2), 5, 15)
        assert a.cpa_distance_to(b) >= a.spatial_distance_to(b) - 1e-9

    def test_distance_to_point(self):
        s = seg((0, 0), (10, 0), 0, 10)
        assert s.distance_to_point((5, 7)) == 7.0
