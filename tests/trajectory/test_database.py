"""Tests for TrajectoryDatabase."""

import pytest

from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def db_of(*specs):
    return TrajectoryDatabase(
        Trajectory(oid, pts) for oid, pts in specs
    )


class TestConstruction:
    def test_empty(self):
        db = TrajectoryDatabase()
        assert len(db) == 0
        assert repr(db) == "TrajectoryDatabase(empty)"

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError):
            db_of(("a", [(0, 0, 0)]), ("a", [(1, 1, 1)]))

    def test_non_trajectory_rejected(self):
        db = TrajectoryDatabase()
        with pytest.raises(TypeError):
            db.add([(0, 0, 0)])

    def test_lookup(self):
        db = db_of(("a", [(0, 0, 0), (1, 1, 1)]))
        assert "a" in db
        assert "b" not in db
        assert db["a"].object_id == "a"


class TestStatistics:
    def test_table3_stats(self):
        db = db_of(
            ("a", [(0, 0, 0), (1, 1, 1), (2, 2, 2)]),
            ("b", [(0, 0, 5), (1, 1, 9)]),
        )
        stats = db.statistics()
        assert stats["num_objects"] == 2
        assert stats["time_domain_length"] == 10  # [0, 9]
        assert stats["total_points"] == 5
        assert stats["average_trajectory_length"] == 2.5

    def test_empty_statistics_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryDatabase().statistics()


class TestSnapshots:
    def test_objects_alive_at(self):
        db = db_of(
            ("a", [(0, 0, 0), (1, 1, 10)]),
            ("b", [(0, 0, 5), (1, 1, 9)]),
        )
        assert {tr.object_id for tr in db.objects_alive_at(3)} == {"a"}
        assert {tr.object_id for tr in db.objects_alive_at(7)} == {"a", "b"}

    def test_snapshot_interpolates(self):
        db = db_of(("a", [(0, 0, 0), (10, 0, 10)]))
        snap = db.snapshot(5)
        assert snap["a"] == (5.0, 0.0)

    def test_snapshot_excludes_dead(self):
        db = db_of(
            ("a", [(0, 0, 0), (1, 0, 4)]),
            ("b", [(0, 0, 6), (1, 0, 9)]),
        )
        assert set(db.snapshot(5)) == set()
        assert set(db.snapshot(4)) == {"a"}


class TestRestriction:
    def test_restricted_objects_and_window(self):
        db = db_of(
            ("a", [(i, 0, i) for i in range(10)]),
            ("b", [(i, 1, i) for i in range(10)]),
            ("c", [(i, 2, i) for i in range(10)]),
        )
        sub = db.restricted(["a", "b"], 2, 5)
        assert set(sub.object_ids) == {"a", "b"}
        assert sub.min_time == 2
        assert sub.max_time == 5

    def test_restricted_drops_uncovered_objects(self):
        db = db_of(
            ("a", [(0, 0, 0), (1, 0, 3)]),
            ("b", [(0, 0, 7), (1, 0, 9)]),
        )
        sub = db.restricted(["a", "b"], 6, 9)
        assert set(sub.object_ids) == {"b"}

    def test_restricted_ignores_unknown_ids(self):
        db = db_of(("a", [(0, 0, 0), (1, 0, 3)]))
        sub = db.restricted(["a", "ghost"], 0, 3)
        assert set(sub.object_ids) == {"a"}

    def test_restricted_preserves_interpolation(self):
        db = db_of(("a", [(0, 0, 0), (10, 0, 10)]))
        sub = db.restricted(["a"], 3, 7)
        assert sub["a"].location_at(5) == pytest.approx((5.0, 0.0))
