"""Tests for TrajectoryPoint."""

import math

import pytest

from repro.trajectory.point import TrajectoryPoint


def test_fields_and_xy():
    p = TrajectoryPoint(1.5, -2.0, 7)
    assert p.x == 1.5
    assert p.y == -2.0
    assert p.t == 7
    assert p.xy == (1.5, -2.0)


def test_distance_to():
    a = TrajectoryPoint(0, 0, 0)
    b = TrajectoryPoint(3, 4, 9)
    assert a.distance_to(b) == 5.0  # time plays no role in D


def test_validate_accepts_finite():
    assert TrajectoryPoint(1.0, 2.0, 3).validate() == (1.0, 2.0, 3)


def test_validate_rejects_nan():
    with pytest.raises(ValueError):
        TrajectoryPoint(math.nan, 0.0, 0).validate()


def test_validate_rejects_inf():
    with pytest.raises(ValueError):
        TrajectoryPoint(0.0, math.inf, 0).validate()


def test_validate_rejects_float_time():
    with pytest.raises(ValueError):
        TrajectoryPoint(0.0, 0.0, 1.5).validate()


def test_is_a_tuple():
    # NamedTuple semantics: unpackable, hashable, comparable.
    x, y, t = TrajectoryPoint(1, 2, 3)
    assert (x, y, t) == (1, 2, 3)
    assert hash(TrajectoryPoint(1, 2, 3)) == hash((1, 2, 3))
