"""Unit tests for the 2-D vector helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.vec import add, dot, lerp, norm, scale, squared_norm, sub

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
vectors = st.tuples(finite, finite)


class TestBasicOps:
    def test_add(self):
        assert add((1.0, 2.0), (3.0, -1.0)) == (4.0, 1.0)

    def test_sub(self):
        assert sub((1.0, 2.0), (3.0, -1.0)) == (-2.0, 3.0)

    def test_scale(self):
        assert scale((2.0, -3.0), 2.0) == (4.0, -6.0)

    def test_scale_by_zero(self):
        assert scale((2.0, -3.0), 0.0) == (0.0, 0.0)

    def test_dot_orthogonal(self):
        assert dot((1.0, 0.0), (0.0, 5.0)) == 0.0

    def test_dot_parallel(self):
        assert dot((2.0, 3.0), (4.0, 6.0)) == 26.0

    def test_norm_pythagorean(self):
        assert norm((3.0, 4.0)) == 5.0

    def test_squared_norm_matches_norm(self):
        v = (3.0, 4.0)
        assert squared_norm(v) == norm(v) ** 2


class TestLerp:
    def test_endpoints(self):
        a, b = (0.0, 0.0), (10.0, -4.0)
        assert lerp(a, b, 0.0) == a
        assert lerp(a, b, 1.0) == b

    def test_midpoint(self):
        assert lerp((0.0, 0.0), (10.0, -4.0), 0.5) == (5.0, -2.0)

    @given(vectors, vectors, st.floats(min_value=0, max_value=1))
    def test_lerp_stays_on_segment(self, a, b, ratio):
        p = lerp(a, b, ratio)
        # The interpolated point is a convex combination: each coordinate
        # lies between the endpoints' coordinates.
        assert min(a[0], b[0]) - 1e-6 <= p[0] <= max(a[0], b[0]) + 1e-6
        assert min(a[1], b[1]) - 1e-6 <= p[1] <= max(a[1], b[1]) + 1e-6


class TestAlgebraicProperties:
    @given(vectors, vectors)
    def test_add_commutes(self, u, v):
        assert add(u, v) == add(v, u)

    @given(vectors, vectors)
    def test_dot_commutes(self, u, v):
        assert dot(u, v) == dot(v, u)

    @given(vectors)
    def test_sub_self_is_zero(self, u):
        assert sub(u, u) == (0.0, 0.0)

    @given(vectors, vectors)
    def test_triangle_inequality(self, u, v):
        assert norm(add(u, v)) <= norm(u) + norm(v) + 1e-6

    @given(vectors)
    def test_norm_non_negative(self, u):
        assert norm(u) >= 0.0

    @given(vectors, vectors)
    def test_cauchy_schwarz(self, u, v):
        bound = norm(u) * norm(v)
        assert abs(dot(u, v)) <= bound * (1 + 1e-9) + 1e-6


def test_norm_of_zero():
    assert norm((0.0, 0.0)) == 0.0


def test_lerp_degenerate_segment():
    assert lerp((2.0, 2.0), (2.0, 2.0), 0.7) == (2.0, 2.0)
