"""Tests for the Definition 1 distance functions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.distance import (
    point_distance,
    point_line_distance,
    point_segment_distance,
    point_segment_projection,
    segment_distance,
    squared_point_distance,
)

coord = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
points = st.tuples(coord, coord)


class TestPointDistance:
    def test_classic_triangle(self):
        assert point_distance((0, 0), (3, 4)) == 5.0

    def test_zero_for_same_point(self):
        assert point_distance((2.5, -1), (2.5, -1)) == 0.0

    @given(points, points)
    def test_symmetry(self, p, q):
        assert point_distance(p, q) == point_distance(q, p)

    @given(points, points)
    def test_squared_matches(self, p, q):
        assert math.isclose(
            squared_point_distance(p, q), point_distance(p, q) ** 2,
            rel_tol=1e-9, abs_tol=1e-9,
        )

    @given(points, points, points)
    def test_triangle_inequality(self, p, q, r):
        assert point_distance(p, r) <= (
            point_distance(p, q) + point_distance(q, r) + 1e-6
        )


class TestPointSegmentDistance:
    def test_projection_inside(self):
        # Point above the middle of a horizontal segment.
        assert point_segment_distance((5, 3), (0, 0), (10, 0)) == 3.0

    def test_projection_clamped_to_endpoint(self):
        # Point beyond the right end: distance is to the endpoint.
        assert point_segment_distance((13, 4), (0, 0), (10, 0)) == 5.0

    def test_point_on_segment(self):
        assert point_segment_distance((5, 0), (0, 0), (10, 0)) == 0.0

    def test_degenerate_segment(self):
        assert point_segment_distance((3, 4), (0, 0), (0, 0)) == 5.0

    @given(points, points, points)
    def test_never_exceeds_endpoint_distances(self, p, a, b):
        d = point_segment_distance(p, a, b)
        assert d <= point_distance(p, a) + 1e-9
        assert d <= point_distance(p, b) + 1e-9

    @given(points, points, points)
    def test_projection_lies_on_segment_bbox(self, p, a, b):
        q = point_segment_projection(p, a, b)
        assert min(a[0], b[0]) - 1e-6 <= q[0] <= max(a[0], b[0]) + 1e-6
        assert min(a[1], b[1]) - 1e-6 <= q[1] <= max(a[1], b[1]) + 1e-6

    @given(points, points, points)
    def test_matches_brute_force_sampling(self, p, a, b):
        d = point_segment_distance(p, a, b)
        best = min(
            point_distance(
                p, (a[0] + (b[0] - a[0]) * i / 50, a[1] + (b[1] - a[1]) * i / 50)
            )
            for i in range(51)
        )
        # Sampling 51 points can only over-estimate the true minimum.
        assert d <= best + 1e-6


class TestPointLineDistance:
    def test_perpendicular_vs_segment_distance(self):
        # Projection falls outside the chord: line distance is smaller.
        p, a, b = (13.0, 4.0), (0.0, 0.0), (10.0, 0.0)
        assert point_line_distance(p, a, b) == pytest.approx(4.0)
        assert point_segment_distance(p, a, b) == pytest.approx(5.0)

    def test_degenerate_line(self):
        assert point_line_distance((3, 4), (1, 1), (1, 1)) == pytest.approx(
            point_distance((3, 4), (1, 1))
        )

    @given(points, points, points)
    def test_line_distance_lower_bounds_segment_distance(self, p, a, b):
        assert (
            point_line_distance(p, a, b)
            <= point_segment_distance(p, a, b) + 1e-6
        )


class TestSegmentDistance:
    def test_crossing_segments(self):
        assert segment_distance((0, -1), (0, 1), (-1, 0), (1, 0)) == 0.0

    def test_touching_at_endpoint(self):
        assert segment_distance((0, 0), (1, 0), (1, 0), (2, 5)) == 0.0

    def test_parallel_segments(self):
        assert segment_distance((0, 0), (10, 0), (0, 3), (10, 3)) == 3.0

    def test_collinear_disjoint(self):
        assert segment_distance((0, 0), (1, 0), (3, 0), (5, 0)) == 2.0

    def test_degenerate_both_points(self):
        assert segment_distance((0, 0), (0, 0), (3, 4), (3, 4)) == 5.0

    @given(points, points, points, points)
    def test_symmetry(self, a, b, c, d):
        assert math.isclose(
            segment_distance(a, b, c, d),
            segment_distance(c, d, a, b),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @given(points, points, points, points)
    def test_lower_bounds_all_point_pairs(self, a, b, c, d):
        d_ll = segment_distance(a, b, c, d)
        for p in (a, b):
            for q in (c, d):
                assert d_ll <= point_distance(p, q) + 1e-9

    @given(points, points, points, points)
    def test_matches_brute_force_sampling(self, a, b, c, d):
        d_ll = segment_distance(a, b, c, d)
        samples_1 = [
            (a[0] + (b[0] - a[0]) * i / 20, a[1] + (b[1] - a[1]) * i / 20)
            for i in range(21)
        ]
        samples_2 = [
            (c[0] + (d[0] - c[0]) * i / 20, c[1] + (d[1] - c[1]) * i / 20)
            for i in range(21)
        ]
        best = min(
            point_distance(p, q) for p in samples_1 for q in samples_2
        )
        assert d_ll <= best + 1e-6
