"""Tests for Closest-Point-of-Approach machinery (CuTS*, Section 6.2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.cpa import cpa_distance, cpa_time, segment_location_at
from repro.geometry.distance import point_distance, segment_distance

coord = st.floats(min_value=-500, max_value=500, allow_nan=False)
points = st.tuples(coord, coord)


class TestSegmentLocation:
    def test_endpoints(self):
        assert segment_location_at((0, 0), (10, 0), 0, 10, 0) == (0, 0)
        assert segment_location_at((0, 0), (10, 0), 0, 10, 10) == (10, 0)

    def test_time_ratio_midpoint(self):
        assert segment_location_at((0, 0), (10, 20), 0, 10, 5) == (5, 10)

    def test_outside_interval_rejected(self):
        with pytest.raises(ValueError):
            segment_location_at((0, 0), (10, 0), 0, 10, 11)

    def test_zero_duration_segment(self):
        assert segment_location_at((3, 4), (3, 4), 5, 5, 5) == (3, 4)


class TestCpaTime:
    def test_head_on_crossing(self):
        # Two objects walking toward each other on the x axis meet at t=5.
        t = cpa_time((0, 0), (10, 0), 0, 10, (10, 0), (0, 0), 0, 10)
        assert t == pytest.approx(5.0)

    def test_parallel_motion_returns_interval_start(self):
        t = cpa_time((0, 0), (10, 0), 0, 10, (0, 3), (10, 3), 0, 10)
        assert t == 0

    def test_clamped_to_common_interval(self):
        # The unconstrained CPA would be at t=10, but the second segment
        # only exists until t=6.
        t = cpa_time((0, 0), (10, 0), 0, 10, (10, 5), (4, 5), 0, 6)
        assert 0 <= t <= 6

    def test_disjoint_intervals_rejected(self):
        with pytest.raises(ValueError):
            cpa_time((0, 0), (1, 0), 0, 2, (0, 0), (1, 0), 5, 6)


class TestCpaDistance:
    def test_crossing_objects_reach_zero(self):
        d = cpa_distance((0, 0), (10, 0), 0, 10, (10, 0), (0, 0), 0, 10)
        assert d == pytest.approx(0.0, abs=1e-9)

    def test_disjoint_time_is_infinite(self):
        assert cpa_distance(
            (0, 0), (1, 0), 0, 2, (0, 0), (1, 0), 5, 6
        ) == math.inf

    def test_figure11_tightening(self):
        # Figure 11: two segments whose *spatial* footprints come close but
        # whose objects pass through the closest region at different times.
        # D* must exceed DLL.
        l1 = ((0, 0), (10, 0), 0, 10)
        l2 = ((30, 3), (20, 3), 8, 18)  # nearest approach happens too late
        d_star = cpa_distance(*l1, *l2)
        d_ll = segment_distance(l1[0], l1[1], l2[0], l2[1])
        assert d_star > d_ll

    @given(points, points, points, points)
    def test_dstar_upper_bounds_dll(self, a, b, c, d):
        """D* >= DLL always (the whole point of Section 6.2)."""
        d_star = cpa_distance(a, b, 0, 10, c, d, 0, 10)
        d_ll = segment_distance(a, b, c, d)
        assert d_star >= d_ll - 1e-6

    @given(points, points, points, points,
           st.integers(min_value=0, max_value=10))
    def test_dstar_lower_bounds_synchronous_distance(self, a, b, c, d, t):
        """D* <= D(l1(t), l2(t)) for every shared t (it is the minimum)."""
        d_star = cpa_distance(a, b, 0, 10, c, d, 0, 10)
        loc1 = segment_location_at(a, b, 0, 10, t)
        loc2 = segment_location_at(c, d, 0, 10, t)
        assert d_star <= point_distance(loc1, loc2) + 1e-6

    @given(points, points, points, points)
    def test_symmetry(self, a, b, c, d):
        d1 = cpa_distance(a, b, 0, 7, c, d, 2, 9)
        d2 = cpa_distance(c, d, 2, 9, a, b, 0, 7)
        assert math.isclose(d1, d2, rel_tol=1e-9, abs_tol=1e-9)

    def test_stationary_objects(self):
        d = cpa_distance((0, 0), (0, 0), 0, 5, (3, 4), (3, 4), 0, 5)
        assert d == pytest.approx(5.0)
