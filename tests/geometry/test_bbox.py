"""Tests for bounding boxes and the Dmin box distance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox, box_min_distance, box_of_points
from repro.geometry.distance import point_distance

coord = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
points = st.tuples(coord, coord)


def boxes():
    return st.builds(
        lambda x1, y1, x2, y2: BoundingBox(
            min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)
        ),
        coord, coord, coord, coord,
    )


class TestBoundingBox:
    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(5, 0, 0, 5)

    def test_width_height(self):
        box = BoundingBox(1, 2, 4, 7)
        assert box.width == 3
        assert box.height == 5

    def test_contains_point(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains_point((5, 5))
        assert box.contains_point((0, 10))  # boundary is inside
        assert not box.contains_point((11, 5))

    def test_expanded(self):
        box = BoundingBox(0, 0, 2, 2).expanded(1.5)
        assert box.min_x == -1.5 and box.max_y == 3.5

    def test_expanded_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 2, 2).expanded(-0.1)

    def test_union(self):
        merged = BoundingBox(0, 0, 1, 1).union(BoundingBox(5, -3, 6, 0))
        assert merged == BoundingBox(0, -3, 6, 1)

    def test_intersects(self):
        a = BoundingBox(0, 0, 10, 10)
        assert a.intersects(BoundingBox(10, 10, 20, 20))  # corner touch
        assert not a.intersects(BoundingBox(11, 0, 20, 10))

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        merged = a.union(b)
        assert merged.min_x <= min(a.min_x, b.min_x)
        assert merged.max_y >= max(a.max_y, b.max_y)


class TestBoxOfPoints:
    def test_single_point(self):
        box = box_of_points([(3, 4)])
        assert box == BoundingBox(3, 4, 3, 4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_of_points([])

    @given(st.lists(points, min_size=1, max_size=20))
    def test_contains_every_point(self, pts):
        box = box_of_points(pts)
        for p in pts:
            assert box.contains_point(p)


class TestBoxMinDistance:
    def test_overlapping_is_zero(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 5, 15, 15)
        assert box_min_distance(a, b) == 0.0

    def test_horizontally_separated(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(4, 0, 5, 1)
        assert box_min_distance(a, b) == 3.0

    def test_diagonally_separated(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(4, 5, 6, 6)
        assert box_min_distance(a, b) == 5.0  # 3-4-5 triangle

    @given(boxes(), boxes())
    def test_symmetry(self, a, b):
        assert box_min_distance(a, b) == box_min_distance(b, a)

    @given(boxes(), boxes(), points, points)
    def test_lower_bounds_contained_points(self, a, b, p, q):
        # Dmin is the minimum over all point pairs — clamp the free points
        # into their boxes and verify the bound (this is exactly the
        # property Lemma 2 relies on).
        p_in = (
            min(max(p[0], a.min_x), a.max_x),
            min(max(p[1], a.min_y), a.max_y),
        )
        q_in = (
            min(max(q[0], b.min_x), b.max_x),
            min(max(q[1], b.min_y), b.max_y),
        )
        assert box_min_distance(a, b) <= point_distance(p_in, q_in) + 1e-9
