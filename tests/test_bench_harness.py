"""Tests for the bench harness (timers and report formatting)."""

import time

from repro.bench import PhaseTimer, format_series, format_table, time_call


class TestPhaseTimer:
    def test_records_phases(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.durations) == {"a", "b"}
        assert timer.total >= 0

    def test_accumulates_repeated_phase(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("x"):
                time.sleep(0.001)
        assert timer.durations["x"] >= 0.003

    def test_records_on_exception(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in timer.durations


class TestTimeCall:
    def test_returns_result_and_seconds(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(
            "My Table", ["name", "value"], [["alpha", 1], ["b", 123456.0]]
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[2]
        # All data lines share the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_table_float_formatting(self):
        text = format_table("t", ["v"], [[0.123456], [12345.6], [0]])
        assert "0.123" in text
        assert "12,346" in text

    def test_series(self):
        text = format_series(
            "Fig", "x", [1, 2], {"a": [10, 20], "b": [30, 40]}
        )
        assert "Fig" in text
        assert "x" in text.splitlines()[2]
        assert "30" in text
