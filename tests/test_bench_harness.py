"""Tests for the bench harness (timers, report formatting, bench JSON)."""

import json
import math
import time

from benchmarks.bench_convoy_store import (
    ROW_KEYS as STORE_ROW_KEYS,
    run_query,
    run_write,
)
from benchmarks.bench_service_ingestion import (
    ROW_KEYS as SERVICE_ROW_KEYS,
    run_suite as run_service_suite,
)
from benchmarks.bench_sharded_scaling import (
    SMOKE_SCALE,
    run_bytes,
    run_grid,
)
from benchmarks.bench_match_kernel import (
    KERNELS as MATCH_KERNEL_ORDER,
    SMOKE_SMALL,
    make_small_workload,
    run_regime,
)
from benchmarks.bench_vector_kernel import run_all
from benchmarks.common import safe_rate, write_bench_json
from repro.bench import PhaseTimer, format_series, format_table, time_call
from repro.streaming import StreamingConvoyMiner


class TestPhaseTimer:
    def test_records_phases(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.durations) == {"a", "b"}
        assert timer.total >= 0

    def test_accumulates_repeated_phase(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("x"):
                time.sleep(0.001)
        assert timer.durations["x"] >= 0.003

    def test_records_on_exception(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in timer.durations


class TestTimeCall:
    def test_returns_result_and_seconds(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(
            "My Table", ["name", "value"], [["alpha", 1], ["b", 123456.0]]
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[2]
        # All data lines share the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_table_float_formatting(self):
        text = format_table("t", ["v"], [[0.123456], [12345.6], [0]])
        assert "0.123" in text
        assert "12,346" in text

    def test_series(self):
        text = format_series(
            "Fig", "x", [1, 2], {"a": [10, 20], "b": [30, 40]}
        )
        assert "Fig" in text
        assert "x" in text.splitlines()[2]
        assert "30" in text


class TestWriteBenchJson:
    """Schema guard for the BENCH_*.json perf-trajectory artifacts.

    CI uploads every bench's ``--json`` output per commit; downstream
    consumers chart rates and speedups across commits keyed by these
    fields, so a silent rename here would sever the trajectory."""

    def write(self, tmp_path, **overrides):
        kwargs = dict(
            bench="reorder_ingestion",
            params={"m": 3, "k": 10, "eps": 10.0, "smoke": True},
            rows=[
                {"lateness": 2, "delta_rate": 100.5, "peak_pending": 3},
                {"lateness": 8, "delta_rate": 99.0, "peak_pending": 9},
            ],
        )
        kwargs.update(overrides)
        path = tmp_path / "BENCH_test.json"
        payload = write_bench_json(path, kwargs["bench"], kwargs["params"],
                                   kwargs["rows"])
        return path, payload

    def test_top_level_schema(self, tmp_path):
        path, _payload = self.write(tmp_path)
        with open(path) as handle:
            loaded = json.load(handle)
        # Exactly the keys the CI trajectory consumers rely on.
        assert set(loaded) == {"bench", "git_sha", "params", "rows"}
        assert loaded["bench"] == "reorder_ingestion"
        assert isinstance(loaded["git_sha"], str) and loaded["git_sha"]
        assert loaded["params"]["m"] == 3
        assert [row["lateness"] for row in loaded["rows"]] == [2, 8]

    def test_git_sha_is_resolvable_or_unknown(self, tmp_path):
        path, _payload = self.write(tmp_path)
        with open(path) as handle:
            sha = json.load(handle)["git_sha"]
        assert sha == "unknown" or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )

    def test_returned_payload_matches_file(self, tmp_path):
        path, payload = self.write(tmp_path)
        with open(path) as handle:
            assert json.load(handle) == payload

    def test_rows_and_params_are_copies(self, tmp_path):
        """The writer must snapshot its inputs: callers mutating their
        row dicts after writing must not alter the returned payload."""
        params = {"m": 3}
        rows = [{"rate": 1.0}]
        _path, payload = self.write(tmp_path, params=params, rows=rows)
        params["m"] = 99
        rows[0]["rate"] = -1.0
        assert payload["params"]["m"] == 3
        assert payload["rows"][0]["rate"] == 1.0

    def test_file_ends_with_newline_and_sorted_keys(self, tmp_path):
        path, _payload = self.write(tmp_path)
        text = path.read_text()
        assert text.endswith("\n")
        # sort_keys=True makes diffs between artifact versions stable.
        assert text.index('"bench"') < text.index('"git_sha"')
        assert text.index('"git_sha"') < text.index('"params"')


class TestSafeRate:
    """Tiny smoke runs can finish below the timer's resolution; no rate
    derived from them may reach a report or JSON payload as ``inf``."""

    def test_normal_division(self):
        assert safe_rate(10, 2.0) == 5.0

    def test_zero_elapsed_is_none(self):
        assert safe_rate(10, 0.0) is None

    def test_negative_elapsed_is_none(self):
        assert safe_rate(10, -1.0) is None

    def test_overflow_is_none(self):
        assert safe_rate(1e308, 1e-308) is None

    def test_nan_elapsed_is_none(self):
        assert safe_rate(10, float("nan")) is None


class TestNonFiniteSanitization:
    """``json.dump`` happily emits the non-standard ``Infinity``/``NaN``
    tokens; the writer must replace every non-finite float with null."""

    def test_top_level_values(self, tmp_path):
        path = tmp_path / "BENCH_inf.json"
        write_bench_json(
            path, "b", {"rate": float("inf")},
            [{"x": float("nan"), "ok": 1.5}],
        )
        loaded = json.load(open(path))
        assert loaded["params"]["rate"] is None
        assert loaded["rows"][0]["x"] is None
        assert loaded["rows"][0]["ok"] == 1.5

    def test_nested_containers(self, tmp_path):
        path = tmp_path / "BENCH_nested.json"
        _payload = write_bench_json(
            path, "b",
            {"scale": {"rates": [1.0, float("-inf"), 2.0]}},
            [{"inner": {"bad": float("nan")}}],
        )
        loaded = json.load(open(path))
        assert loaded["params"]["scale"]["rates"] == [1.0, None, 2.0]
        assert loaded["rows"][0]["inner"]["bad"] is None

    def test_file_parses_under_strict_json(self, tmp_path):
        path = tmp_path / "BENCH_strict.json"
        write_bench_json(path, "b", {"r": float("inf")}, [])
        # parse_constant raises on Infinity/NaN tokens — the file must
        # never contain them.
        def reject(token):
            raise AssertionError(f"non-standard token {token!r} in JSON")
        json.loads(path.read_text(), parse_constant=reject)


class TestVectorKernelBenchSchema:
    """Schema guard for ``BENCH_vector_kernel.json``: the trajectory
    consumers chart the backend speedups keyed on these row fields."""

    ROW_KEYS = {
        "workload", "snapshots", "python_rate", "vector_rate", "speedup",
        "python_seconds", "vector_seconds", "convoys", "dispatch",
    }

    def test_rows_are_stable_and_finite(self, tmp_path):
        _scale, _churn, rows = run_all(smoke=True)
        assert [row["workload"] for row in rows] == [
            "tracker", "dbscan", "incremental"
        ]
        for row in rows:
            assert set(row) == self.ROW_KEYS
            assert row["snapshots"] > 0
            for key in ("python_rate", "vector_rate", "speedup"):
                value = row[key]
                assert value is None or (
                    isinstance(value, float) and math.isfinite(value)
                )
        # only the incremental (small-delta) row is re-run under the
        # auto dispatcher; the batch workloads keep the None marker.
        assert rows[0]["dispatch"] is None
        assert rows[1]["dispatch"] is None
        dispatch = rows[2]["dispatch"]
        assert dispatch is None or (
            isinstance(dispatch, float) and math.isfinite(dispatch)
        )
        path = tmp_path / "BENCH_vector_kernel.json"
        write_bench_json(path, "vector_kernel", {"smoke": True}, rows)
        loaded = json.load(open(path))
        assert loaded["bench"] == "vector_kernel"
        assert set(loaded["rows"][0]) == self.ROW_KEYS


class TestMatchKernelBenchSchema:
    """Schema guard for ``BENCH_match_kernel.json``: the trajectory
    consumers chart per-kernel rates and dispatch mixes keyed on these
    row fields, so the bench's row shape is pinned here alongside the
    writer's envelope."""

    ROW_KEYS = {
        "regime", "kernel", "snapshots", "seconds", "rate", "convoys",
        "dispatch_ticks",
    }

    def rows(self):
        # A tiny churn workload keeps this a schema test, not a bench;
        # run_regime still times all four kernels and asserts their
        # emissions identical.
        scale = dict(SMOKE_SMALL, n_objects=40, n_snapshots=6, warmup=2)
        ticks = make_small_workload(scale)

        def miner(kernel):
            return StreamingConvoyMiner(
                3, 2, 10.0, clusterer="incremental", match_kernel=kernel
            )

        return run_regime("schema", miner, ticks, scale["warmup"], reps=1)

    def test_rows_are_stable_and_finite(self, tmp_path):
        rows = self.rows()
        assert [row["kernel"] for row in rows] == list(MATCH_KERNEL_ORDER)
        for row in rows:
            assert set(row) == self.ROW_KEYS
            assert row["regime"] == "schema"
            assert row["snapshots"] > 0
            assert row["seconds"] >= 0
            rate = row["rate"]
            assert rate is None or (
                isinstance(rate, float) and math.isfinite(rate)
            )
        # fixed kernels carry no dispatch mix; auto counts every kernel.
        for row in rows[:-1]:
            assert row["dispatch_ticks"] is None
        auto = rows[-1]
        assert auto["kernel"] == "auto"
        assert set(auto["dispatch_ticks"]) == {"scalar", "merge", "bitset"}
        assert all(
            count >= 0 for count in auto["dispatch_ticks"].values()
        )
        path = tmp_path / "BENCH_match_kernel.json"
        write_bench_json(path, "match_kernel", {"smoke": True}, rows)
        loaded = json.load(open(path))
        assert loaded["bench"] == "match_kernel"
        assert set(loaded["rows"][0]) == self.ROW_KEYS


class TestShardedScalingBenchSchema:
    """Schema guard for ``BENCH_sharded_scaling.json``: the trajectory
    consumers key the scaling curve on these row fields, so the bench's
    row shape is pinned here alongside the writer's envelope."""

    #: Fields every sharded-scaling row must carry.
    ROW_KEYS = {
        "shards", "executor", "resident", "workload", "rate",
        "speedup_vs_unsharded", "convoys", "peak_candidates",
        "sharded_candidates", "max_shard_batch", "seconds",
        "shipped_bytes_per_tick", "result_bytes_per_tick",
        "payload_bytes_per_tick", "payload_reduction",
    }

    def rows(self):
        # Tiny serial-only cells keep this a schema test, not a bench;
        # the legacy 2-tuple cell pins the grid-cell normalization.
        scale = dict(SMOKE_SCALE, n_snapshots=6, n_objects=60,
                     group_count=10, group_size=5)
        baseline, rows = run_grid(
            scale, ((2, "serial"), (2, "serial", True))
        )
        return baseline, rows

    def test_row_fields_are_stable(self):
        baseline, rows = self.rows()
        assert set(baseline) == self.ROW_KEYS
        for row in rows:
            assert set(row) == self.ROW_KEYS
            assert row["executor"] == "serial"
            assert row["shards"] == 2
            assert row["rate"] > 0
            assert row["speedup_vs_unsharded"] > 0
            # Timing rows carry no byte accounting.
            assert row["payload_bytes_per_tick"] is None
        assert [row["resident"] for row in rows] == [False, True]
        assert baseline["executor"] == "unsharded"
        assert baseline["shards"] == 0
        assert baseline["resident"] is False

    def test_byte_pass_rows(self):
        """The byte pass emits a stateless and a resident row with the
        pickled-payload fields filled in and the reduction on the
        resident row (the ≥5x bar itself is asserted by the bench on
        its real workload scales, not this tiny one)."""
        scale = dict(n_groups=12, group_size=6, n_snapshots=8,
                     dirty_groups=1)
        rows, reduction = run_bytes(scale)
        assert [row["resident"] for row in rows] == [False, True]
        for row in rows:
            assert set(row) == self.ROW_KEYS
            assert row["workload"] == "group swap"
            assert row["shipped_bytes_per_tick"] > 0
            assert row["result_bytes_per_tick"] >= 0
            assert row["payload_bytes_per_tick"] == (
                row["shipped_bytes_per_tick"] + row["result_bytes_per_tick"]
            )
        assert rows[0]["payload_reduction"] is None
        assert rows[1]["payload_reduction"] == reduction
        assert reduction > 0

    def test_rows_round_trip_through_the_writer(self, tmp_path):
        baseline, rows = self.rows()
        path = tmp_path / "BENCH_sharded_scaling.json"
        write_bench_json(
            path, "sharded_scaling",
            {"m": 3, "k": 8, "eps": 10.0, "smoke": True, "cores": 1},
            [baseline] + rows,
        )
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["bench"] == "sharded_scaling"
        assert [row["executor"] for row in loaded["rows"]] == [
            "unsharded", "serial", "serial"
        ]
        assert set(loaded["rows"][1]) == self.ROW_KEYS


class TestConvoyStoreBenchSchema:
    """Schema guard for ``BENCH_convoy_store.json``: the trajectory
    consumers chart write-through overhead and index speedup keyed on
    these row fields, so the bench's row shape is pinned here.

    Tiny scales keep this a schema test — the 15%/10x acceptance bars
    are asserted by the bench itself on its real workload sizes."""

    ROW_KEYS = set(STORE_ROW_KEYS)

    WRITE_SCALE = dict(n_objects=40, n_snapshots=12, group_count=5,
                       group_size=8, jitter=0.2, reps=1)
    QUERY_SCALE = dict(population=200, domain=800, max_life=10,
                       windows=5, width=4, reps=1)

    def test_write_pass_rows(self, tmp_path):
        rows, overhead = run_write(self.WRITE_SCALE, tmp_path)
        assert [row["mode"] for row in rows] == ["plain", "store"]
        for row in rows:
            assert set(row) == self.ROW_KEYS
            assert row["pass"] == "write"
            assert row["snapshots"] == 12
            assert row["convoys"] > 0
        plain, store = rows
        assert plain["write_overhead"] is None
        assert plain["sink_seconds"] is None
        assert store["write_overhead"] == overhead
        assert store["sink_seconds"] is not None
        assert store["stored"] > 0
        assert overhead > 0 and math.isfinite(overhead)

    def test_query_pass_rows(self, tmp_path):
        rows, speedup = run_query(self.QUERY_SCALE, tmp_path)
        assert [row["mode"] for row in rows] == [
            "indexed", "scan", "top_k"
        ]
        for row in rows:
            assert set(row) == self.ROW_KEYS
            assert row["pass"] == "query"
            assert row["population"] == 200
            # Query rows carry no write-pass accounting.
            assert row["write_overhead"] is None
        indexed, scan, _top_k = rows
        # Both plans must have returned the same row count.
        assert indexed["convoys"] == scan["convoys"]
        assert indexed["speedup_vs_scan"] == speedup
        assert speedup is None or (
            isinstance(speedup, float) and math.isfinite(speedup)
        )

    def test_rows_round_trip_through_the_writer(self, tmp_path):
        write_rows, _ = run_write(self.WRITE_SCALE, tmp_path)
        query_rows, _ = run_query(self.QUERY_SCALE, tmp_path)
        path = tmp_path / "BENCH_convoy_store.json"
        write_bench_json(
            path, "convoy_store",
            {"m": 5, "k": 8, "eps": 8.0, "smoke": True},
            write_rows + query_rows,
        )
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["bench"] == "convoy_store"
        assert [row["pass"] for row in loaded["rows"]] == [
            "write", "write", "query", "query", "query"
        ]
        for row in loaded["rows"]:
            assert set(row) == self.ROW_KEYS


class TestServiceIngestionBenchSchema:
    """Schema guard for ``BENCH_service_ingestion.json``: the trajectory
    consumers chart per-tenant rates and latency percentiles keyed on
    these row fields.  ``run_suite`` itself asserts the backpressure
    contract (bounded slow-tenant queue, throttled waits observed, fast
    tenant within 20% of the solo step rate), so this guard re-runs it
    at smoke scale and pins the row shape around it."""

    def test_rows_round_trip_with_backpressure_asserted(self, tmp_path):
        rows = run_service_suite(smoke=True)
        runs = [row["run"] for row in rows]
        assert runs.count("solo") == 1
        assert runs.count("backpressure") == 2
        assert runs.count("fleet") >= 2
        for row in rows:
            assert set(row) == SERVICE_ROW_KEYS
            assert row["snapshots"] > 0
            for key in ("rate", "step_rate"):
                value = row[key]
                assert value is None or (
                    isinstance(value, float) and math.isfinite(value)
                )
        path = tmp_path / "BENCH_service_ingestion.json"
        write_bench_json(
            path, "service_ingestion", {"smoke": True}, rows
        )
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["bench"] == "service_ingestion"
        assert len(loaded["rows"]) == len(rows)
        for row in loaded["rows"]:
            assert set(row) == SERVICE_ROW_KEYS
