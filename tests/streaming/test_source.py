"""Tests for the snapshot-source adapters."""

import math

import pytest

from repro.io.csv_io import save_trajectories_csv
from repro.streaming import (
    churn_stream,
    replay_csv,
    replay_database,
    synthetic_stream,
)
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


@pytest.fixture
def staggered_db():
    return TrajectoryDatabase(
        [
            Trajectory("a", [(float(t), 0.0, t) for t in range(10)]),
            Trajectory("b", [(float(t), 1.0, t) for t in range(3, 8)]),
            # c has samples only at t=4 and t=6: t=5 is interpolated.
            Trajectory("c", [(4.0, 5.0, 4), (6.0, 5.0, 6)]),
        ]
    )


class TestReplayDatabase:
    def test_yields_every_time_point(self, staggered_db):
        ticks = list(replay_database(staggered_db))
        assert [t for t, _ in ticks] == list(range(10))

    def test_snapshots_match_database_snapshot(self, staggered_db):
        for t, snapshot in replay_database(staggered_db):
            assert snapshot == staggered_db.snapshot(t)

    def test_interpolates_virtual_points(self, staggered_db):
        snapshots = dict(replay_database(staggered_db))
        assert snapshots[5]["c"] == (5.0, 5.0)  # midpoint of the two samples

    def test_time_range_restriction(self, staggered_db):
        ticks = list(replay_database(staggered_db, time_range=(4, 6)))
        assert [t for t, _ in ticks] == [4, 5, 6]
        assert set(ticks[0][1]) == {"a", "b", "c"}

    def test_reversed_time_range_rejected(self, staggered_db):
        with pytest.raises(ValueError):
            list(replay_database(staggered_db, time_range=(6, 4)))

    def test_empty_database_yields_nothing(self):
        assert list(replay_database(TrajectoryDatabase())) == []

    def test_dead_air_yields_empty_snapshots(self):
        """Mid-domain ticks where nothing is alive still appear (the engine
        needs them to break chains)."""
        db = TrajectoryDatabase(
            [
                Trajectory("a", [(0.0, 0.0, 0), (1.0, 0.0, 1)]),
                Trajectory("b", [(0.0, 0.0, 5), (1.0, 0.0, 6)]),
            ]
        )
        snapshots = dict(replay_database(db))
        assert list(snapshots) == list(range(7))
        assert snapshots[3] == {}


class TestReplayCsv:
    def test_round_trips_database(self, staggered_db, tmp_path):
        path = tmp_path / "stream.csv"
        save_trajectories_csv(staggered_db, path)
        assert list(replay_csv(path)) == list(replay_database(staggered_db))


class TestSyntheticStream:
    def test_shape(self):
        ticks = list(synthetic_stream(30, 12, seed=1))
        assert len(ticks) == 12
        assert [t for t, _ in ticks] == list(range(12))
        for _, snapshot in ticks:
            assert len(snapshot) == 30
            assert set(snapshot) == {f"o{i}" for i in range(30)}

    def test_t_start_offset(self):
        ticks = list(synthetic_stream(5, 3, seed=1, t_start=100))
        assert [t for t, _ in ticks] == [100, 101, 102]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            list(synthetic_stream(0, 5))
        with pytest.raises(ValueError):
            list(synthetic_stream(5, 0))

    def test_rejects_bad_group_layout(self):
        with pytest.raises(ValueError):
            list(synthetic_stream(10, 5, group_size=0))
        with pytest.raises(ValueError):
            list(synthetic_stream(10, 5, group_size=-1))
        with pytest.raises(ValueError):
            list(synthetic_stream(10, 5, group_count=-1))
        # group_count=0 is legal: a stream of pure loners.
        ticks = list(synthetic_stream(10, 5, seed=1, group_count=0))
        assert all(len(snapshot) == 10 for _, snapshot in ticks)

    def test_planted_groups_stay_within_eps(self):
        """Members of one planted group are pairwise within eps at every
        tick — each group is a convoy for any m up to the group size."""
        eps = 10.0
        group_size = 5
        for t, snapshot in synthetic_stream(
            40, 25, seed=3, eps=eps, group_count=2, group_size=group_size
        ):
            for group in range(2):
                members = [f"o{group * group_size + i}"
                           for i in range(group_size)]
                for left in members:
                    for right in members:
                        lx, ly = snapshot[left]
                        rx, ry = snapshot[right]
                        assert math.hypot(lx - rx, ly - ry) <= eps

    def test_groups_clipped_to_object_count(self):
        """More requested groups than objects: groups are dropped, never
        an index error."""
        ticks = list(
            synthetic_stream(7, 3, seed=1, group_count=4, group_size=5)
        )
        assert all(len(snapshot) == 7 for _, snapshot in ticks)

    def test_objects_move(self):
        ticks = list(synthetic_stream(10, 20, seed=5))
        first = ticks[0][1]
        last = ticks[-1][1]
        moved = sum(1 for key in first if first[key] != last[key])
        assert moved >= 9  # walkers actually walk


class TestChurnStream:
    def test_shape_and_determinism(self):
        a = list(churn_stream(30, 12, seed=9, churn=0.2, turnover=0.1))
        b = list(churn_stream(30, 12, seed=9, churn=0.2, turnover=0.1))
        assert a == b
        assert [t for t, _snap in a] == list(range(12))
        assert all(len(snap) == 30 for _t, snap in a)

    def test_churn_fraction_moves_per_tick(self):
        ticks = list(churn_stream(100, 10, seed=4, eps=5.0, churn=0.1))
        for (_, before), (_, after) in zip(ticks, ticks[1:]):
            movers = [o for o in before if after[o] != before[o]]
            assert len(movers) == 10
            # every hop clears eps/2 — the "movers beyond eps/2" regime
            for o in movers:
                (x0, y0), (x1, y1) = before[o], after[o]
                hop = math.hypot(x1 - x0, y1 - y0)
                assert hop >= 2.5  # eps / 2
                assert 0.0 <= x1 <= 200.0 and 0.0 <= y1 <= 200.0

    def test_zero_churn_freezes_positions(self):
        ticks = list(churn_stream(25, 8, seed=1, churn=0.0))
        assert all(snap == ticks[0][1] for _t, snap in ticks)

    def test_turnover_replaces_ids(self):
        ticks = list(churn_stream(40, 6, seed=2, churn=0.0, turnover=0.25))
        first_ids = set(ticks[0][1])
        last_ids = set(ticks[-1][1])
        assert len(last_ids) == 40
        assert first_ids != last_ids

    def test_snapshots_are_fresh_dicts(self):
        ticks = list(churn_stream(10, 3, seed=0, churn=0.0))
        ticks[0][1].clear()
        assert len(ticks[1][1]) == 10

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            list(churn_stream(0, 5))
        with pytest.raises(ValueError):
            list(churn_stream(5, 0))
        with pytest.raises(ValueError):
            list(churn_stream(5, 5, churn=1.5))
        with pytest.raises(ValueError):
            list(churn_stream(5, 5, turnover=-0.1))
        with pytest.raises(ValueError):
            list(churn_stream(5, 5, eps=10.0, max_hop=1.0))
        with pytest.raises(ValueError):
            list(churn_stream(5, 5, eps=10.0, area=5.0))  # hops can't fit


class TestJitteredSources:
    """The ``jitter=`` variants of both generators: same snapshots, a
    bounded, seeded shuffle of their arrival order."""

    @pytest.mark.parametrize("make", [synthetic_stream, churn_stream])
    def test_same_ticks_as_the_unjittered_stream(self, make):
        base = list(make(25, 30, seed=7, eps=8.0))
        jittered = list(make(25, 30, seed=7, eps=8.0, jitter=4))
        assert jittered != base
        assert sorted(jittered, key=lambda tick: tick[0]) == base

    @pytest.mark.parametrize("make", [synthetic_stream, churn_stream])
    def test_lateness_stays_below_jitter(self, make):
        jitter = 5
        max_seen = None
        for t, _snapshot in make(20, 50, seed=3, eps=8.0, jitter=jitter):
            if max_seen is not None:
                assert max_seen - t < jitter
                max_seen = max(max_seen, t)
            else:
                max_seen = t

    @pytest.mark.parametrize("make", [synthetic_stream, churn_stream])
    def test_jitter_seed_controls_only_the_order(self, make):
        a = list(make(15, 25, seed=9, eps=8.0, jitter=4, jitter_seed=1))
        b = list(make(15, 25, seed=9, eps=8.0, jitter=4, jitter_seed=2))
        assert a != b
        assert (sorted(a, key=lambda tick: tick[0])
                == sorted(b, key=lambda tick: tick[0]))

    @pytest.mark.parametrize("make", [synthetic_stream, churn_stream])
    def test_jitter_is_deterministic(self, make):
        assert (list(make(15, 25, seed=9, eps=8.0, jitter=4))
                == list(make(15, 25, seed=9, eps=8.0, jitter=4)))

    @pytest.mark.parametrize("make", [synthetic_stream, churn_stream])
    def test_zero_jitter_is_the_default_order(self, make):
        assert (list(make(15, 25, seed=9, eps=8.0, jitter=0))
                == list(make(15, 25, seed=9, eps=8.0)))

    @pytest.mark.parametrize("make", [synthetic_stream, churn_stream])
    def test_negative_jitter_rejected(self, make):
        with pytest.raises(ValueError, match="jitter"):
            list(make(15, 25, seed=9, eps=8.0, jitter=-1))


class TestHotspots:
    def test_rejects_bad_hotspots(self):
        with pytest.raises(ValueError, match="hotspots"):
            list(churn_stream(10, 5, hotspots=0))

    def test_deterministic_per_seed(self):
        a = list(churn_stream(40, 20, seed=9, eps=8.0, churn=0.2,
                              hotspots=2))
        b = list(churn_stream(40, 20, seed=9, eps=8.0, churn=0.2,
                              hotspots=2))
        assert a == b
        c = list(churn_stream(40, 20, seed=10, eps=8.0, churn=0.2,
                              hotspots=2))
        assert a != c

    def test_movement_confined_to_the_hot_pool(self):
        """Only the fixed seeded hot pool (2 * churn * n objects) ever
        moves; everything else stands perfectly still."""
        n, churn = 50, 0.2
        ticks = list(churn_stream(n, 25, seed=3, eps=8.0, churn=churn,
                                  hotspots=2))
        pool_size = round(2 * churn * n)
        pool = {f"c{i}" for i in range(pool_size)}
        movers = set()
        for (_t0, s0), (_t1, s1) in zip(ticks, ticks[1:]):
            for o in s0:
                if o in s1 and s0[o] != s1[o]:
                    movers.add(o)
        assert movers  # churn actually happened
        assert movers <= pool

    def test_hot_pool_starts_packed_around_centers(self):
        """The hot pool is spatially concentrated: its tick-0 bounding
        box is far smaller than the world."""
        eps = 8.0
        ticks = list(churn_stream(60, 2, seed=5, eps=eps, churn=0.2,
                                  hotspots=1))
        pool = [f"c{i}" for i in range(round(2 * 0.2 * 60))]
        xs = [ticks[0][1][o][0] for o in pool]
        ys = [ticks[0][1][o][1] for o in pool]
        pack_diameter = 2 * (2.0 * eps)
        assert max(xs) - min(xs) <= pack_diameter
        assert max(ys) - min(ys) <= pack_diameter

    def test_mover_count_matches_churn_when_pool_suffices(self):
        n, churn = 40, 0.1
        ticks = list(churn_stream(n, 15, seed=7, eps=8.0, churn=churn,
                                  hotspots=2))
        expected_movers = round(churn * n)
        for (_t0, s0), (_t1, s1) in zip(ticks, ticks[1:]):
            moved = sum(
                1 for o in s0 if o in s1 and s0[o] != s1[o]
            )
            assert moved == expected_movers

    def test_jitter_composes_with_hotspots(self):
        base = list(churn_stream(30, 20, seed=11, eps=8.0, churn=0.2,
                                 hotspots=2))
        shuffled = list(churn_stream(30, 20, seed=11, eps=8.0, churn=0.2,
                                     hotspots=2, jitter=3))
        assert sorted(shuffled, key=lambda tick: tick[0]) == base
        assert shuffled != base
