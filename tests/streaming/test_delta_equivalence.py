"""Differential suite: the diff-aware candidate path == the classic path.

PR 2's equivalence suite proved incremental clustering identical to a
fresh DBSCAN per tick.  This suite is the same contract one layer up: a
:class:`~repro.streaming.StreamingConvoyMiner` whose candidate tracker
consumes :class:`~repro.clustering.incremental.ClusterDelta` diffs
(``advance_delta`` splicing) must emit, at every single ``feed`` and at
``flush``, exactly the convoys of

* the PR 2 pipeline — the same incremental clusterer but with its delta
  withheld, forcing the classic full ``advance`` re-intersection; and
* the baseline pipeline — fresh DBSCAN plus classic ``advance``.

Equality is asserted tick-for-tick (not just on the final answer), under
both candidate-semantics modes, across churn/turnover sweeps, time gaps,
below-``m`` ticks, bounded windows (prune interaction), flush-after-gap,
key-order shuffles, and the adaptive churn threshold.  The miner
factories and the lockstep driver are the shared fixtures of
``tests/streaming/conftest.py`` (also used by the reorder and sharded
suites).
"""

import pytest

from repro.clustering.incremental import IncrementalSnapshotClusterer
from repro.core.cmc import cmc
from repro.datasets import synthetic_dataset
from repro.streaming import churn_stream, replay_database

SEMANTICS = (False, True)


class TestTickForTickConvoyEquality:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("churn", [0.0, 0.02, 0.1, 0.3, 0.7])
    def test_churn_sweep(self, make_pipeline_miners, assert_lockstep,
                         paper_semantics, churn):
        # area = 12 * eps keeps the stream dense enough that clusters (and
        # hence live candidates) exist on most ticks.
        ticks = list(churn_stream(100, 50, seed=29, eps=8.0, churn=churn,
                                  turnover=0.03, area=96.0))
        miners = assert_lockstep(
            ticks,
            make_pipeline_miners(3, 5, 8.0, paper_semantics=paper_semantics),
        )
        if churn <= 0.1:
            # The low-churn regime must actually exercise the splice path,
            # or this whole suite is vacuous.
            assert miners["delta"].counters["spliced_candidates"] > 0
            assert miners["pr2"].counters["spliced_candidates"] == 0
            assert miners["full"].counters["delta_steps"] == 0

    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_high_turnover(self, make_pipeline_miners, assert_lockstep,
                           paper_semantics):
        """Arrivals/departures exercise appeared/vanished classifications."""
        ticks = list(churn_stream(60, 40, seed=31, eps=8.0, churn=0.05,
                                  turnover=0.15))
        assert_lockstep(
            ticks,
            make_pipeline_miners(3, 4, 8.0, paper_semantics=paper_semantics),
        )

    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_database_replay_with_gaps(self, make_pipeline_miners,
                                       assert_lockstep, paper_semantics):
        """Empty and below-m snapshots interleave clusterless advances
        (classic path) with delta steps; supports must recover."""
        spec = synthetic_dataset(
            "delta-replay", 47, n_objects=30, t_domain=45, eps=5.0, m=3,
            k=5, episode_count=5, episode_size=(3, 5),
            alive_fraction=(0.3, 0.9), keep_probability=0.75,
        )
        ticks = list(replay_database(spec.database))
        assert_lockstep(
            ticks,
            make_pipeline_miners(3, 5, 5.0, paper_semantics=paper_semantics),
        )

    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_explicit_time_gaps(self, make_pipeline_miners, assert_lockstep,
                                paper_semantics):
        """Skipped time points (gap advances) between delta steps."""
        ticks = [
            (t, snapshot)
            for t, snapshot in churn_stream(50, 40, seed=37, eps=8.0,
                                            churn=0.08, turnover=0.02)
            if t % 9 != 4  # drop ticks entirely: the engine sees a gap
        ]
        assert_lockstep(
            ticks,
            make_pipeline_miners(3, 3, 8.0, paper_semantics=paper_semantics),
        )

    def test_key_order_shuffles_without_movement(self, make_pipeline_miners,
                                                 assert_lockstep):
        """Reordered snapshot keys flip border ties (clusters 'changed'
        with no churn); the delta path must re-intersect exactly those."""
        import random

        rng = random.Random(13)
        pos = {f"o{i}": (rng.uniform(0, 30), rng.uniform(0, 30))
               for i in range(50)}
        ticks = []
        for t in range(30):
            items = list(pos.items())
            rng.shuffle(items)
            ticks.append((t, dict(items)))
        assert_lockstep(ticks, make_pipeline_miners(2, 4, 4.0))

    @pytest.mark.parametrize("churn", [0.05, 0.3])
    def test_adaptive_threshold_stays_exact(self, make_pipeline_miners,
                                            assert_lockstep, churn):
        """The adaptive policy only re-times the fallback decision; the
        emitted convoys must not move."""
        ticks = list(churn_stream(60, 40, seed=41, eps=8.0, churn=churn,
                                  turnover=0.02))
        assert_lockstep(
            ticks,
            make_pipeline_miners(3, 5, 8.0, churn_threshold="adaptive"),
        )


class TestWindowAndFlushInteraction:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("window", [5, 8])
    def test_bounded_window_prunes_identically(self, make_pipeline_miners,
                                               assert_lockstep,
                                               paper_semantics, window):
        """prune_longer_than() force-closes spliced chains too; pruned
        supports must re-seed their unchanged cluster next tick."""
        ticks = list(churn_stream(100, 45, seed=43, eps=8.0, churn=0.05,
                                  turnover=0.02, area=96.0))
        miners = assert_lockstep(
            ticks,
            make_pipeline_miners(3, 5, 8.0, paper_semantics=paper_semantics,
                                 window=window),
        )
        # Windowed low-churn streams still splice between prunes.
        assert miners["delta"].counters["spliced_candidates"] > 0

    def test_flush_after_gap(self, make_pipeline_miners, assert_lockstep):
        """A trailing gap closes every chain before the flush; both paths
        must agree on the gap emission and on the (empty) flush."""
        ticks = [
            (t, snapshot)
            for t, snapshot in churn_stream(40, 30, seed=47, eps=8.0,
                                            churn=0.05)
        ]
        ticks = ticks[:20] + [(40, ticks[20][1])]  # jump: 19 -> 40
        assert_lockstep(ticks, make_pipeline_miners(3, 4, 8.0))

    def test_mid_stream_state_equality(self, make_pipeline_miners):
        """Beyond emissions: live candidate sets (objects and intervals)
        stay identical between the paths at every tick."""
        miners = make_pipeline_miners(3, 5, 8.0)
        for t, snapshot in churn_stream(50, 35, seed=53, eps=8.0,
                                        churn=0.08, turnover=0.03):
            for miner in miners.values():
                miner.feed(t, dict(snapshot))
            live = {name: miner.live_candidates
                    for name, miner in miners.items()}
            assert live["delta"] == live["pr2"] == live["full"], f"tick {t}"


class TestOfflineCmcDeltaPath:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_cmc_clusterer_instance_matches_baseline(self, paper_semantics):
        spec = synthetic_dataset(
            "delta-cmc", 7, n_objects=25, t_domain=35, eps=5.0, m=3, k=5,
            episode_count=4, episode_size=(3, 4),
        )
        base = cmc(spec.database, 3, 5, 5.0, paper_semantics=paper_semantics)
        counters = {}
        got = cmc(
            spec.database, 3, 5, 5.0, paper_semantics=paper_semantics,
            clusterer=IncrementalSnapshotClusterer(5.0, 3),
            counters=counters,
        )
        assert got == base
        assert counters["delta_steps"] > 0
